#!/usr/bin/env python3
"""Quickstart: count n-grams with SUFFIX-σ and the three baselines.

Runs the paper's running example (Section III) plus a small synthetic
newswire corpus, showing the public API end to end:

1. build a :class:`~repro.corpus.collection.DocumentCollection`;
2. call :func:`repro.count_ngrams` with a minimum collection frequency τ and
   a maximum length σ;
3. inspect the returned statistics and the MapReduce counters.

Run with::

    python examples/quickstart.py
"""

from repro import count_ngrams
from repro.corpus.collection import DocumentCollection
from repro.corpus.synthetic import NewswireCorpusGenerator


def running_example() -> None:
    """The three-document example of Section III of the paper."""
    print("=" * 70)
    print("Running example from the paper (tau=3, sigma=3)")
    print("=" * 70)
    collection = DocumentCollection.from_token_lists(
        [
            "a x b x x".split(),
            "b a x b x".split(),
            "x b a x b".split(),
        ]
    )
    for algorithm in ("NAIVE", "APRIORI-SCAN", "APRIORI-INDEX", "SUFFIX-SIGMA"):
        result = count_ngrams(
            collection,
            min_frequency=3,
            max_length=3,
            algorithm=algorithm,
            apriori_index_k=2,
        )
        ngrams = ", ".join(
            f"{' '.join(ngram)}:{count}"
            for ngram, count in sorted(result.statistics.items())
        )
        print(
            f"{algorithm:15s} jobs={result.num_jobs}  "
            f"records={result.map_output_records:3d}  -> {ngrams}"
        )
    print()


def synthetic_corpus_example() -> None:
    """Count n-grams in a synthetic newswire corpus and show the top phrases."""
    print("=" * 70)
    print("Synthetic newswire corpus (120 documents, tau=5, sigma=5)")
    print("=" * 70)
    collection = NewswireCorpusGenerator(num_documents=120, seed=13).generate()
    encoded = collection.encode()

    result = count_ngrams(encoded, min_frequency=5, max_length=5, algorithm="SUFFIX-SIGMA")
    decoded = result.statistics.decoded(encoded.vocabulary)

    print(f"found {len(decoded)} n-grams occurring at least 5 times")
    print(f"MapReduce jobs: {result.num_jobs}")
    print(f"records shuffled: {result.map_output_records}")
    print(f"bytes shuffled:   {result.map_output_bytes}")
    print()
    print("most frequent 4-grams:")
    for ngram, frequency in decoded.top(5, length=4):
        print(f"  {frequency:6d}  {' '.join(ngram)}")
    print()
    print("longest frequent n-grams:")
    longest = sorted(decoded.items(), key=lambda item: -len(item[0]))[:5]
    for ngram, frequency in longest:
        print(f"  {frequency:6d}  {' '.join(ngram)}")


def main() -> None:
    running_example()
    synthetic_corpus_example()


if __name__ == "__main__":
    main()
