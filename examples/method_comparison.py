#!/usr/bin/env python3
"""Reproduce the paper's method comparison on a laptop-sized corpus.

Runs all four methods on the NYT-like and ClueWeb-like synthetic datasets at
the language-model setting (σ=5) and sweeps the minimum collection frequency
τ, printing the three measures of the paper (wallclock, bytes transferred,
number of records) as compact tables — a miniature version of Figures 3 and
4.

Run with::

    python examples/method_comparison.py
"""

from __future__ import annotations

from repro.harness.datasets import clueweb_like, nytimes_like
from repro.harness.experiment import ExperimentRunner
from repro.harness.report import format_measurements, format_sweep


def main() -> None:
    datasets = [nytimes_like(num_documents=100), clueweb_like(num_documents=120)]
    runner = ExperimentRunner()

    print("=" * 70)
    print("Use case: language model training (sigma = 5)")
    print("=" * 70)
    for spec in datasets:
        collection = spec.build()
        measurements = runner.compare_methods(
            collection, spec.name, spec.language_model_tau, 5
        )
        print(f"\n--- {spec.name} (tau={spec.language_model_tau}) ---")
        print(format_measurements(measurements))

    print()
    print("=" * 70)
    print("Sweep of the minimum collection frequency tau (sigma = 5)")
    print("=" * 70)
    for spec in datasets:
        collection = spec.build()
        sweep = runner.sweep_parameter(
            collection,
            spec.name,
            parameter="tau",
            values=spec.sweep_tau[:4],
            fixed_tau=spec.default_tau,
            fixed_sigma=5,
        )
        print(f"\n--- {spec.name}: simulated wallclock (s) per tau ---")
        print(format_sweep(sweep, metric="simulated_s", parameter_label="method"))
        print(f"\n--- {spec.name}: records shuffled per tau ---")
        print(format_sweep(sweep, metric="records", parameter_label="method"))


if __name__ == "__main__":
    main()
