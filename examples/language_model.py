#!/usr/bin/env python3
"""Language-model use case: n-gram statistics for a back-off language model.

The paper's first use case (Section VII.D) computes all n-grams up to five
words with a low minimum collection frequency — the statistics needed to
train an n-gram language model with back-off smoothing (Katz).  This example:

1. generates a synthetic newswire corpus;
2. computes 1..5-gram collection frequencies with SUFFIX-σ;
3. estimates conditional probabilities P(w | context) with stupid-backoff
   smoothing and scores a few sample sentences;
4. compares the cost of SUFFIX-σ against the NAIVE method on the same input.

Run with::

    python examples/language_model.py
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from repro import count_ngrams
from repro.corpus.synthetic import NewswireCorpusGenerator
from repro.ngrams.statistics import NGramStatistics

MAX_ORDER = 5
MIN_FREQUENCY = 3
BACKOFF_FACTOR = 0.4


class StupidBackoffModel:
    """A minimal stupid-backoff n-gram language model over term identifiers."""

    def __init__(self, statistics: NGramStatistics, total_tokens: int) -> None:
        self.statistics = statistics
        self.total_tokens = total_tokens

    def score(self, context: Tuple[int, ...], term: int) -> float:
        """Stupid-backoff score S(term | context)."""
        context = tuple(context[-(MAX_ORDER - 1) :])
        while True:
            ngram = context + (term,)
            numerator = self.statistics.frequency(ngram)
            if numerator > 0 and context:
                denominator = self.statistics.frequency(context)
                if denominator > 0:
                    return numerator / denominator
            if not context:
                unigram = self.statistics.frequency((term,))
                return max(unigram, 1) / self.total_tokens
            context = context[1:]
            # Each back-off step multiplies the score by the back-off factor.
            backed_off = self.score(context, term)
            return BACKOFF_FACTOR * backed_off

    def sentence_log_probability(self, sentence: Sequence[int]) -> float:
        """Sum of log10 stupid-backoff scores over the sentence."""
        log_probability = 0.0
        for index, term in enumerate(sentence):
            context = tuple(sentence[max(0, index - MAX_ORDER + 1) : index])
            log_probability += math.log10(self.score(context, term))
        return log_probability


def main() -> None:
    print("generating corpus ...")
    collection = NewswireCorpusGenerator(num_documents=150, seed=99).generate()
    encoded = collection.encode()
    total_tokens = encoded.num_token_occurrences

    print(f"counting n-grams up to length {MAX_ORDER} with tau={MIN_FREQUENCY} ...")
    suffix_result = count_ngrams(
        encoded, min_frequency=MIN_FREQUENCY, max_length=MAX_ORDER, algorithm="SUFFIX-SIGMA"
    )
    naive_result = count_ngrams(
        encoded, min_frequency=MIN_FREQUENCY, max_length=MAX_ORDER, algorithm="NAIVE"
    )
    print(
        f"SUFFIX-SIGMA shuffled {suffix_result.map_output_records} records "
        f"({suffix_result.map_output_bytes} bytes); "
        f"NAIVE shuffled {naive_result.map_output_records} records "
        f"({naive_result.map_output_bytes} bytes)"
    )

    model = StupidBackoffModel(suffix_result.statistics, total_tokens)

    print("\nscoring sample sentences (higher is more fluent):")
    vocabulary = encoded.vocabulary
    samples = [
        "the only thing we have to fear is fear itself".split(),
        "fear the we only thing itself is have to fear".split(),  # shuffled
        "t1 t2 t3 t4 t5".split(),
    ]
    for tokens in samples:
        try:
            term_ids = [vocabulary.term_id(token) for token in tokens]
        except Exception:
            print(f"  (skipping sentence with out-of-vocabulary words: {' '.join(tokens)})")
            continue
        log_probability = model.sentence_log_probability(term_ids)
        print(f"  {log_probability:10.2f}  {' '.join(tokens)}")

    print("\ntop trigrams by collection frequency:")
    decoded = suffix_result.statistics.decoded(vocabulary)
    for ngram, frequency in decoded.top(5, length=3):
        print(f"  {frequency:6d}  {' '.join(ngram)}")


if __name__ == "__main__":
    main()
