#!/usr/bin/env python3
"""Co-derivative document detection via long shared n-grams.

The paper motivates long n-grams with applications such as plagiarism
detection (it cites Bernstein and Zobel's work on co-derivative documents):
two documents sharing a long n-gram are very likely derived from one
another.  This example builds a small corpus in which some documents copy
sentences from others, uses the SUFFIX-σ inverted-index extension to find
which documents share long n-grams, and ranks document pairs by the length
of their longest shared n-gram.

Run with::

    python examples/plagiarism_detection.py
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Dict, List, Tuple

from repro.algorithms.extensions import SuffixSigmaIndexCounter
from repro.config import NGramJobConfig
from repro.corpus.collection import DocumentCollection
from repro.corpus.document import Document
from repro.corpus.synthetic import NewswireCorpusGenerator

MIN_SHARED_LENGTH = 8


def build_corpus_with_plagiarism(seed: int = 5) -> Tuple[DocumentCollection, List[Tuple[int, int]]]:
    """A newswire corpus where a few documents copy sentences from others."""
    rng = random.Random(seed)
    base = NewswireCorpusGenerator(num_documents=60, seed=seed).generate()
    documents = list(base.documents)
    plagiarised_pairs: List[Tuple[int, int]] = []

    next_doc_id = max(document.doc_id for document in documents) + 1
    for _ in range(5):
        source = rng.choice(documents)
        long_sentences = [s for s in source.sentences if len(s) >= MIN_SHARED_LENGTH]
        if not long_sentences:
            continue
        copied = rng.choice(long_sentences)
        filler = rng.choice(documents).sentences[:2]
        plagiarist = Document.from_sentences(
            next_doc_id, list(filler) + [copied], timestamp=source.timestamp
        )
        documents.append(plagiarist)
        plagiarised_pairs.append((source.doc_id, next_doc_id))
        next_doc_id += 1

    return DocumentCollection(documents), plagiarised_pairs


def main() -> None:
    collection, planted_pairs = build_corpus_with_plagiarism()
    encoded = collection.encode()
    print(f"corpus: {len(collection)} documents, {len(planted_pairs)} planted co-derivative pairs")

    # df >= 2: we only care about n-grams occurring in at least two documents.
    config = NGramJobConfig(min_frequency=2, max_length=None)
    counter = SuffixSigmaIndexCounter(config)
    counter.run(encoded)

    # Longest shared n-gram per document pair.
    best_shared: Dict[Tuple[int, int], int] = defaultdict(int)
    for ngram, postings in counter.document_postings.items():
        if len(ngram) < MIN_SHARED_LENGTH or len(postings) < 2:
            continue
        doc_ids = sorted(postings)
        for i, left in enumerate(doc_ids):
            for right in doc_ids[i + 1 :]:
                pair = (left, right)
                best_shared[pair] = max(best_shared[pair], len(ngram))

    ranked = sorted(best_shared.items(), key=lambda item: -item[1])
    print(f"\ndocument pairs sharing an n-gram of >= {MIN_SHARED_LENGTH} words:")
    detected = set()
    for (left, right), length in ranked[:10]:
        marker = "PLANTED" if (left, right) in set(planted_pairs) else "       "
        detected.add((left, right))
        print(f"  {marker}  docs {left:3d} & {right:3d} share a {length}-gram")

    found = sum(1 for pair in planted_pairs if pair in detected)
    print(f"\nrecovered {found} of {len(planted_pairs)} planted co-derivative pairs")


if __name__ == "__main__":
    main()
