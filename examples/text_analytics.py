#!/usr/bin/env python3
"""Text-analytics use case: long recurring fragments and n-gram time series.

The paper's second use case (Section VII.D) looks for *long* recurring
fragments of text — quotations, idioms, boilerplate — using a large maximum
length (σ = 100) and a higher minimum collection frequency, and Section VI
extends SUFFIX-σ to produce maximal/closed n-grams and per-year time series
(the "culturomics" style analysis of Michel et al.).

This example:

1. generates a synthetic newswire corpus whose documents span 1987–2007;
2. finds all n-grams of up to 100 words occurring at least five times;
3. reduces them to *maximal* n-grams (no frequent super-sequence), which is
   where quotations and recipes surface;
4. computes per-year time series for the most frequent long n-grams.

Run with::

    python examples/text_analytics.py
"""

from __future__ import annotations

from repro.algorithms.extensions import MaximalNGramCounter, SuffixSigmaTimeSeriesCounter
from repro.config import NGramJobConfig
from repro.corpus.synthetic import NewswireCorpusGenerator

MIN_FREQUENCY = 5
MAX_LENGTH = 100


def main() -> None:
    print("generating corpus (1987-2007) ...")
    collection = NewswireCorpusGenerator(
        num_documents=200, seed=2024, phrase_probability=0.10
    ).generate()
    encoded = collection.encode()
    config = NGramJobConfig(min_frequency=MIN_FREQUENCY, max_length=MAX_LENGTH)

    print(f"finding maximal n-grams (tau={MIN_FREQUENCY}, sigma={MAX_LENGTH}) ...")
    maximal_counter = MaximalNGramCounter(config)
    maximal_result = maximal_counter.run(encoded)
    decoded = maximal_result.statistics.decoded(encoded.vocabulary)

    long_ngrams = [
        (ngram, frequency) for ngram, frequency in decoded.items() if len(ngram) >= 6
    ]
    long_ngrams.sort(key=lambda item: (-len(item[0]), -item[1]))
    print(f"found {len(decoded)} maximal n-grams, {len(long_ngrams)} of length >= 6")
    print("\nlongest recurring fragments (quotations, recipes, chess openings):")
    for ngram, frequency in long_ngrams[:8]:
        print(f"  {frequency:4d}x  {' '.join(ngram)}")

    print("\ncomputing per-year time series for frequent long n-grams ...")
    timeseries_counter = SuffixSigmaTimeSeriesCounter(config)
    timeseries_counter.run(encoded)
    for ngram, _ in long_ngrams[:3]:
        term_ids = tuple(encoded.vocabulary.term_id(token) for token in ngram)
        series = timeseries_counter.time_series.series(term_ids)
        buckets = series.buckets()
        if not buckets:
            continue
        print(f"\n  '{' '.join(ngram[:8])} ...'")
        for year in buckets:
            bar = "#" * series.value(year)
            print(f"    {year}: {bar}")


if __name__ == "__main__":
    main()
