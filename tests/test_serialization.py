"""Tests for serialised-size accounting at the shuffle boundary."""

import pytest
from hypothesis import given, strategies as st

from repro.algorithms.postings import Posting, PostingList
from repro.exceptions import SerializationError
from repro.mapreduce.serialization import record_size, serialized_size
from repro.util.varint import encoded_length


class TestSerializedSize:
    def test_none_and_bool(self):
        assert serialized_size(None) == 1
        assert serialized_size(True) == 1
        assert serialized_size(False) == 1

    def test_small_int_is_one_byte(self):
        assert serialized_size(0) == 1
        assert serialized_size(127) == 1

    def test_larger_int_grows(self):
        assert serialized_size(128) == 2
        assert serialized_size(2**21) == 4

    def test_negative_int_charged_like_zigzag(self):
        assert serialized_size(-1) == encoded_length(3)
        assert serialized_size(-64) == encoded_length(129)

    def test_float_is_fixed_width(self):
        assert serialized_size(3.25) == 8

    def test_string_utf8_plus_length(self):
        assert serialized_size("abc") == 1 + 3
        assert serialized_size("") == 1

    def test_bytes(self):
        assert serialized_size(b"abcd") == 1 + 4

    def test_tuple_is_sum_plus_length_prefix(self):
        assert serialized_size((1, 2, 3)) == 1 + 3
        assert serialized_size(()) == 1

    def test_nested_structures(self):
        value = ((1, 2), "ab", [3, 4, 5])
        expected = 1 + (1 + 2) + (1 + 2) + (1 + 3)
        assert serialized_size(value) == expected

    def test_dict(self):
        assert serialized_size({1: 2, 3: 4}) == 1 + 4

    def test_object_with_serialized_size_hook(self):
        posting = Posting(doc_id=1, seq_id=0, positions=(0, 3))
        assert serialized_size(posting) == posting.serialized_size()
        posting_list = PostingList([posting])
        assert serialized_size(posting_list) == posting_list.serialized_size()

    def test_unsupported_object_raises(self):
        class Opaque:
            pass

        with pytest.raises(SerializationError):
            serialized_size(Opaque())

    def test_record_size_is_key_plus_value(self):
        assert record_size((1, 2), 3) == serialized_size((1, 2)) + serialized_size(3)

    @given(st.lists(st.integers(min_value=0, max_value=2**30), max_size=20))
    def test_integer_tuple_size_matches_varint_model(self, values):
        expected = 1 + sum(encoded_length(value) for value in values)
        # Length prefix of the tuple is itself a varint; for <= 20 elements it
        # is a single byte.
        assert serialized_size(tuple(values)) == expected

    @given(st.integers(min_value=0, max_value=2**50))
    def test_monotone_in_magnitude(self, value):
        assert serialized_size(value * 2 + 1) >= serialized_size(value)
