"""Tests for the reverse lexicographic order (Section IV)."""

from functools import cmp_to_key

from hypothesis import given, strategies as st

from repro.ngrams.ordering import (
    ReverseLexicographicOrder,
    is_reverse_lexicographically_sorted,
    reverse_lexicographic_compare,
    reverse_lexicographic_sort_key,
)
from repro.ngrams.sequence import is_prefix

terms = st.integers(min_value=0, max_value=6)
sequences = st.lists(terms, min_size=0, max_size=8).map(tuple)


def paper_definition_less_than(r, s) -> bool:
    """Literal transcription of the paper's definition of r < s."""
    if len(r) > len(s) and is_prefix(s, r):
        return True
    for i in range(min(len(r), len(s))):
        if r[:i] == s[:i] and r[i] > s[i]:
            return True
    return False


class TestCompare:
    def test_paper_example_order(self):
        # The reducer for term b receives suffixes in this order (Section IV).
        expected = [("b", "x", "x"), ("b", "x"), ("b", "a", "x"), ("b",)]
        # term order in the example: a < b < x lexicographically.
        assert is_reverse_lexicographically_sorted(expected)

    def test_longer_before_prefix(self):
        assert reverse_lexicographic_compare((1, 2), (1,)) < 0
        assert reverse_lexicographic_compare((1,), (1, 2)) > 0

    def test_larger_terms_first(self):
        assert reverse_lexicographic_compare((5,), (3,)) < 0
        assert reverse_lexicographic_compare((3,), (5,)) > 0

    def test_equal(self):
        assert reverse_lexicographic_compare((1, 2, 3), (1, 2, 3)) == 0
        assert reverse_lexicographic_compare((), ()) == 0

    def test_empty_sorts_last(self):
        assert reverse_lexicographic_compare((0,), ()) < 0

    @given(sequences, sequences)
    def test_matches_paper_definition(self, r, s):
        comparison = reverse_lexicographic_compare(r, s)
        if paper_definition_less_than(r, s):
            assert comparison < 0
        elif paper_definition_less_than(s, r):
            assert comparison > 0
        else:
            assert comparison == 0
            assert r == s

    @given(sequences, sequences)
    def test_antisymmetric(self, r, s):
        assert reverse_lexicographic_compare(r, s) == -reverse_lexicographic_compare(s, r)

    @given(sequences, sequences, sequences)
    def test_transitive(self, a, b, c):
        ordered = sorted([a, b, c], key=cmp_to_key(reverse_lexicographic_compare))
        assert reverse_lexicographic_compare(ordered[0], ordered[1]) <= 0
        assert reverse_lexicographic_compare(ordered[1], ordered[2]) <= 0
        assert reverse_lexicographic_compare(ordered[0], ordered[2]) <= 0

    @given(st.lists(sequences, max_size=30))
    def test_sort_key_equivalent_to_comparator(self, items):
        by_comparator = sorted(items, key=cmp_to_key(reverse_lexicographic_compare))
        by_key = sorted(items, key=reverse_lexicographic_sort_key)
        assert by_comparator == by_key

    @given(st.lists(sequences, max_size=30))
    def test_sorted_predicate(self, items):
        ordered = sorted(items, key=cmp_to_key(reverse_lexicographic_compare))
        assert is_reverse_lexicographically_sorted(ordered)


class TestComparatorClass:
    def test_compare_delegates(self):
        comparator = ReverseLexicographicOrder()
        assert comparator.compare((2,), (1,)) < 0

    def test_sort_key_function_present(self):
        assert ReverseLexicographicOrder().sort_key_function() is not None

    def test_key_prefix_property(self):
        # A longer sequence must sort before every proper prefix of it.
        key = reverse_lexicographic_sort_key
        assert key((3, 1, 2)) < key((3, 1))
        assert key((3, 1)) < key((3,))
