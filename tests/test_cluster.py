"""Tests for the simulated cluster cost model."""

import pytest

from repro.config import ClusterConfig
from repro.mapreduce.cluster import ClusterCostModel, SimulatedCluster
from repro.mapreduce.metrics import JobMetrics, TaskMetrics


def _job_metrics(num_map_tasks=8, num_reduce_tasks=4, records_per_task=1000, bytes_per_task=10_000):
    metrics = JobMetrics(job_name="test")
    for index in range(num_map_tasks):
        metrics.map_tasks.append(
            TaskMetrics(
                task_type="map",
                task_index=index,
                input_records=records_per_task,
                output_records=records_per_task,
                output_bytes=bytes_per_task,
            )
        )
    for index in range(num_reduce_tasks):
        metrics.reduce_tasks.append(
            TaskMetrics(
                task_type="reduce",
                task_index=index,
                input_records=records_per_task,
                output_records=records_per_task // 10,
                output_bytes=bytes_per_task // 10,
                sorted_records=records_per_task,
            )
        )
    return metrics


class TestTaskMetrics:
    def test_invalid_task_type(self):
        with pytest.raises(ValueError):
            TaskMetrics(task_type="shuffle", task_index=0, input_records=0, output_records=0, output_bytes=0)

    def test_job_metrics_aggregates(self):
        metrics = _job_metrics(num_map_tasks=3, num_reduce_tasks=2, records_per_task=10)
        assert metrics.num_map_tasks == 3
        assert metrics.num_reduce_tasks == 2
        assert metrics.map_output_records == 30
        assert metrics.reduce_output_records == 2


class TestClusterCostModel:
    def test_more_slots_never_slower(self):
        metrics = _job_metrics(num_map_tasks=32)
        durations = []
        for slots in (4, 8, 16, 32, 64):
            model = ClusterCostModel(ClusterConfig.with_slots(slots))
            durations.append(model.estimate_job(metrics).total_seconds)
        assert all(later <= earlier + 1e-9 for earlier, later in zip(durations, durations[1:]))

    def test_diminishing_returns_beyond_task_count(self):
        metrics = _job_metrics(num_map_tasks=8, num_reduce_tasks=4)
        model_8 = ClusterCostModel(ClusterConfig.with_slots(8))
        model_64 = ClusterCostModel(ClusterConfig.with_slots(64))
        # With only 8 map tasks, going from 8 to 64 slots saves nothing in
        # the map phase.
        assert (
            model_8.estimate_job(metrics).map_phase.seconds
            == model_64.estimate_job(metrics).map_phase.seconds
        )

    def test_job_overhead_charged_per_job(self):
        config = ClusterConfig(job_overhead=2.0)
        model = ClusterCostModel(config)
        metrics = _job_metrics()
        single = model.estimate_pipeline([metrics])
        double = model.estimate_pipeline([metrics, metrics])
        assert double == pytest.approx(2 * single)
        assert single >= 2.0

    def test_empty_phase(self):
        metrics = JobMetrics(job_name="empty")
        model = ClusterCostModel(ClusterConfig())
        estimate = model.estimate_job(metrics)
        assert estimate.map_phase.seconds == 0.0
        assert estimate.reduce_phase.seconds == 0.0
        assert estimate.total_seconds == pytest.approx(ClusterConfig().job_overhead)

    def test_more_records_cost_more(self):
        model = ClusterCostModel(ClusterConfig())
        small = model.estimate_job(_job_metrics(records_per_task=100)).total_seconds
        large = model.estimate_job(_job_metrics(records_per_task=10_000)).total_seconds
        assert large > small

    def test_shuffle_cost_scales_with_bytes(self):
        model = ClusterCostModel(ClusterConfig())
        small = model.estimate_job(_job_metrics(bytes_per_task=1_000)).shuffle_seconds
        large = model.estimate_job(_job_metrics(bytes_per_task=1_000_000)).shuffle_seconds
        assert large > small

    def test_phase_estimate_wave_count(self):
        metrics = _job_metrics(num_map_tasks=10)
        model = ClusterCostModel(ClusterConfig.with_slots(4))
        estimate = model.estimate_job(metrics)
        assert estimate.map_phase.num_tasks == 10
        assert estimate.map_phase.num_waves == 3


class TestSimulatedCluster:
    def test_wallclock_wrapper(self):
        cluster = SimulatedCluster.with_slots(16)
        metrics = [_job_metrics(), _job_metrics()]
        assert cluster.wallclock(metrics) == pytest.approx(
            ClusterCostModel(cluster.config).estimate_pipeline(metrics)
        )

    def test_job_estimates(self):
        cluster = SimulatedCluster.with_slots(8)
        estimates = cluster.job_estimates([_job_metrics(), _job_metrics()])
        assert len(estimates) == 2
        assert all(estimate.total_seconds > 0 for estimate in estimates)
