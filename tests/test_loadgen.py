"""Tests for the workload replay harness and its SLO gate."""

import json

import pytest

from repro.cli import main
from repro.config import StoreConfig
from repro.exceptions import StoreError
from repro.ngramstore import NGramStore, build_store
from repro.ngramstore.loadgen import (
    MIXES,
    REPORT_SCHEMA,
    LoadgenConfig,
    SLOTargets,
    build_operations,
    check_slos,
    run_loadgen,
)


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("loadgen-store") / "store")
    records = [((i, j), (i * 31 + j) % 211 + 1) for i in range(30) for j in range(12)]
    build_store(
        records, directory, store=StoreConfig(num_partitions=2, records_per_block=16)
    )
    return directory


class TestConfig:
    def test_unknown_mix_rejected(self):
        with pytest.raises(StoreError, match="unknown mix"):
            LoadgenConfig(mixes=("hot_key", "bogus"))

    @pytest.mark.parametrize(
        "field, value",
        [
            ("requests_per_mix", 0),
            ("concurrency", 0),
            ("batch_size", -1),
            ("universe", 0),
        ],
    )
    def test_non_positive_knobs_rejected(self, field, value):
        with pytest.raises(StoreError):
            LoadgenConfig(**{field: value})


class TestGeneration:
    def test_same_seed_same_workload(self, store_dir):
        config = LoadgenConfig(requests_per_mix=40, seed=7)
        with NGramStore.open(store_dir) as store:
            first = build_operations(store, config)
            second = build_operations(store, config)
        assert first == second

    def test_different_seed_different_workload(self, store_dir):
        with NGramStore.open(store_dir) as store:
            first = build_operations(store, LoadgenConfig(requests_per_mix=40, seed=1))
            second = build_operations(store, LoadgenConfig(requests_per_mix=40, seed=2))
        assert first != second

    def test_mix_shapes(self, store_dir):
        config = LoadgenConfig(requests_per_mix=30, batch_size=5)
        with NGramStore.open(store_dir) as store:
            workload = build_operations(store, config)
        assert set(workload) == set(MIXES)
        assert all(kind == "get" for kind, _ in workload["hot_key"])
        assert all(kind == "prefix" for kind, _ in workload["prefix_heavy"])
        for kind, payload in workload["batch"]:
            assert kind == "multi_get"
            assert len(payload) == 5
        assert {kind for kind, _ in workload["mixed"]} <= {"get", "prefix", "multi_get"}

    def test_hot_key_skew_favours_frequent_keys(self, store_dir):
        config = LoadgenConfig(requests_per_mix=400, zipf_s=1.5, seed=3)
        with NGramStore.open(store_dir) as store:
            top = tuple(store.top_k(1, order="frequency")[0][0])
            workload = build_operations(store, config)
        hottest_hits = sum(1 for _, key in workload["hot_key"] if tuple(key) == top)
        # Rank 1 of a zipf(1.5) draw over 256 keys carries ~37% of the mass;
        # 400 draws put the hit count far above a uniform draw's ~1.5.
        assert hottest_hits > 40

    def test_empty_store_rejected(self, tmp_path):
        directory = str(tmp_path / "empty")
        build_store([], directory)
        with NGramStore.open(directory) as store:
            with pytest.raises(StoreError, match="empty"):
                build_operations(store, LoadgenConfig())


class TestReplay:
    def test_report_shape_and_counts(self, store_dir):
        config = LoadgenConfig(requests_per_mix=25, concurrency=3, seed=5)
        with NGramStore.open(store_dir) as store:
            report = run_loadgen(store, config, target="unit-test")
        assert report["schema"] == REPORT_SCHEMA
        assert report["target"] == "unit-test"
        assert set(report["mixes"]) == set(MIXES)
        for stats in report["mixes"].values():
            assert stats["requests"] == 25
            assert stats["errors"] == 0
            assert stats["throughput_rps"] > 0
            assert 0 <= stats["p50_ms"] <= stats["p95_ms"] <= stats["p99_ms"]
            assert stats["p99_ms"] <= stats["max_ms"]

    def test_per_worker_factory_builds_and_closes(self, store_dir):
        built = []

        class TrackingStore:
            def __init__(self):
                self.inner = NGramStore.open(store_dir)
                self.closed = False
                built.append(self)

            def __getattr__(self, name):
                return getattr(self.inner, name)

            def close(self):
                self.closed = True
                self.inner.close()

        config = LoadgenConfig(
            mixes=("hot_key",), requests_per_mix=10, concurrency=3
        )
        with NGramStore.open(store_dir) as generator:
            run_loadgen(generator, config, factory=TrackingStore)
        assert len(built) == 3
        assert all(worker.closed for worker in built)

    def test_json_serialisable(self, store_dir):
        with NGramStore.open(store_dir) as store:
            report = run_loadgen(
                store, LoadgenConfig(mixes=("hot_key",), requests_per_mix=5)
            )
        json.dumps(report)


class TestSLOs:
    def _report(self, p99=10.0, throughput=100.0, errors=0):
        return {
            "mixes": {
                "hot_key": {
                    "p50_ms": 1.0,
                    "p95_ms": 5.0,
                    "p99_ms": p99,
                    "throughput_rps": throughput,
                    "errors": errors,
                }
            }
        }

    def test_all_met(self):
        slo = SLOTargets(p99_ms=50.0, min_throughput=10.0)
        assert check_slos(self._report(), slo) == []

    def test_latency_violation(self):
        violations = check_slos(self._report(p99=100.0), SLOTargets(p99_ms=50.0))
        assert len(violations) == 1
        assert "p99" in violations[0]

    def test_throughput_violation(self):
        violations = check_slos(
            self._report(throughput=5.0), SLOTargets(min_throughput=10.0)
        )
        assert any("throughput" in violation for violation in violations)

    def test_errors_always_flagged(self):
        violations = check_slos(self._report(errors=2), SLOTargets())
        assert any("failed" in violation for violation in violations)

    def test_unset_targets_unchecked(self):
        assert check_slos(self._report(p99=10_000.0), SLOTargets()) == []
        assert not SLOTargets().any_set()
        assert SLOTargets(p50_ms=1.0).any_set()


class TestLoadgenCLI:
    def test_end_to_end_report_and_exit_zero(self, store_dir, tmp_path, capsys):
        report_path = tmp_path / "reports" / "BENCH_loadgen.json"
        code = main(
            [
                "loadgen",
                store_dir,
                "--requests",
                "10",
                "--concurrency",
                "2",
                "--report",
                str(report_path),
                "--slo-p99-ms",
                "60000",
            ]
        )
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["schema"] == REPORT_SCHEMA
        assert report["ok"] is True
        assert report["slo"]["p99_ms"] == 60000
        assert report["slo_violations"] == []
        printed = json.loads(capsys.readouterr().out)
        assert printed["mixes"].keys() == report["mixes"].keys()

    def test_slo_violation_exits_one(self, store_dir, tmp_path, capsys):
        report_path = tmp_path / "BENCH_loadgen.json"
        code = main(
            [
                "loadgen",
                store_dir,
                "--mixes",
                "hot_key",
                "--requests",
                "5",
                "--report",
                str(report_path),
                "--slo-p50-ms",
                "0.000001",
            ]
        )
        assert code == 1
        report = json.loads(report_path.read_text())
        assert report["ok"] is False
        assert report["slo_violations"]
        assert "SLO violation" in capsys.readouterr().err

    def test_requires_exactly_one_target(self, store_dir, capsys):
        assert main(["loadgen"]) == 2
        assert (
            main(["loadgen", store_dir, "--connect", "127.0.0.1:1"]) == 2
        )
        assert "exactly one target" in capsys.readouterr().err

    def test_bad_endpoint_exits_two(self, capsys):
        assert main(["loadgen", "--connect", "not-an-endpoint"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_multiple_endpoints_need_topology(self, capsys):
        code = main(
            ["loadgen", "--connect", "127.0.0.1:1", "--connect", "127.0.0.1:2"]
        )
        assert code == 2
        assert "--topology" in capsys.readouterr().err

    def test_unknown_mix_exits_two(self, store_dir, capsys):
        assert main(["loadgen", store_dir, "--mixes", "bogus"]) == 2
        assert "unknown mix" in capsys.readouterr().err
