"""Tests for the wallclock timer helper."""

import time

import pytest

from repro.util.timer import Timer


class TestTimer:
    def test_context_manager_measures_elapsed(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.005

    def test_stop_without_start_raises(self):
        timer = Timer()
        with pytest.raises(RuntimeError):
            timer.stop()

    def test_running_flag(self):
        timer = Timer()
        assert not timer.running
        timer.start()
        assert timer.running
        timer.stop()
        assert not timer.running

    def test_elapsed_while_running_grows(self):
        timer = Timer()
        timer.start()
        first = timer.elapsed
        time.sleep(0.005)
        second = timer.elapsed
        assert second >= first
        timer.stop()

    def test_restart_resets_measurement(self):
        timer = Timer()
        timer.start()
        time.sleep(0.01)
        timer.stop()
        first = timer.elapsed
        timer.start()
        second = timer.stop()
        assert second <= first


class TestStopwatch:
    def test_starts_at_construction(self):
        from repro.util.timer import Stopwatch

        watch = Stopwatch()
        time.sleep(0.005)
        assert watch.elapsed() >= 0.004
        assert watch.elapsed_ms() == pytest.approx(watch.elapsed() * 1e3, rel=0.5)

    def test_restart_resets_origin(self):
        from repro.util.timer import Stopwatch

        watch = Stopwatch()
        time.sleep(0.005)
        watch.restart()
        assert watch.elapsed() < 0.005

    def test_lap_returns_split_and_restarts(self):
        from repro.util.timer import Stopwatch

        watch = Stopwatch()
        time.sleep(0.005)
        first = watch.lap()
        second = watch.lap()
        assert first >= 0.004
        assert second < first
