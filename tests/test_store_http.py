"""Tests for the HTTP front-end: GET routes, POST /query, errors, CLI."""

import json
import os
import random
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.config import ServerConfig, StoreConfig
from repro.exceptions import StoreConnectionError, StoreError
from repro.ngramstore import (
    HttpStoreClient,
    NGramStore,
    NGramStoreHTTPServer,
    build_store,
)


def make_records(count=300, seed=17, max_term=30, max_len=3):
    rng = random.Random(seed)
    keys = set()
    while len(keys) < count:
        keys.add(tuple(rng.randint(0, max_term) for _ in range(rng.randint(1, max_len))))
    return [(key, rng.randint(1, 300)) for key in sorted(keys)]


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("http-store") / "store")
    build_store(
        make_records(),
        directory,
        store=StoreConfig(num_partitions=3, records_per_block=32),
        metadata={"origin": "test_store_http"},
    )
    return directory


@pytest.fixture(scope="module")
def server(store_dir):
    with NGramStoreHTTPServer(
        store_dir, config=ServerConfig(port=0, cache_blocks=16, protocol="http")
    ) as running:
        yield running


@pytest.fixture(scope="module")
def base_url(server):
    return f"http://{server.host}:{server.port}"


@pytest.fixture()
def expected():
    return dict(make_records())


def http_get(url):
    """(status, parsed JSON body) for a GET, errors included."""
    try:
        with urllib.request.urlopen(url) as reply:
            return reply.status, json.loads(reply.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestGetRoutes:
    def test_ping(self, base_url):
        status, body = http_get(f"{base_url}/ping")
        assert status == 200
        assert body == {"ok": True, "pong": True}

    def test_get_by_key(self, base_url, expected):
        key = sorted(expected)[11]
        status, body = http_get(f"{base_url}/get?key={','.join(map(str, key))}")
        assert status == 200
        assert body["found"] is True
        assert body["value"] == expected[key]
        status, body = http_get(f"{base_url}/get?key=31000")
        assert status == 200
        assert body["found"] is False

    def test_prefix_with_limit(self, base_url, store_dir, expected):
        term = sorted(expected)[0][0]
        with NGramStore.open(store_dir) as store:
            reference = [[list(key), value] for key, value in store.prefix((term,))]
        status, body = http_get(f"{base_url}/prefix?key={term}")
        assert status == 200
        assert body["records"] == reference
        status, body = http_get(f"{base_url}/prefix?key={term}&limit=2")
        assert body["records"] == reference[:2]

    def test_top_k(self, base_url, store_dir):
        with NGramStore.open(store_dir) as store:
            reference = [[list(key), value] for key, value in store.top_k(5)]
        status, body = http_get(f"{base_url}/top_k?k=5&order=frequency")
        assert status == 200
        assert body["records"] == reference

    def test_stats_and_server_stats(self, base_url, expected):
        status, body = http_get(f"{base_url}/stats")
        assert status == 200
        assert body["num_records"] == len(expected)
        assert body["metadata"]["origin"] == "test_store_http"
        status, body = http_get(f"{base_url}/server_stats")
        assert status == 200
        assert body["requests"] >= 1
        assert "cache" in body

    def test_unknown_route_404(self, base_url):
        status, body = http_get(f"{base_url}/frobnicate")
        assert status == 404
        assert body["ok"] is False
        assert "/get" in body["error"]

    def test_bad_parameters_400(self, base_url):
        status, body = http_get(f"{base_url}/get?key=not-an-id")
        assert status == 400
        assert "terms=" in body["error"]
        status, body = http_get(f"{base_url}/top_k?k=many")
        assert status == 400
        status, body = http_get(f"{base_url}/prefix?key=1&limit=-3")
        assert status == 400


class TestPostQuery:
    def post(self, base_url, payload):
        request = urllib.request.Request(
            f"{base_url}/query",
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request) as reply:
                return reply.status, json.loads(reply.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def test_same_schema_as_socket_protocol(self, base_url, expected):
        key = sorted(expected)[7]
        status, body = self.post(base_url, {"op": "get", "key": list(key)})
        assert (status, body["value"]) == (200, expected[key])
        status, body = self.post(
            base_url, {"op": "multi_get", "keys": [list(key), [31000]]}
        )
        assert body["found"] == [True, False]
        assert body["values"] == [expected[key], None]

    def test_legacy_field_spellings_flagged(self, base_url, expected):
        key = sorted(expected)[7]
        status, body = self.post(base_url, {"op": "get", "ngram": list(key)})
        assert status == 200
        assert body["value"] == expected[key]
        assert "deprecated" in body
        assert "'key'" in body["deprecated"]

    def test_errors_are_400_not_dead_connections(self, base_url):
        status, body = self.post(base_url, {"op": "frobnicate"})
        assert status == 400
        assert body["ok"] is False
        status, body = self.post(base_url, {"op": "get", "key": "not-a-list"})
        assert status == 400
        status, body = http_get(f"{base_url}/ping")  # server still alive
        assert status == 200

    def test_non_object_body_rejected(self, base_url):
        request = urllib.request.Request(
            f"{base_url}/query", data=b"[1, 2, 3]", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400


class TestHttpStoreClient:
    def test_full_surface(self, base_url, store_dir, expected):
        with NGramStore.open(store_dir) as direct, HttpStoreClient(base_url) as client:
            for key in sorted(expected)[::31]:
                assert client.get(key) == direct.get(key)
            term = sorted(expected)[0][0]
            assert client.prefix((term,)) == list(direct.prefix((term,)))
            assert client.top_k(6) == direct.top_k(6)
            assert client.stats() == direct.stats()
            assert client.ping()

    def test_application_error_is_store_error(self, base_url):
        client = HttpStoreClient(base_url)
        with pytest.raises(StoreError, match="unknown op"):
            client._call({"op": "frobnicate"})

    def test_dead_endpoint_is_connection_error(self):
        client = HttpStoreClient("http://127.0.0.1:1", max_retries=1, backoff=0.01)
        with pytest.raises(StoreConnectionError, match="cannot reach"):
            client.ping()

    def test_thread_safe_sharing(self, base_url, store_dir, expected):
        """One HTTP client instance is safe to share across threads."""
        with NGramStore.open(store_dir) as direct:
            reference = direct.top_k(5)
        client = HttpStoreClient(base_url)
        keys = sorted(expected)

        def hammer(seed):
            rng = random.Random(seed)
            for _ in range(20):
                key = rng.choice(keys)
                assert client.get(key) == expected[key]
            assert client.top_k(5) == reference
            return True

        with ThreadPoolExecutor(max_workers=6) as pool:
            assert all(pool.map(hammer, range(10)))
        # The pool never grows past the caller concurrency level.
        assert 1 <= client.connections_opened <= 6
        client.close()

    def test_keep_alive_reuses_one_connection(self, base_url, expected):
        """Sequential calls ride one persistent connection, not one each."""
        with HttpStoreClient(base_url) as client:
            keys = sorted(expected)[::19]
            for key in keys:
                assert client.get(key) == expected[key]
            assert client.top_k(5)
            assert client.ping()
            assert client.connections_opened == 1

    def test_stale_pooled_connection_retried_without_burning_budget(
        self, base_url, expected
    ):
        """A keep-alive socket the server idled out is a free retry."""
        client = HttpStoreClient(base_url, max_retries=0)  # zero retry budget
        try:
            assert client.ping()
            assert client.connections_opened == 1
            (pooled,) = client._idle
            pooled.sock.close()  # sever it under the client: stale keep-alive
            key = sorted(expected)[0]
            assert client.get(key) == expected[key]  # fresh dial, no error
            assert client.connections_opened == 2
        finally:
            client.close()

    def test_application_errors_keep_the_connection(self, base_url):
        """4xx answers are data, not transport failures: no re-dial."""
        with HttpStoreClient(base_url) as client:
            assert client.ping()
            for _ in range(3):
                with pytest.raises(StoreError, match="unknown op"):
                    client._call({"op": "frobnicate"})
            assert client.ping()
            assert client.connections_opened == 1

    def test_close_drains_the_pool(self, base_url):
        client = HttpStoreClient(base_url)
        assert client.ping()
        client.close()
        assert client._idle == []
        with pytest.raises(StoreError, match="closed"):
            client.ping()
        client.close()  # idempotent

    def test_invalid_url_rejected(self):
        with pytest.raises(StoreError, match="http"):
            HttpStoreClient("not-a-url")
        with pytest.raises(StoreError, match="http"):
            HttpStoreClient("ftp://example.com/store")


class TestServeHTTPCLI:
    def test_serve_http_subprocess(self, store_dir, tmp_path, expected):
        """`repro serve --http` end to end: ready-file, queries, shutdown."""
        ready = tmp_path / "ready"
        metrics_file = tmp_path / "metrics.json"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                store_dir,
                "--http",
                "--port",
                "0",
                "--ready-file",
                str(ready),
                "--metrics-file",
                str(metrics_file),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.time() + 30
            while not ready.exists() and time.time() < deadline:
                assert process.poll() is None, process.communicate()[1]
                time.sleep(0.05)
            host, port = ready.read_text().split()
            base = f"http://{host}:{port}"
            status, body = http_get(f"{base}/ping")
            assert (status, body["pong"]) == (200, True)
            key = sorted(expected)[3]
            status, body = http_get(f"{base}/get?key={','.join(map(str, key))}")
            assert body["value"] == expected[key]
            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, stderr
        assert "protocol=http" in stdout
        metrics = json.loads(metrics_file.read_text())
        assert metrics["operations"]["get"]["count"] >= 1


class TestHttpObservability:
    """GET /metrics exposition, tracing, and the gateway router series."""

    def test_metrics_endpoint_returns_prometheus_text(self, base_url):
        with urllib.request.urlopen(f"{base_url}/metrics") as reply:
            assert reply.status == 200
            assert reply.headers["Content-Type"].startswith("text/plain")
            text = reply.read().decode("utf-8")
        assert text.endswith("\n")
        assert "# TYPE ngramstore_requests_total counter" in text
        assert "ngramstore_request_seconds_bucket" in text
        assert 'ngramstore_block_cache_events{event="hits"}' in text
        assert 'ngramstore_io_events{event="blocks_decoded"}' in text
        # Exposition lines are "name{labels} value" or comments — no blanks.
        for line in text.rstrip("\n").splitlines():
            assert line.startswith("#") or " " in line

    def test_metrics_scrape_is_counted(self, base_url):
        with urllib.request.urlopen(f"{base_url}/metrics") as reply:
            reply.read()
        with urllib.request.urlopen(f"{base_url}/metrics") as reply:
            text = reply.read().decode("utf-8")
        scrapes = [
            line
            for line in text.splitlines()
            if line.startswith('ngramstore_requests_total{op="metrics"}')
        ]
        assert scrapes and float(scrapes[0].rsplit(" ", 1)[1]) >= 1

    def test_metrics_op_over_post_query(self, base_url):
        request = urllib.request.Request(
            f"{base_url}/query",
            data=json.dumps({"op": "metrics"}).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request) as reply:
            body = json.loads(reply.read())
        assert body["ok"] is True
        assert "ngramstore_requests_total" in body["text"]

    def test_client_metrics_text_and_trace_id(self, base_url):
        with HttpStoreClient(base_url) as client:
            client.get((1, 2))
            assert client.last_trace_id
            assert len(client.last_trace_id) == 16
            text = client.metrics_text()
        assert "ngramstore_requests_total" in text

    def test_slow_log_trace_id_matches_http_client(self, store_dir, tmp_path):
        log_path = tmp_path / "slow-http.jsonl"
        config = ServerConfig(
            port=0,
            protocol="http",
            slow_query_ms=0.0,
            slow_query_log=str(log_path),
        )
        with NGramStoreHTTPServer(store_dir, config=config) as running:
            with HttpStoreClient(f"http://{running.host}:{running.port}") as client:
                client.get((1, 2))
                trace_id = client.last_trace_id
        entries = [
            json.loads(line)
            for line in log_path.read_text(encoding="utf-8").splitlines()
        ]
        gets = [entry for entry in entries if entry["op"] == "get"]
        assert gets and gets[-1]["trace_id"] == trace_id
        assert "parse" in gets[-1]["stages_ms"]
        assert "blocks_decoded" in gets[-1]["io"]

    def test_gateway_exposes_router_series(self, store_dir):
        """A server fronting a ShardRouter merges the router's registry
        into its /metrics — fan-out series are scrapeable at the edge."""
        from repro.ngramstore.router import ShardRouter, ShardView

        stores = [NGramStore.open(store_dir) for _ in range(2)]
        router = ShardRouter(
            [ShardView(store, index, 2) for index, store in enumerate(stores)]
        )
        config = ServerConfig(port=0, protocol="http")
        with NGramStoreHTTPServer(router, config=config) as gateway:
            base = f"http://{gateway.host}:{gateway.port}"
            status, body = http_get(f"{base}/top_k?k=5")
            assert status == 200 and len(body["records"]) == 5
            with urllib.request.urlopen(f"{base}/metrics") as reply:
                text = reply.read().decode("utf-8")
        assert 'ngramstore_router_requests_total{op="top_k"}' in text
        assert "ngramstore_router_fanout_seconds_bucket" in text
        assert "ngramstore_router_shards 2" in text
