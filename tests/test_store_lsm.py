"""LSM store generations: incremental ingestion, compaction, live serving.

Three claims under test:

1. **Pre-compaction exactness** — a :class:`GenerationView` over k ingested
   τ=1 delta generations answers every ``StoreAPI`` query (get, multi_get,
   prefix, top-k in both orders, scan) identically to a single store built
   from the summed union of the batches.
2. **Compaction exactness** — ``compact --all`` folds the generations
   through the residual-exact merge, so the surviving generation equals a
   from-scratch union store thresholded at the tree's τ, and its residual
   sidecar preserves the sub-τ counts for every later merge.
3. **Serving identity** — the ingest→compact→serve pipeline conforms across
   all five ``StoreAPI`` implementations (local view, socket, replicas,
   sharded, HTTP): every transport returns the union store's answers.
"""

import json
import os
import random

import pytest

from repro.cli import main
from repro.config import ServerConfig, StoreConfig
from repro.corpus.vocabulary import Vocabulary
from repro.exceptions import StoreError
from repro.ngramstore import (
    BlockCache,
    GenerationView,
    HttpStoreClient,
    LSMStore,
    NGramStore,
    NGramStoreHTTPServer,
    NGramStoreServer,
    ReplicaPool,
    ShardRouter,
    ShardView,
    StoreClient,
    build_store,
    is_lsm_dir,
    open_store_auto,
)

MAX_TERM = 40

IMPLEMENTATIONS = ("local", "socket", "replicas", "sharded", "http")


def make_batch(count, seed, max_term=MAX_TERM, max_len=3):
    """One ingest batch: τ=1 counts of ``count`` distinct random n-grams."""
    rng = random.Random(seed)
    keys = set()
    while len(keys) < count:
        keys.add(tuple(rng.randint(0, max_term) for _ in range(rng.randint(1, max_len))))
    return [(key, rng.randint(1, 30)) for key in sorted(keys)]


def summed(*batches):
    totals = {}
    for batch in batches:
        for key, value in batch:
            totals[key] = totals.get(key, 0) + value
    return sorted(totals.items())


def term_for(term_id):
    return f"w{term_id:02d}"


def make_vocabulary(max_term=MAX_TERM):
    return Vocabulary.from_term_frequencies(
        {term_for(index): 1000 - index for index in range(max_term + 1)}
    )


class TestLSMLifecycle:
    def test_init_and_reopen(self, tmp_path):
        root = str(tmp_path / "lsm")
        store = LSMStore.init(root, min_frequency=3, max_length=4)
        assert is_lsm_dir(root)
        assert store.min_frequency == 3
        assert store.generations == []
        assert store.num_records == 0
        reopened = LSMStore.open(root)
        assert reopened.min_frequency == 3
        assert reopened.manifest["max_length"] == 4

    def test_init_refuses_existing_lsm_dir(self, tmp_path):
        root = str(tmp_path / "lsm")
        LSMStore.init(root)
        with pytest.raises(StoreError, match="already an LSM store"):
            LSMStore.init(root)

    def test_init_refuses_plain_store_dir(self, tmp_path):
        store_dir = str(tmp_path / "plain")
        build_store([((1,), 2)], store_dir)
        with pytest.raises(StoreError, match="plain store"):
            LSMStore.init(store_dir)

    def test_open_without_manifest(self, tmp_path):
        with pytest.raises(StoreError, match="no LSM manifest"):
            LSMStore.open(str(tmp_path / "nowhere"))

    def test_init_rejects_bad_threshold(self, tmp_path):
        with pytest.raises(StoreError, match="min_frequency"):
            LSMStore.init(str(tmp_path / "lsm"), min_frequency=0)

    def test_generations_are_numbered_monotonically(self, tmp_path):
        store = LSMStore.init(str(tmp_path / "lsm"), min_frequency=2)
        first = store.ingest_records(make_batch(50, seed=1))
        second = store.ingest_records(make_batch(50, seed=2))
        assert [first["name"], second["name"]] == ["gen-00000", "gen-00001"]
        store.compact(all_generations=True)
        third = store.ingest_records(make_batch(50, seed=3))
        # Compaction consumed gen-00002; new deltas never reuse a name.
        assert third["name"] == "gen-00003"

    def test_vocabulary_mismatch_rejected(self, tmp_path):
        store = LSMStore.init(str(tmp_path / "lsm"))
        store.ingest_records(make_batch(30, seed=4), vocabulary=make_vocabulary())
        other = Vocabulary.from_term_frequencies({"different": 1})
        with pytest.raises(StoreError, match="vocabulary disagrees"):
            store.ingest_records(make_batch(30, seed=5), vocabulary=other)


class TestGenerationViewExactness:
    def test_view_equals_union_store_before_compaction(self, tmp_path):
        batches = [make_batch(150, seed=10 + index) for index in range(3)]
        store = LSMStore.init(
            str(tmp_path / "lsm"),
            min_frequency=2,
            store=StoreConfig(num_partitions=2, records_per_block=32),
        )
        for batch in batches:
            store.ingest_records(batch)
        union = summed(*batches)
        union_dir = str(tmp_path / "union")
        build_store(
            union, union_dir, store=StoreConfig(num_partitions=3, records_per_block=32)
        )
        with store.view() as view, NGramStore.open(union_dir) as scratch:
            assert list(view.scan()) == list(scratch.items())
            assert view.num_records == sum(len(batch) for batch in batches)
            assert view.top_k(12) == scratch.top_k(12)
            assert view.top_k(12, order="key") == scratch.top_k(12, order="key")
            keys = [key for key, _ in union[::17]] + [(MAX_TERM + 99,)]
            assert view.multi_get(keys) == scratch.multi_get(keys)
            assert view.get((MAX_TERM + 99,), default=-1) == -1
            prefix = union[0][0][:1]
            assert list(view.prefix(prefix)) == list(scratch.prefix(prefix))
            assert list(view.prefix(prefix, limit=2)) == list(
                scratch.prefix(prefix, limit=2)
            )

    def test_view_stats_shape(self, tmp_path):
        store = LSMStore.init(str(tmp_path / "lsm"), min_frequency=2)
        store.ingest_records(make_batch(60, seed=20), vocabulary=make_vocabulary())
        with store.view() as view:
            stats = view.stats()
            assert stats["num_records"] == view.num_records
            assert stats["has_vocabulary"] is True
            assert stats["metadata"]["min_frequency"] == 2
            assert stats["metadata"]["lsm"]["num_generations"] == 1
            io = view.io_stats()
            assert io["blocks_checksum_failed"] == 0

    def test_single_generation_top_k_uses_block_skipping(self, tmp_path):
        store = LSMStore.init(str(tmp_path / "lsm"))
        batch = make_batch(300, seed=21)
        store.ingest_records(batch)
        with store.view() as view:
            expected = sorted(batch, key=lambda record: (-record[1], record[0]))[:5]
            assert [tuple(record) for record in view.top_k(5)] == expected

    def test_closed_view_refuses_queries(self, tmp_path):
        store = LSMStore.init(str(tmp_path / "lsm"))
        store.ingest_records(make_batch(20, seed=22))
        view = store.view()
        view.close()
        with pytest.raises(StoreError, match="closed"):
            view.get((1,))


class TestCompaction:
    def test_compact_all_equals_thresholded_union(self, tmp_path):
        batches = [make_batch(120, seed=30 + index) for index in range(4)]
        store = LSMStore.init(
            str(tmp_path / "lsm"),
            min_frequency=3,
            store=StoreConfig(num_partitions=2, records_per_block=32),
        )
        for batch in batches:
            store.ingest_records(batch)
        stats = store.compact(all_generations=True)
        assert stats["generations_after"] == 1
        assert stats["records_in"] == sum(len(batch) for batch in batches)

        union = summed(*batches)
        with store.view() as view:
            # Served counts: exactly the τ-thresholded union.
            assert list(view.scan()) == [
                (key, value) for key, value in union if value >= 3
            ]
        # The compacted generation keeps the sub-τ counts in its residual,
        # so the *full* union survives for every later merge.
        (generation,) = store.generations
        with NGramStore.open(store.generation_dir(generation["name"])) as merged:
            assert merged.has_residual
            assert list(merged.exact_items()) == union
        # Victim directories are gone.
        assert sorted(
            name for name in os.listdir(store.root) if name.startswith("gen-")
        ) == [generation["name"]]

    def test_compact_chain_stays_exact(self, tmp_path):
        """Compacting compacted generations re-promotes across the residuals."""
        batches = [make_batch(80, seed=40 + index) for index in range(4)]
        store = LSMStore.init(str(tmp_path / "lsm"), min_frequency=4)
        store.ingest_records(batches[0])
        store.ingest_records(batches[1])
        store.compact(all_generations=True)
        store.ingest_records(batches[2])
        store.ingest_records(batches[3])
        store.compact(all_generations=True)
        union = summed(*batches)
        with store.view() as view:
            assert list(view.scan()) == [
                (key, value) for key, value in union if value >= 4
            ]

    def test_size_tiered_plan_targets_similar_sizes(self, tmp_path):
        store = LSMStore.init(str(tmp_path / "lsm"), min_frequency=2)
        for index, count in enumerate((50, 60, 55)):
            store.ingest_records(make_batch(count, seed=50 + index))
        big = store.ingest_records(make_batch(2000, seed=59))
        victims = store.plan_compaction()
        # The three similar-sized deltas tier together; the big run is left out.
        assert len(victims) == 3
        assert big["name"] not in victims
        stats = store.compact()
        assert sorted(stats["merged"]) == sorted(victims)
        assert len(store.generations) == 2

    def test_plan_validation(self, tmp_path):
        store = LSMStore.init(str(tmp_path / "lsm"))
        with pytest.raises(StoreError, match="tier_ratio"):
            store.plan_compaction(tier_ratio=0)
        with pytest.raises(StoreError, match="min_tier"):
            store.plan_compaction(min_tier=1)

    def test_nothing_to_compact(self, tmp_path):
        store = LSMStore.init(str(tmp_path / "lsm"), min_frequency=2)
        assert store.compact() is None
        assert store.compact(all_generations=True) is None
        store.ingest_records(make_batch(40, seed=60))
        assert store.compact() is None  # single generation, below min_tier
        # --all on one un-thresholded generation still applies τ ...
        assert store.compact(all_generations=True) is not None
        # ... after which there is truly nothing left to do.
        assert store.compact(all_generations=True) is None


class TestOpenStoreAuto:
    def test_dispatch(self, tmp_path):
        plain_dir = str(tmp_path / "plain")
        build_store([((1,), 2)], plain_dir)
        lsm = LSMStore.init(str(tmp_path / "lsm"))
        lsm.ingest_records([((1,), 2)])
        with open_store_auto(plain_dir) as plain:
            assert isinstance(plain, NGramStore)
            assert plain.get((1,)) == 2
        with open_store_auto(lsm.root) as view:
            assert isinstance(view, GenerationView)
            assert view.get((1,)) == 2

    def test_shared_cache_passes_through(self, tmp_path):
        lsm = LSMStore.init(str(tmp_path / "lsm"))
        lsm.ingest_records(make_batch(30, seed=70))
        cache = BlockCache(8)
        with open_store_auto(lsm.root, cache=cache) as view:
            assert view.cache is cache
            view.get(make_batch(30, seed=70)[0][0])
            assert cache.stats_snapshot().misses > 0


# --------------------------------------------------- serve-tier conformance
@pytest.fixture(scope="module")
def lsm_pipeline(tmp_path_factory):
    """Ingest three batches, compact everything, keep the union reference."""
    root_dir = tmp_path_factory.mktemp("lsm-serve")
    batches = [make_batch(200, seed=80 + index) for index in range(3)]
    vocabulary = make_vocabulary()
    store = LSMStore.init(
        str(root_dir / "lsm"),
        min_frequency=2,
        store=StoreConfig(num_partitions=3, records_per_block=32),
    )
    for index, batch in enumerate(batches):
        store.ingest_records(batch, vocabulary=vocabulary, source=f"batch-{index}")
    store.compact(all_generations=True)

    union_dir = str(root_dir / "union")
    build_store(
        summed(*batches),
        union_dir,
        store=StoreConfig(
            num_partitions=3, records_per_block=32, min_frequency=2
        ),
        vocabulary=vocabulary,
    )
    return {"store": store, "union_dir": union_dir}


@pytest.fixture(scope="module")
def reference(lsm_pipeline):
    """Ground truth from the from-scratch union store."""
    with NGramStore.open(lsm_pipeline["union_dir"]) as scratch:
        expected = dict(scratch.items())
        first_terms = sorted({key[0] for key in expected})[:3]
        return {
            "expected": expected,
            "top_frequency": scratch.top_k(10),
            "top_key": scratch.top_k(10, order="key"),
            "prefixes": {term: list(scratch.prefix((term,))) for term in first_terms},
            "top_terms": scratch.top_k_terms(6),
        }


@pytest.fixture(scope="module")
def topology(lsm_pipeline):
    """Servers over the ingested-and-compacted LSM directory."""
    store = lsm_pipeline["store"]
    servers = []

    def start(server):
        server.start()
        servers.append(server)
        return server

    socket_a = start(NGramStoreServer(store.root, config=ServerConfig(port=0)))
    socket_b = start(NGramStoreServer(store.root, config=ServerConfig(port=0)))
    # Range sharding needs a single partition list: after compact --all the
    # surviving generation is a plain store, so shard that directory.
    (generation,) = store.generations
    generation_dir = store.generation_dir(generation["name"])
    shards = [
        start(
            NGramStoreServer(
                ShardView(
                    NGramStore.open(generation_dir, cache=BlockCache(16)), index, 3
                ),
                config=ServerConfig(port=0),
            )
        )
        for index in range(3)
    ]
    http = start(
        NGramStoreHTTPServer(store.root, config=ServerConfig(port=0, protocol="http"))
    )
    yield {
        "socket": (socket_a.host, socket_a.port),
        "replica": (socket_b.host, socket_b.port),
        "shards": [(server.host, server.port) for server in shards],
        "http_url": f"http://{http.host}:{http.port}",
    }
    for server in servers:
        server.close()


@pytest.fixture(params=IMPLEMENTATIONS)
def api(request, lsm_pipeline, topology):
    name = request.param
    if name == "local":
        instance = open_store_auto(lsm_pipeline["store"].root)
    elif name == "socket":
        instance = StoreClient(*topology["socket"])
    elif name == "replicas":
        instance = ReplicaPool(
            [StoreClient(*topology["socket"]), StoreClient(*topology["replica"])]
        )
    elif name == "sharded":
        instance = ShardRouter(
            [StoreClient(host, port) for host, port in topology["shards"]]
        )
    else:
        instance = HttpStoreClient(topology["http_url"])
    with instance:
        yield instance


class TestServeConformance:
    """Every transport serves the ingested store with union-store answers."""

    def test_get(self, api, reference):
        expected = reference["expected"]
        for key in sorted(expected)[::29]:
            assert api.get(key) == expected[key]
        assert api.get((MAX_TERM + 1000,)) is None

    def test_multi_get(self, api, reference):
        expected = reference["expected"]
        keys = sorted(expected)[::37] + [(MAX_TERM + 1000,)]
        assert api.multi_get(keys) == [expected.get(key) for key in keys]

    def test_prefix(self, api, reference):
        for term, records in reference["prefixes"].items():
            assert [tuple(record) for record in api.prefix((term,))] == [
                tuple(record) for record in records
            ]

    def test_top_k(self, api, reference):
        assert [tuple(record) for record in api.top_k(10)] == [
            tuple(record) for record in reference["top_frequency"]
        ]
        assert [tuple(record) for record in api.top_k(10, order="key")] == [
            tuple(record) for record in reference["top_key"]
        ]

    def test_term_operations(self, api, reference):
        assert api.top_k_terms(6) == reference["top_terms"]

    def test_stats_num_records(self, api, reference):
        assert api.stats()["num_records"] == len(reference["expected"])


# ----------------------------------------------------------------- CLI layer
class TestLSMCLI:
    def corpus(self, tmp_path, name, documents, seed):
        corpus_dir = str(tmp_path / name)
        assert (
            main(
                [
                    "generate",
                    "--documents",
                    str(documents),
                    "--seed",
                    str(seed),
                    "--output",
                    corpus_dir,
                    "--shards",
                    "2",
                ]
            )
            == 0
        )
        return corpus_dir

    def test_ingest_compact_query_roundtrip(self, tmp_path, capsys):
        corpus_dir = self.corpus(tmp_path, "corpus", documents=30, seed=9)
        root = str(tmp_path / "lsm")
        assert (
            main(
                [
                    "ingest",
                    root,
                    "--input",
                    corpus_dir,
                    "--init",
                    "--tau",
                    "2",
                    "--sigma",
                    "3",
                ]
            )
            == 0
        )
        assert main(["ingest", root, "--input", corpus_dir]) == 0
        assert "2 live generations" in capsys.readouterr().out
        stats_path = str(tmp_path / "compaction.json")
        assert main(["compact", root, "--all", "--stats-json", stats_path]) == 0
        capsys.readouterr()
        with open(stats_path, "r", encoding="utf-8") as handle:
            stats = json.load(handle)
        assert stats["generations_after"] == 1
        assert stats["min_frequency"] == 2
        assert main(["query", root, "--stats"]) == 0
        assert main(["query", root, "--top-k", "3"]) == 0
        # Double ingest of the same corpus doubles every count.
        top = capsys.readouterr().out.splitlines()[-1]
        assert int(top.split()[0]) % 2 == 0

    def test_ingest_without_init_needs_manifest(self, tmp_path, capsys):
        corpus_dir = self.corpus(tmp_path, "corpus", documents=6, seed=10)
        assert main(["ingest", str(tmp_path / "missing"), "--input", corpus_dir]) == 2
        assert "no LSM manifest" in capsys.readouterr().err

    def test_compact_nothing_to_do(self, tmp_path, capsys):
        root = str(tmp_path / "lsm")
        LSMStore.init(root)
        assert main(["compact", root]) == 0
        assert "nothing to compact" in capsys.readouterr().out

    def test_sharded_serve_refuses_lsm_dir(self, tmp_path, capsys):
        root = str(tmp_path / "lsm")
        LSMStore.init(root)
        assert (
            main(
                ["serve", root, "--num-shards", "2", "--shard-index", "0", "--port", "0"]
            )
            == 2
        )
        assert "LSM store directory" in capsys.readouterr().err

    def test_count_store_tau_requires_raw_counts(self, tmp_path, capsys):
        corpus_dir = self.corpus(tmp_path, "corpus", documents=6, seed=11)
        assert (
            main(
                [
                    "count",
                    "--input",
                    corpus_dir,
                    "--tau",
                    "2",
                    "--store-dir",
                    str(tmp_path / "store"),
                    "--store-tau",
                    "2",
                ]
            )
            == 2
        )
        assert "--store-tau > 1 requires --tau 1" in capsys.readouterr().err
