"""Crash cleanup: failures mid-spill leave no orphan files behind.

The out-of-core paths put transient state on disk — shuffle spill runs in
the parent, worker-local partial shuffles in map workers.  A task or
shuffle failure must (a) surface as a :class:`MapReduceError` carrying the
job, phase and task identity, and (b) leave the configured ``spill_dir``
empty: no orphan run directories, no partial run files.
"""

import os
from typing import Any, Iterable

import pytest

from repro.exceptions import MapReduceError
from repro.mapreduce.parallel import ThreadPoolJobRunner
from repro.mapreduce.process import ProcessPoolJobRunner
from repro.mapreduce.job import JobSpec, Mapper, TaskContext

from tests.test_runner import SumCombiner, SumReducer

#: Sentinel document identifier whose record makes the mapper explode
#: after it has already emitted (so spills precede the failure).
POISON_KEY = 666


class PoisonedFanoutMapper(Mapper):
    """Emits many records per input, then fails on the poisoned record."""

    def map(self, key: Any, value: Iterable[str], context: TaskContext) -> None:
        for token in value:
            for repeat in range(20):
                context.emit(f"{token}-{repeat}", 1)
        if key == POISON_KEY:
            raise RuntimeError("injected mid-spill failure")


class UnspillableValue:
    """Sizes fine (``serialized_size``) but refuses to pickle, so the
    failure happens inside the spill write, not in the byte accounting."""

    def __init__(self) -> None:
        self._unpicklable = lambda: None

    def serialized_size(self) -> int:
        return 1


class UnspillableValueMapper(Mapper):
    def map(self, key: Any, value: Iterable[str], context: TaskContext) -> None:
        for token in value:
            context.emit(token, UnspillableValue())


def _job(**overrides) -> JobSpec:
    spec = dict(
        name="crash-cleanup",
        mapper_factory=PoisonedFanoutMapper,
        reducer_factory=SumReducer,
        num_reducers=3,
        num_map_tasks=3,
    )
    spec.update(overrides)
    return JobSpec(**spec)


def _poisoned_input():
    """Three map tasks; the poison sits in the last task, so the earlier
    tasks' output has already spilled when the failure hits."""
    healthy = [(index, ("alpha", "beta", "gamma")) for index in range(5)]
    return healthy + [(POISON_KEY, ("delta", "omega"))]


class TestMidMapSpillCleanup:
    def test_threads_failure_mid_map_spill(self, tmp_path):
        """Parent-side spills exist when a later map task fails."""
        spill_dir = str(tmp_path / "spills")
        runner = ThreadPoolJobRunner(
            max_workers=1, spill_threshold_records=8, spill_dir=spill_dir
        )
        with pytest.raises(MapReduceError) as excinfo:
            runner.run(_job(), _poisoned_input())
        message = str(excinfo.value)
        assert "crash-cleanup" in message
        assert "map task 2" in message
        assert "injected mid-spill failure" in message
        assert os.listdir(spill_dir) == []

    def test_unspillable_record_fails_spill_write_and_cleans_up(self, tmp_path):
        """A failure *inside* the spill write (unpicklable record) removes
        the partially written run file along with the run directory."""
        spill_dir = str(tmp_path / "spills")
        runner = ThreadPoolJobRunner(
            max_workers=1, spill_threshold_records=2, spill_dir=spill_dir
        )
        job = _job(mapper_factory=UnspillableValueMapper)
        with pytest.raises(MapReduceError) as excinfo:
            runner.run(job, _poisoned_input())
        message = str(excinfo.value)
        assert "crash-cleanup" in message
        assert "map phase" in message
        assert os.listdir(spill_dir) == []


class TestMidWorkerShuffleCleanup:
    def test_processes_failure_mid_worker_shuffle(self, tmp_path):
        """Worker-local partial shuffles are removed when their task dies."""
        spill_dir = str(tmp_path / "worker-spills")
        runner = ProcessPoolJobRunner(
            max_workers=2, spill_threshold_records=8, spill_dir=spill_dir
        )
        with pytest.raises(MapReduceError) as excinfo:
            runner.run(_job(), _poisoned_input())
        message = str(excinfo.value)
        assert "crash-cleanup" in message
        assert "map task 2" in message
        assert "injected mid-spill failure" in message
        assert os.listdir(spill_dir) == []

    def test_processes_combiner_task_failure_cleans_worker_runs(self, tmp_path):
        """Same contract with the combine buffer in front of the shuffle."""
        spill_dir = str(tmp_path / "worker-spills")
        runner = ProcessPoolJobRunner(
            max_workers=2, spill_threshold_records=8, spill_dir=spill_dir
        )
        job = _job(combiner_factory=SumCombiner)
        with pytest.raises(MapReduceError) as excinfo:
            runner.run(job, _poisoned_input())
        message = str(excinfo.value)
        assert "crash-cleanup" in message
        assert "map task" in message
        assert os.listdir(spill_dir) == []

    def test_successful_run_also_leaves_spill_dir_empty(self, tmp_path):
        """Worker runs are transient: consumed by reduce, then removed."""
        spill_dir = str(tmp_path / "worker-spills")
        runner = ProcessPoolJobRunner(
            max_workers=2, spill_threshold_records=8, spill_dir=spill_dir
        )
        healthy = [(index, ("alpha", "beta", "gamma")) for index in range(6)]
        result = runner.run(_job(), healthy)
        assert result.num_output_records > 0
        assert os.listdir(spill_dir) == []
