"""Tests for the document-splitting optimisation (Section V)."""

from collections import Counter

from hypothesis import given, strategies as st

from repro.algorithms.doc_split import (
    split_records,
    split_sequence_at_infrequent_terms,
    unigram_frequencies,
)
from repro.ngrams.reference import reference_ngram_statistics


class TestSplitSequence:
    def test_split_at_barrier(self):
        fragments = split_sequence_at_infrequent_terms(
            ("c", "b", "a", "z", "b", "a", "c"), {"a", "b", "c"}
        )
        assert fragments == [("c", "b", "a"), ("b", "a", "c")]

    def test_no_barriers(self):
        assert split_sequence_at_infrequent_terms(("a", "b"), {"a", "b"}) == [("a", "b")]

    def test_all_barriers(self):
        assert split_sequence_at_infrequent_terms(("z", "z"), {"a"}) == []

    def test_leading_and_trailing_barriers(self):
        assert split_sequence_at_infrequent_terms(("z", "a", "z"), {"a"}) == [("a",)]

    def test_empty_sequence(self):
        assert split_sequence_at_infrequent_terms((), {"a"}) == []


class TestUnigramFrequencies:
    def test_counts(self, running_example):
        counts = unigram_frequencies(running_example.records())
        assert counts == Counter({"x": 7, "b": 5, "a": 3})


class TestSplitRecords:
    def test_preserves_doc_ids(self):
        # a and z occur twice (frequent at tau=2); b occurs once and is the barrier.
        records = [(7, ("a", "z", "b", "z", "a"))]
        result = split_records(records, min_frequency=2)
        assert [doc_id for doc_id, _ in result] == [7, 7]
        assert [fragment for _, fragment in result] == [("a", "z"), ("z", "a")]

    def test_frequent_ngram_statistics_unchanged(self, running_example):
        """Splitting is safe: frequent n-grams and their frequencies survive."""
        tau = 3
        original = reference_ngram_statistics(
            running_example.records(), min_frequency=tau, max_length=3
        )
        split = reference_ngram_statistics(
            split_records(list(running_example.records()), tau), min_frequency=tau, max_length=3
        )
        assert split == original

    @given(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=12),
            min_size=1,
            max_size=8,
        ),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
    )
    def test_splitting_never_changes_frequent_ngrams(self, documents, tau, sigma):
        """Property: for any collection and any τ/σ, document splitting at
        infrequent unigrams preserves the frequent n-grams exactly."""
        records = [(index, tuple(tokens)) for index, tokens in enumerate(documents)]
        original = reference_ngram_statistics(records, min_frequency=tau, max_length=sigma)
        split = reference_ngram_statistics(
            split_records(records, tau), min_frequency=tau, max_length=sigma
        )
        assert split == original

    def test_explicit_term_frequencies(self):
        records = [(0, ("a", "b", "a"))]
        result = split_records(records, min_frequency=2, term_frequencies=Counter({"a": 2, "b": 1}))
        assert result == [(0, ("a",)), (0, ("a",))]
