"""Tests for the n-gram language model application."""

import math

import pytest

from repro.applications.language_model import (
    NGramLanguageModel,
    ScoredSentence,
    build_language_model,
)
from repro.corpus.collection import DocumentCollection
from repro.exceptions import ConfigurationError
from repro.ngrams.statistics import NGramStatistics


@pytest.fixture()
def tiny_statistics():
    # Corpus intuition: "the cat sat", "the cat ran", "the dog sat".
    return NGramStatistics(
        {
            ("the",): 3,
            ("cat",): 2,
            ("dog",): 1,
            ("sat",): 2,
            ("ran",): 1,
            ("the", "cat"): 2,
            ("the", "dog"): 1,
            ("cat", "sat"): 1,
            ("cat", "ran"): 1,
            ("dog", "sat"): 1,
            ("the", "cat", "sat"): 1,
            ("the", "cat", "ran"): 1,
            ("the", "dog", "sat"): 1,
        }
    )


class TestValidation:
    def test_invalid_order(self, tiny_statistics):
        with pytest.raises(ConfigurationError):
            NGramLanguageModel(tiny_statistics, order=0)

    def test_invalid_backoff(self, tiny_statistics):
        with pytest.raises(ConfigurationError):
            NGramLanguageModel(tiny_statistics, backoff=0.0)
        with pytest.raises(ConfigurationError):
            NGramLanguageModel(tiny_statistics, backoff=1.5)

    def test_invalid_smoothing(self, tiny_statistics):
        with pytest.raises(ConfigurationError):
            NGramLanguageModel(tiny_statistics, smoothing=-1)


class TestProbabilities:
    def test_unigram_probability(self, tiny_statistics):
        model = NGramLanguageModel(tiny_statistics, order=3)
        # total tokens = 3+2+1+2+1 = 9.
        assert model.unigram_probability("the") == pytest.approx(3 / 9)
        assert model.unigram_probability("dog") == pytest.approx(1 / 9)

    def test_unknown_term_has_small_nonzero_probability(self, tiny_statistics):
        model = NGramLanguageModel(tiny_statistics, order=2)
        probability = model.unigram_probability("unknown")
        assert 0 < probability < model.unigram_probability("dog")

    def test_conditional_probability_observed_context(self, tiny_statistics):
        model = NGramLanguageModel(tiny_statistics, order=2)
        assert model.conditional_probability(("the",), "cat") == pytest.approx(2 / 3)
        assert model.conditional_probability(("the",), "dog") == pytest.approx(1 / 3)

    def test_conditional_probability_unobserved_context(self, tiny_statistics):
        model = NGramLanguageModel(tiny_statistics, order=2)
        assert model.conditional_probability(("sat",), "the") == 0.0

    def test_additive_smoothing(self, tiny_statistics):
        model = NGramLanguageModel(tiny_statistics, order=2, smoothing=1.0)
        smoothed = model.conditional_probability(("the",), "sat")
        assert smoothed > 0.0
        assert smoothed < model.conditional_probability(("the",), "cat")


class TestStupidBackoff:
    def test_observed_ngram_uses_full_context(self, tiny_statistics):
        model = NGramLanguageModel(tiny_statistics, order=3)
        assert model.score(("the",), "cat") == pytest.approx(2 / 3)

    def test_backoff_applies_penalty(self, tiny_statistics):
        model = NGramLanguageModel(tiny_statistics, order=3, backoff=0.4)
        # ("sat", "the") never occurs, so we back off to the unigram with one
        # penalty factor.
        expected = 0.4 * model.unigram_probability("the")
        assert model.score(("sat",), "the") == pytest.approx(expected)

    def test_score_in_unit_interval(self, tiny_statistics):
        model = NGramLanguageModel(tiny_statistics, order=3)
        for context in ((), ("the",), ("the", "cat"), ("unseen", "context")):
            for term in ("the", "cat", "sat", "unknown"):
                assert 0 < model.score(context, term) <= 1

    def test_sentence_scoring_prefers_fluent_order(self, tiny_statistics):
        model = NGramLanguageModel(tiny_statistics, order=3)
        fluent = model.score_sentence(("the", "cat", "sat"))
        shuffled = model.score_sentence(("sat", "the", "cat"))
        assert isinstance(fluent, ScoredSentence)
        assert fluent.log10_score > shuffled.log10_score

    def test_compare_orders_best_first(self, tiny_statistics):
        model = NGramLanguageModel(tiny_statistics, order=3)
        ranked = model.compare([("sat", "the", "cat"), ("the", "cat", "sat")])
        assert ranked[0].tokens == ("the", "cat", "sat")

    def test_perplexity_proxy_lower_for_fluent_sentence(self, tiny_statistics):
        model = NGramLanguageModel(tiny_statistics, order=3)
        fluent = model.score_sentence(("the", "cat", "sat"))
        shuffled = model.score_sentence(("cat", "sat", "the"))
        assert fluent.perplexity_proxy < shuffled.perplexity_proxy


class TestContinuations:
    def test_continuations_from_longest_context(self, tiny_statistics):
        model = NGramLanguageModel(tiny_statistics, order=3)
        assert model.continuations(("the",), top_k=2) == ["cat", "dog"]

    def test_continuations_back_off_to_unigrams(self, tiny_statistics):
        model = NGramLanguageModel(tiny_statistics, order=3)
        assert model.continuations(("never", "seen"), top_k=1) == ["the"]


class TestEndToEnd:
    def test_build_language_model(self, small_newswire):
        model = build_language_model(small_newswire, order=3, min_frequency=2)
        assert model.order == 3
        assert model.total_tokens == small_newswire.num_token_occurrences
        score = model.score_sentence(("t0", "t1", "t2"))
        assert math.isfinite(score.log10_score)

    def test_quotation_scores_higher_than_shuffle(self):
        quotation = "the only thing we have to fear is fear itself".split()
        collection = DocumentCollection.from_token_lists([quotation] * 5 + [["filler", "words"]])
        model = build_language_model(collection, order=4, min_frequency=2)
        fluent = model.score_sentence(tuple(quotation))
        shuffled = model.score_sentence(tuple(reversed(quotation)))
        assert fluent.log10_score > shuffled.log10_score
