"""Tests for the thread-pool job runner (equivalence with the sequential runner)."""

import pytest

from repro.algorithms.suffix_sigma import SuffixSigmaCounter
from repro.config import NGramJobConfig
from repro.exceptions import MapReduceError
from repro.mapreduce.counters import MAP_OUTPUT_BYTES, MAP_OUTPUT_RECORDS
from repro.mapreduce.parallel import ThreadPoolJobRunner
from repro.mapreduce.pipeline import JobPipeline
from repro.mapreduce.runner import LocalJobRunner

from tests.test_runner import EXPECTED_COUNTS, WORDS_INPUT, SumCombiner, word_count_job


class TestThreadPoolJobRunner:
    def test_invalid_worker_count(self):
        with pytest.raises(MapReduceError):
            ThreadPoolJobRunner(max_workers=0)

    def test_word_count_matches_sequential(self):
        sequential = LocalJobRunner().run(word_count_job(), WORDS_INPUT)
        parallel = ThreadPoolJobRunner(max_workers=3).run(word_count_job(), WORDS_INPUT)
        assert parallel.output_as_dict() == sequential.output_as_dict() == EXPECTED_COUNTS

    def test_counters_match_sequential(self):
        job = word_count_job(combiner_factory=SumCombiner, num_map_tasks=3)
        sequential = LocalJobRunner().run(job, WORDS_INPUT)
        parallel = ThreadPoolJobRunner(max_workers=4).run(job, WORDS_INPUT)
        assert parallel.counters.as_dict() == sequential.counters.as_dict()

    def test_partition_outputs_match_sequential(self):
        job = word_count_job(num_reducers=4)
        sequential = LocalJobRunner().run(job, WORDS_INPUT)
        parallel = ThreadPoolJobRunner(max_workers=2).run(job, WORDS_INPUT)
        assert [dict(p) for p in parallel.partition_output] == [
            dict(p) for p in sequential.partition_output
        ]

    def test_metrics_cover_all_tasks(self):
        job = word_count_job(num_map_tasks=3, num_reducers=2)
        result = ThreadPoolJobRunner(max_workers=2).run(job, WORDS_INPUT)
        assert result.metrics.num_map_tasks == 3
        assert result.metrics.num_reduce_tasks == 2
        assert result.counters.get(MAP_OUTPUT_RECORDS) == 13
        assert result.counters.get(MAP_OUTPUT_BYTES) > 0

    def test_empty_input(self):
        result = ThreadPoolJobRunner().run(word_count_job(), [])
        assert result.is_empty()

    def test_single_worker_equivalent(self):
        sequential = LocalJobRunner().run(word_count_job(), WORDS_INPUT)
        parallel = ThreadPoolJobRunner(max_workers=1).run(word_count_job(), WORDS_INPUT)
        assert parallel.output_as_dict() == sequential.output_as_dict()


class TestSuffixSigmaOnParallelRunner:
    def test_suffix_sigma_pipeline_with_parallel_runner(
        self, running_example, running_example_expected
    ):
        """The full SUFFIX-σ job produces identical statistics on the
        concurrent runner (order-insensitive reducer state is per partition)."""
        config = NGramJobConfig(min_frequency=3, max_length=3)
        counter = SuffixSigmaCounter(config)
        records = counter.prepare_records(running_example)
        runner = ThreadPoolJobRunner(max_workers=4)
        pipeline = JobPipeline(runner=runner, cache=runner.cache)
        statistics = counter._execute(records, pipeline, running_example)
        assert statistics.as_dict() == running_example_expected
