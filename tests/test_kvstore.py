"""Tests for the key-value store layer (Berkeley DB substitute)."""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import KVStoreError
from repro.kvstore import (
    CachedKVStore,
    DiskKVStore,
    InMemoryKVStore,
    SpillingKVStore,
)


class TestInMemoryKVStore:
    def test_put_get(self):
        store = InMemoryKVStore()
        store.put(("a", "b"), 3)
        assert store.get(("a", "b")) == 3
        assert store.get("missing") is None
        assert store.get("missing", 42) == 42

    def test_contains_delete_len(self):
        store = InMemoryKVStore({"x": 1})
        assert "x" in store
        assert len(store) == 1
        store.delete("x")
        assert "x" not in store
        store.delete("x")  # idempotent

    def test_mapping_protocol(self):
        store = InMemoryKVStore()
        store["k"] = "v"
        assert store["k"] == "v"
        with pytest.raises(KeyError):
            _ = store["absent"]

    def test_items(self):
        store = InMemoryKVStore({"a": 1, "b": 2})
        assert dict(store.items()) == {"a": 1, "b": 2}

    def test_closed_store_rejects_operations(self):
        store = InMemoryKVStore()
        store.close()
        with pytest.raises(KVStoreError):
            store.put("a", 1)

    def test_context_manager(self):
        with InMemoryKVStore() as store:
            store.put("a", 1)
        with pytest.raises(KVStoreError):
            store.get("a")

    def test_clear(self):
        store = InMemoryKVStore({"a": 1})
        store.clear()
        assert len(store) == 0


class TestDiskKVStore:
    def test_put_get_roundtrip(self, tmp_path):
        path = str(tmp_path / "store.log")
        with DiskKVStore(path) as store:
            store.put(("n", "gram"), [1, 2, 3])
            store.put("other", {"a": 1})
            assert store.get(("n", "gram")) == [1, 2, 3]
            assert store.get("other") == {"a": 1}
            assert len(store) == 2

    def test_overwrite_and_compact(self, tmp_path):
        path = str(tmp_path / "store.log")
        with DiskKVStore(path) as store:
            for value in range(10):
                store.put("key", value)
            assert store.get("key") == 9
            size_before = os.path.getsize(path)
            store.compact()
            assert store.get("key") == 9
            assert os.path.getsize(path) < size_before

    def test_reopen_recovers_index(self, tmp_path):
        path = str(tmp_path / "store.log")
        store = DiskKVStore(path)
        store.put("a", 1)
        store.put("b", 2)
        store._file.close()
        store._closed = True

        reopened = DiskKVStore(path)
        try:
            assert reopened.get("a") == 1
            assert reopened.get("b") == 2
        finally:
            reopened.close()

    def test_temporary_file_cleaned_up(self):
        store = DiskKVStore()
        path = store.path
        store.put("a", 1)
        assert os.path.exists(path)
        store.close()
        assert not os.path.exists(path)

    def test_delete(self, tmp_path):
        with DiskKVStore(str(tmp_path / "s.log")) as store:
            store.put("a", 1)
            store.delete("a")
            assert store.get("a") is None

    @settings(max_examples=25, deadline=None)
    @given(
        st.dictionaries(
            st.tuples(st.integers(min_value=0, max_value=100)),
            st.integers(),
            max_size=30,
        )
    )
    def test_roundtrip_property(self, mapping):
        store = DiskKVStore()
        try:
            for key, value in mapping.items():
                store.put(key, value)
            assert dict(store.items()) == mapping
        finally:
            store.close()


class TestCachedKVStore:
    def test_hit_miss_accounting(self):
        backing = InMemoryKVStore({"a": 1})
        store = CachedKVStore(backing, capacity=2)
        assert store.get("a") == 1  # miss (first access goes to backing)
        assert store.get("a") == 1  # hit
        assert store.stats.misses == 1
        assert store.stats.hits == 1
        assert store.stats.hit_rate == pytest.approx(0.5)

    def test_eviction(self):
        backing = InMemoryKVStore()
        store = CachedKVStore(backing, capacity=2)
        for index in range(5):
            store.put(index, index)
        assert store.stats.evictions == 3
        assert len(store) == 5  # backing store keeps everything

    def test_write_through(self):
        backing = InMemoryKVStore()
        store = CachedKVStore(backing, capacity=4)
        store.put("a", 1)
        assert backing.get("a") == 1

    def test_delete_invalidates_cache(self):
        backing = InMemoryKVStore({"a": 1})
        store = CachedKVStore(backing, capacity=4)
        store.get("a")
        store.delete("a")
        assert store.get("a") is None

    def test_invalid_capacity(self):
        with pytest.raises(KVStoreError):
            CachedKVStore(InMemoryKVStore(), capacity=0)

    def test_contains_counts_stats(self):
        store = CachedKVStore(InMemoryKVStore({"a": 1}), capacity=4)
        assert store.contains("a")
        assert store.contains("a")
        assert store.stats.hits >= 1

    def test_hit_rate_zero_when_unused(self):
        store = CachedKVStore(InMemoryKVStore(), capacity=4)
        assert store.stats.hit_rate == 0.0


class TestSpillingKVStore:
    def test_stays_in_memory_below_budget(self):
        store = SpillingKVStore(memory_budget=10)
        for index in range(5):
            store.put(index, index)
        assert not store.spilled
        assert len(store) == 5
        store.close()

    def test_spills_above_budget(self):
        store = SpillingKVStore(memory_budget=5)
        for index in range(20):
            store.put(index, str(index))
        assert store.spilled
        assert len(store) == 20
        assert store.get(13) == "13"
        assert store.get(3) == "3"
        store.close()

    def test_contains_after_spill(self):
        store = SpillingKVStore(memory_budget=2)
        for index in range(10):
            store.put(("gram", index), True)
        assert ("gram", 7) in store
        assert ("gram", 99) not in store
        store.close()

    def test_invalid_budget(self):
        with pytest.raises(KVStoreError):
            SpillingKVStore(memory_budget=0)

    def test_items_after_spill(self):
        store = SpillingKVStore(memory_budget=3)
        expected = {}
        for index in range(8):
            store.put(index, index * 2)
            expected[index] = index * 2
        assert dict(store.items()) == expected
        store.close()
