"""Property-based agreement tests for the maximality/closedness extension.

The two-phase construction of Section VI.A (prefix filtering inside the
SUFFIX-σ reducer followed by a reversed post-filtering job) must produce
exactly the maximal / closed subsets as defined declaratively.  Random
collections with a tiny vocabulary exercise deep prefix/suffix overlaps.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algorithms.extensions import ClosedNGramCounter, MaximalNGramCounter
from repro.config import NGramJobConfig
from repro.corpus.collection import DocumentCollection
from repro.ngrams.reference import (
    reference_closed,
    reference_maximal,
    reference_ngram_statistics,
)

documents_strategy = st.lists(
    st.lists(st.sampled_from("abx"), min_size=1, max_size=9),
    min_size=1,
    max_size=6,
)

relaxed = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestMaximalClosedAgreement:
    @relaxed
    @given(documents_strategy, st.integers(min_value=1, max_value=4))
    def test_maximal_matches_reference(self, documents, tau):
        collection = DocumentCollection.from_token_lists(documents)
        frequent = reference_ngram_statistics(
            collection.records(), min_frequency=tau, max_length=4
        )
        config = NGramJobConfig(min_frequency=tau, max_length=4, num_reducers=2)
        result = MaximalNGramCounter(config).run(collection)
        assert result.statistics == reference_maximal(frequent)

    @relaxed
    @given(documents_strategy, st.integers(min_value=1, max_value=4))
    def test_closed_matches_reference(self, documents, tau):
        collection = DocumentCollection.from_token_lists(documents)
        frequent = reference_ngram_statistics(
            collection.records(), min_frequency=tau, max_length=4
        )
        config = NGramJobConfig(min_frequency=tau, max_length=4, num_reducers=2)
        result = ClosedNGramCounter(config).run(collection)
        assert result.statistics == reference_closed(frequent)

    @relaxed
    @given(documents_strategy, st.integers(min_value=1, max_value=3))
    def test_unbounded_sigma(self, documents, tau):
        collection = DocumentCollection.from_token_lists(documents)
        frequent = reference_ngram_statistics(collection.records(), min_frequency=tau)
        config = NGramJobConfig(min_frequency=tau, max_length=None, num_reducers=2)
        maximal = MaximalNGramCounter(config).run(collection)
        closed = ClosedNGramCounter(config).run(collection)
        assert maximal.statistics == reference_maximal(frequent)
        assert closed.statistics == reference_closed(frequent)
