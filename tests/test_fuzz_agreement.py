"""Randomized cross-backend fuzz/property harness for the execution layer.

Every execution-layer knob — backend, materialisation mode, shard/spill
codec, spill budget, combiner — is required to be *byte-transparent*: the
final statistics a counting run produces must be identical to the
sequential in-memory reference, whatever combination is configured.  This
harness pins that contract down on seeded random corpora and seeded random
configuration sweeps, so a future execution-layer change that breaks
byte-identity in some corner of the matrix fails here first.

What may legitimately vary and what may not:

* statistics, final job outputs, ``MAP_OUTPUT_*`` totals: never;
* ``COMBINE_*`` / ``SHUFFLE_RECORDS`` / ``SHUFFLE_BYTES``: fixed by the
  task boundaries and the spill budget, so identical across *backends*
  for one configuration (combine-per-spill changes them versus the
  no-budget run, which is the point of the combine buffer);
* spill counters (``SHUFFLE_SPILLS``, ``SPILLED_*``): backend-specific
  once a budget is set — the process backend spills per worker map task,
  the others spill one global shuffle.
"""

import random

import pytest

from repro.algorithms import make_counter
from repro.config import ExecutionConfig, NGramJobConfig
from repro.corpus.collection import DocumentCollection
from repro.mapreduce.counters import SHUFFLE_SPILLS, SPILLED_BYTES, SPILLED_RECORDS
from repro.util.codecs import available_codecs

SEEDS = (11, 23, 37, 41, 59)

ALGORITHMS = ("NAIVE", "APRIORI-SCAN", "SUFFIX-SIGMA")

#: Counters that legitimately differ between backends once a spill budget
#: is configured (worker-side spills vs one global shuffle).
SPILL_COUNTERS = (SHUFFLE_SPILLS, SPILLED_RECORDS, SPILLED_BYTES)

#: Runs sampled from the configuration matrix per seed (on top of the
#: reference runs).
RUNS_PER_SEED = 5


def _random_collection(rng):
    """A small synthetic corpus with enough repetition to exercise τ."""
    vocabulary = [f"t{index}" for index in range(rng.randint(4, 9))]
    vocabulary += ["α-token", "βeta"]  # non-ASCII flows through every codec
    token_lists = []
    timestamps = []
    for _ in range(rng.randint(6, 16)):
        length = rng.randint(1, 22)
        token_lists.append([rng.choice(vocabulary) for _ in range(length)])
        timestamps.append(rng.randint(1990, 2009) if rng.random() < 0.5 else None)
    return DocumentCollection.from_token_lists(token_lists, timestamps=timestamps)


def _random_job_config(rng, use_combiner):
    return NGramJobConfig(
        min_frequency=rng.randint(2, 4),
        max_length=rng.choice((2, 3, 4)),
        num_reducers=rng.randint(1, 4),
        use_combiner=use_combiner,
    )


def _sample_execution(rng):
    """One random cell of the backend × materialize × codec × budget matrix."""
    runner = rng.choice(("local", "threads", "processes"))
    kwargs = {
        "runner": runner,
        "materialize": rng.choice(("memory", "disk")),
        "shard_codec": rng.choice(available_codecs()),
        "retention": "all",
    }
    if runner != "local":
        kwargs["max_workers"] = 2
    budget = rng.choice((None, "bytes", "records"))
    if budget == "bytes":
        kwargs["spill_threshold_bytes"] = rng.choice((256, 2048))
    elif budget == "records":
        kwargs["spill_threshold_records"] = rng.choice((8, 64))
    return ExecutionConfig(**kwargs)


def _without_spill_counters(counters):
    as_dict = counters.as_dict()
    task_group = dict(as_dict.get("task", {}))
    for name in SPILL_COUNTERS:
        task_group.pop(name, None)
    as_dict["task"] = task_group
    return as_dict


def _job_outputs(result):
    return [job.output for job in result.pipeline.job_results]


@pytest.mark.parametrize("seed", SEEDS)
def test_fuzzed_configurations_match_in_memory_reference(seed):
    """Seeded sweep: every sampled configuration is byte-identical."""
    rng = random.Random(seed)
    collection = _random_collection(rng)
    algorithm = rng.choice(ALGORITHMS)

    references = {}

    def reference(use_combiner):
        if use_combiner not in references:
            config = _random_job_config(random.Random(seed), use_combiner)
            counter = make_counter(
                algorithm, config, execution=ExecutionConfig(retention="all")
            )
            references[use_combiner] = counter.run(collection)
        return references[use_combiner]

    for round_index in range(RUNS_PER_SEED):
        use_combiner = rng.random() < 0.5
        execution = _sample_execution(rng)
        config = _random_job_config(random.Random(seed), use_combiner)
        result = make_counter(algorithm, config, execution=execution).run(collection)
        expected = reference(use_combiner)
        label = f"seed={seed} round={round_index} {algorithm} {execution}"

        assert result.statistics.as_dict() == expected.statistics.as_dict(), label
        assert _job_outputs(result) == _job_outputs(expected), label
        assert result.map_output_records == expected.map_output_records, label
        assert result.map_output_bytes == expected.map_output_bytes, label
        budgeted = (
            execution.spill_threshold_bytes is not None
            or execution.spill_threshold_records is not None
        )
        if not budgeted:
            # Without a budget the combine buffer degenerates to
            # combine-per-task and nothing spills: the *complete* counter
            # set must match the reference.
            assert (
                result.pipeline.counters.as_dict()
                == expected.pipeline.counters.as_dict()
            ), label


@pytest.mark.parametrize("seed", SEEDS)
def test_backends_share_counter_semantics_under_one_budget(seed):
    """For one budgeted configuration, backends agree on everything but
    the spill counters — including the combine-per-spill counters."""
    rng = random.Random(seed * 7919)
    collection = _random_collection(rng)
    config = NGramJobConfig(min_frequency=2, max_length=3, use_combiner=True)

    results = {}
    for runner in ("local", "threads", "processes"):
        execution = ExecutionConfig(
            runner=runner,
            max_workers=None if runner == "local" else 2,
            spill_threshold_records=16,
            retention="all",
        )
        results[runner] = make_counter("NAIVE", config, execution=execution).run(
            collection
        )

    expected = results["local"]
    assert len(expected.statistics) > 0
    for runner, result in results.items():
        assert result.statistics.as_dict() == expected.statistics.as_dict(), runner
        assert _job_outputs(result) == _job_outputs(expected), runner
        assert _without_spill_counters(result.pipeline.counters) == (
            _without_spill_counters(expected.pipeline.counters)
        ), runner
        # The budget engaged on every backend.
        assert result.pipeline.counters.get(SHUFFLE_SPILLS) > 0, runner


def test_combine_budget_changes_counters_but_never_results():
    """Combine-per-spill may split aggregates; outputs must not move."""
    rng = random.Random(987)
    collection = _random_collection(rng)
    config = NGramJobConfig(min_frequency=2, max_length=3, use_combiner=True)
    unbudgeted = make_counter(
        "NAIVE", config, execution=ExecutionConfig(retention="all")
    ).run(collection)
    budgeted = make_counter(
        "NAIVE",
        config,
        execution=ExecutionConfig(spill_threshold_records=4, retention="all"),
    ).run(collection)

    assert budgeted.statistics.as_dict() == unbudgeted.statistics.as_dict()
    assert _job_outputs(budgeted) == _job_outputs(unbudgeted)
    assert budgeted.map_output_records == unbudgeted.map_output_records
    assert budgeted.map_output_bytes == unbudgeted.map_output_bytes
    # A tiny budget forces more combine rounds, hence more (smaller)
    # partial aggregates reaching the shuffle.
    budgeted_combined = budgeted.pipeline.counters.get("COMBINE_OUTPUT_RECORDS")
    unbudgeted_combined = unbudgeted.pipeline.counters.get("COMBINE_OUTPUT_RECORDS")
    assert budgeted_combined >= unbudgeted_combined
