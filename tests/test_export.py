"""Tests for CSV/JSON experiment exports."""

import csv
import json

import pytest

from repro.harness.export import (
    CSV_COLUMNS,
    measurements_to_rows,
    read_measurements_json,
    sweep_to_rows,
    write_measurements_csv,
    write_measurements_json,
    write_sweep_csv,
)
from repro.harness.measurement import RunMeasurement


def _measurement(algorithm="SUFFIX-SIGMA", tau=5, records=100):
    return RunMeasurement(
        algorithm=algorithm,
        dataset="NYT-like",
        min_frequency=tau,
        max_length=5,
        wallclock_seconds=0.5,
        simulated_wallclock_seconds=1.5,
        map_output_records=records,
        map_output_bytes=1000,
        num_jobs=1,
        num_ngrams=10,
    )


class TestRows:
    def test_measurements_to_rows(self):
        rows = measurements_to_rows([_measurement(), _measurement(algorithm="NAIVE")])
        assert len(rows) == 2
        assert rows[0]["algorithm"] == "SUFFIX-SIGMA"
        assert set(CSV_COLUMNS) <= set(rows[0])

    def test_sweep_to_rows(self):
        sweep = {10: [_measurement(tau=10)], 100: [_measurement(tau=100)]}
        rows = sweep_to_rows(sweep, parameter_name="tau_value")
        assert {row["tau_value"] for row in rows} == {10, 100}


class TestCSV:
    def test_write_measurements_csv(self, tmp_path):
        path = str(tmp_path / "out" / "measurements.csv")
        write_measurements_csv([_measurement(), _measurement(algorithm="NAIVE")], path)
        with open(path, newline="", encoding="utf-8") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert rows[0]["algorithm"] == "SUFFIX-SIGMA"
        assert rows[0]["records"] == "100"

    def test_write_sweep_csv(self, tmp_path):
        path = str(tmp_path / "sweep.csv")
        sweep = {10: [_measurement(tau=10)], 20: [_measurement(tau=20, algorithm="NAIVE")]}
        write_sweep_csv(sweep, path, parameter_name="tau")
        with open(path, newline="", encoding="utf-8") as handle:
            rows = list(csv.DictReader(handle))
        assert {row["tau"] for row in rows} == {"10", "20"}


class TestJSON:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "measurements.json")
        write_measurements_json([_measurement(records=123)], path)
        rows = read_measurements_json(path)
        assert rows[0]["records"] == 123
        assert rows[0]["dataset"] == "NYT-like"

    def test_read_rejects_non_array(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"not": "a list"}, handle)
        with pytest.raises(ValueError):
            read_measurements_json(path)

    def test_json_file_ends_with_newline(self, tmp_path):
        path = str(tmp_path / "m.json")
        write_measurements_json([_measurement()], path)
        with open(path, "rb") as handle:
            assert handle.read().endswith(b"\n")
