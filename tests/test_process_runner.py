"""Tests for the process-pool job runner (multi-core backend).

The process backend must be a drop-in replacement for the sequential
runner: identical output, partition output and counter totals, plus the
engine-level error contract — task failures and unpicklable job components
surface as :class:`MapReduceError` with job/task identity.
"""

from typing import Any, Iterable

import pytest

from repro.algorithms.suffix_sigma import SuffixSigmaCounter
from repro.config import NGramJobConfig
from repro.exceptions import MapReduceError
from repro.mapreduce.counters import MAP_OUTPUT_BYTES, MAP_OUTPUT_RECORDS
from repro.mapreduce.job import Mapper, Partitioner, TaskContext
from repro.mapreduce.parallel import ThreadPoolJobRunner
from repro.mapreduce.pipeline import JobPipeline
from repro.mapreduce.process import ProcessPoolJobRunner
from repro.mapreduce.runner import LocalJobRunner

from tests.test_runner import (
    EXPECTED_COUNTS,
    WORDS_INPUT,
    SumCombiner,
    SumReducer,
    word_count_job,
)


class ExplodingMapper(Mapper):
    """Mapper that fails on every record (picklable, unlike a local class)."""

    def map(self, key: Any, value: Iterable[str], context: TaskContext) -> None:
        raise ValueError("boom")


class BrokenPartitioner(Partitioner):
    """Partitioner returning an out-of-range index (picklable for workers)."""

    def partition(self, key: Any, num_partitions: int) -> int:
        return num_partitions


class TestProcessPoolJobRunner:
    def test_invalid_worker_count(self):
        with pytest.raises(MapReduceError):
            ProcessPoolJobRunner(max_workers=0)

    def test_word_count_matches_sequential(self):
        sequential = LocalJobRunner().run(word_count_job(), WORDS_INPUT)
        parallel = ProcessPoolJobRunner(max_workers=2).run(word_count_job(), WORDS_INPUT)
        assert parallel.output_as_dict() == sequential.output_as_dict() == EXPECTED_COUNTS

    def test_counters_match_sequential(self):
        job = word_count_job(combiner_factory=SumCombiner, num_map_tasks=3)
        sequential = LocalJobRunner().run(job, WORDS_INPUT)
        parallel = ProcessPoolJobRunner(max_workers=2).run(job, WORDS_INPUT)
        assert parallel.counters.as_dict() == sequential.counters.as_dict()

    def test_partition_outputs_match_sequential(self):
        job = word_count_job(num_reducers=4)
        sequential = LocalJobRunner().run(job, WORDS_INPUT)
        parallel = ProcessPoolJobRunner(max_workers=2).run(job, WORDS_INPUT)
        assert parallel.partition_output == sequential.partition_output

    def test_metrics_cover_all_tasks(self):
        job = word_count_job(num_map_tasks=3, num_reducers=2)
        result = ProcessPoolJobRunner(max_workers=2).run(job, WORDS_INPUT)
        assert result.metrics.num_map_tasks == 3
        assert result.metrics.num_reduce_tasks == 2
        assert result.counters.get(MAP_OUTPUT_RECORDS) == 13
        assert result.counters.get(MAP_OUTPUT_BYTES) > 0

    def test_empty_input(self):
        result = ProcessPoolJobRunner(max_workers=2).run(word_count_job(), [])
        assert result.is_empty()

    def test_spilled_shuffle_matches_in_memory(self):
        sequential = LocalJobRunner().run(word_count_job(), WORDS_INPUT)
        spilling = ProcessPoolJobRunner(max_workers=2, spill_threshold_bytes=8)
        result = spilling.run(word_count_job(), WORDS_INPUT)
        assert result.output == sequential.output
        assert result.partition_output == sequential.partition_output


class TestProcessRunnerErrorContract:
    def test_unpicklable_mapper_factory_is_reported(self):
        job = word_count_job(mapper_factory=lambda: ExplodingMapper())
        with pytest.raises(MapReduceError) as excinfo:
            ProcessPoolJobRunner(max_workers=2).run(job, WORDS_INPUT)
        message = str(excinfo.value)
        assert "word-count" in message
        assert "mapper_factory" in message
        assert "ExplodingMapper" in message

    def test_unpicklable_reducer_factory_is_reported(self):
        job = word_count_job(reducer_factory=lambda: SumReducer())
        with pytest.raises(MapReduceError) as excinfo:
            ProcessPoolJobRunner(max_workers=2).run(job, WORDS_INPUT)
        message = str(excinfo.value)
        assert "reducer_factory" in message
        assert "SumReducer" in message

    def test_task_failure_carries_job_and_task_identity(self):
        job = word_count_job(mapper_factory=ExplodingMapper, num_map_tasks=2)
        with pytest.raises(MapReduceError) as excinfo:
            ProcessPoolJobRunner(max_workers=2).run(job, WORDS_INPUT)
        message = str(excinfo.value)
        assert "word-count" in message
        assert "map task 0" in message
        assert "boom" in message

    def test_thread_runner_shares_the_failure_contract(self):
        job = word_count_job(mapper_factory=ExplodingMapper, num_map_tasks=2)
        with pytest.raises(MapReduceError) as excinfo:
            ThreadPoolJobRunner(max_workers=2).run(job, WORDS_INPUT)
        message = str(excinfo.value)
        assert "word-count" in message
        assert "map task 0" in message
        assert "ValueError" in message

    def test_shuffle_failure_surfaces_as_engine_error(self):
        """Errors raised while routing map output (not inside a task) are engine errors."""
        job = word_count_job(partitioner=BrokenPartitioner(), num_map_tasks=3)
        for runner in (ThreadPoolJobRunner(max_workers=2), ProcessPoolJobRunner(max_workers=2)):
            with pytest.raises(MapReduceError, match="partitioner returned index"):
                runner.run(job, WORDS_INPUT)


class TestSuffixSigmaOnProcessRunner:
    def test_suffix_sigma_pipeline_with_process_runner(
        self, running_example, running_example_expected
    ):
        config = NGramJobConfig(min_frequency=3, max_length=3)
        counter = SuffixSigmaCounter(config)
        records = counter.prepare_records(running_example)
        runner = ProcessPoolJobRunner(max_workers=2)
        pipeline = JobPipeline(runner=runner)
        statistics = counter._execute(records, pipeline, running_example)
        assert statistics.as_dict() == running_example_expected
