"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import main


@pytest.fixture()
def corpus_dir(tmp_path):
    directory = str(tmp_path / "corpus")
    exit_code = main(
        [
            "generate",
            "--dataset",
            "nyt",
            "--documents",
            "15",
            "--seed",
            "3",
            "--output",
            directory,
            "--shards",
            "2",
        ]
    )
    assert exit_code == 0
    return directory


class TestGenerate:
    def test_creates_corpus_files(self, corpus_dir, capsys):
        files = os.listdir(corpus_dir)
        assert "dictionary.txt" in files
        assert any(name.startswith("part-") for name in files)

    def test_web_dataset(self, tmp_path):
        directory = str(tmp_path / "web")
        assert main(["generate", "--dataset", "cw", "--documents", "10", "--output", directory]) == 0
        assert os.path.exists(os.path.join(directory, "dictionary.txt"))


class TestStats:
    def test_prints_table1_rows(self, corpus_dir, capsys):
        assert main(["stats", "--input", corpus_dir]) == 0
        output = capsys.readouterr().out
        assert "# documents" in output
        assert "sentence length (mean)" in output


class TestCount:
    def test_basic_count(self, corpus_dir, capsys):
        assert main(["count", "--input", corpus_dir, "--tau", "3", "--sigma", "3"]) == 0
        output = capsys.readouterr().out
        assert "SUFFIX-SIGMA" in output
        assert "n-grams" in output

    def test_count_with_naive(self, corpus_dir, capsys):
        assert (
            main(["count", "--input", corpus_dir, "--tau", "5", "--sigma", "2", "--algorithm", "NAIVE"])
            == 0
        )
        assert "NAIVE" in capsys.readouterr().out

    def test_count_maximal(self, corpus_dir, capsys):
        assert main(["count", "--input", corpus_dir, "--tau", "3", "--sigma", "3", "--maximal"]) == 0
        assert "SUFFIX-SIGMA-MAXIMAL" in capsys.readouterr().out

    def test_count_closed_writes_output_file(self, corpus_dir, tmp_path, capsys):
        output_file = str(tmp_path / "ngrams.tsv")
        assert (
            main(
                [
                    "count",
                    "--input",
                    corpus_dir,
                    "--tau",
                    "3",
                    "--sigma",
                    "3",
                    "--closed",
                    "--output",
                    output_file,
                ]
            )
            == 0
        )
        with open(output_file, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        assert lines
        assert all("\t" in line for line in lines)

    def test_maximal_and_closed_conflict(self, corpus_dir, capsys):
        assert (
            main(["count", "--input", corpus_dir, "--maximal", "--closed"]) == 2
        )

    def test_document_frequency_flag(self, corpus_dir, capsys):
        assert (
            main(["count", "--input", corpus_dir, "--tau", "2", "--sigma", "2", "--document-frequency"])
            == 0
        )

    def test_export_json_with_out_of_core_map_side(self, corpus_dir, tmp_path, capsys):
        """The fully out-of-core configuration: corpus streamed from disk,
        disk materialisation, combine buffer + worker-side spills."""
        report = str(tmp_path / "reports" / "count.json")
        assert (
            main(
                [
                    "count",
                    "--input",
                    corpus_dir,
                    "--tau",
                    "2",
                    "--sigma",
                    "3",
                    "--algorithm",
                    "NAIVE",
                    "--runner",
                    "processes",
                    "--workers",
                    "2",
                    "--materialize",
                    "disk",
                    "--spill-threshold",
                    "64r",
                    "--track-memory",
                    "--export-json",
                    report,
                ]
            )
            == 0
        )
        import json

        with open(report, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["algorithm"] == "NAIVE"
        assert payload["num_ngrams"] > 0
        assert payload["peak_memory_bytes"] > 0
        assert payload["counters"]["task"]["SHUFFLE_SPILLS"] > 0
        # The streamed and the materialised corpus compute the same thing.
        capsys.readouterr()
        assert (
            main(
                [
                    "count",
                    "--input",
                    corpus_dir,
                    "--tau",
                    "2",
                    "--sigma",
                    "3",
                    "--algorithm",
                    "NAIVE",
                    "--materialize-corpus",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert f"{payload['num_ngrams']} n-grams" in output


class TestExperimentCommand:
    def test_table1(self, capsys):
        assert main(["experiment", "table1", "--scale", "0.1"]) == 0
        output = capsys.readouterr().out
        assert "NYT-like" in output
        assert "# term occurrences" in output

    def test_extensions(self, capsys):
        assert main(["experiment", "extensions", "--scale", "0.1"]) == 0
        output = capsys.readouterr().out
        assert "maximal" in output

    def test_ablations_with_export(self, tmp_path, capsys):
        export_path = str(tmp_path / "ablations.csv")
        assert main(["experiment", "ablations", "--scale", "0.08", "--export", export_path]) == 0
        assert os.path.exists(export_path)
        with open(export_path, "r", encoding="utf-8") as handle:
            header = handle.readline()
        assert "algorithm" in header
        assert "records" in header


class TestApplicationCommands:
    def test_coderivatives(self, corpus_dir, capsys):
        assert main(["coderivatives", "--input", corpus_dir, "--min-length", "6", "--top", "5"]) == 0
        output = capsys.readouterr().out
        assert "longest shared n-gram" in output or "no co-derivative" in output

    def test_coderivatives_none_found(self, corpus_dir, capsys):
        assert main(["coderivatives", "--input", corpus_dir, "--min-length", "500"]) == 0
        assert "no co-derivative" in capsys.readouterr().out

    def test_trends(self, corpus_dir, capsys):
        assert main(["trends", "--input", corpus_dir, "--tau", "3", "--sigma", "2", "--top", "3"]) == 0
        output = capsys.readouterr().out
        assert "rising n-grams" in output
        assert "declining n-grams" in output


class TestStoreAndQueryCommands:
    @pytest.fixture()
    def store_dir(self, corpus_dir, tmp_path):
        directory = str(tmp_path / "store")
        exit_code = main(
            [
                "count",
                "--input",
                corpus_dir,
                "--tau",
                "3",
                "--sigma",
                "3",
                "--algorithm",
                "APRIORI-SCAN",
                "--materialize",
                "disk",
                "--spill-threshold",
                "500r",
                "--shard-codec",
                "gzip",
                "--store-dir",
                directory,
                "--store-codec",
                "gzip",
                "--store-partitions",
                "3",
            ]
        )
        assert exit_code == 0
        return directory

    def test_count_writes_store_layout(self, store_dir, capsys):
        files = os.listdir(store_dir)
        assert "store.json" in files
        assert "dictionary.txt" in files
        assert sum(1 for name in files if name.endswith(".ngt")) == 3

    def test_query_stats(self, store_dir, capsys):
        assert main(["query", store_dir, "--stats"]) == 0
        output = capsys.readouterr().out
        assert "APRIORI-SCAN" in output
        assert "partitions" in output

    def test_query_top_k(self, store_dir, capsys):
        assert main(["query", store_dir, "--top-k", "5"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 5
        frequencies = [int(line.split()[0]) for line in lines]
        assert frequencies == sorted(frequencies, reverse=True)

    def test_query_get_and_prefix(self, store_dir, capsys):
        assert main(["query", store_dir, "--top-k", "1"]) == 0
        top_term = capsys.readouterr().out.split(None, 1)[1].strip()
        assert main(["query", store_dir, "--get", top_term]) == 0
        assert top_term in capsys.readouterr().out
        assert main(["query", store_dir, "--prefix", top_term, "--limit", "3"]) == 0
        assert "n-grams with prefix" in capsys.readouterr().out

    def test_query_missing_ngram_exit_code(self, store_dir, capsys):
        assert main(["query", store_dir, "--get", "7777777", "--ids"]) == 1
        assert "not found" in capsys.readouterr().out

    def test_query_unknown_term_is_not_found(self, store_dir, capsys):
        """An out-of-vocabulary word is a not-found result, not a store error."""
        assert main(["query", store_dir, "--get", "zz-not-a-word"]) == 1
        assert "not found" in capsys.readouterr().out
        assert main(["query", store_dir, "--prefix", "zz-not-a-word"]) == 0
        assert "0 n-grams with prefix" in capsys.readouterr().out

    def test_query_bad_store(self, tmp_path, capsys):
        assert main(["query", str(tmp_path / "nowhere"), "--stats"]) == 2

    def test_invalid_spill_threshold_rejected(self, corpus_dir):
        with pytest.raises(SystemExit):
            main(
                [
                    "count",
                    "--input",
                    corpus_dir,
                    "--spill-threshold",
                    "10frogs",
                ]
            )
