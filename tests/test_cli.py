"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import main


@pytest.fixture()
def corpus_dir(tmp_path):
    directory = str(tmp_path / "corpus")
    exit_code = main(
        [
            "generate",
            "--dataset",
            "nyt",
            "--documents",
            "15",
            "--seed",
            "3",
            "--output",
            directory,
            "--shards",
            "2",
        ]
    )
    assert exit_code == 0
    return directory


class TestGenerate:
    def test_creates_corpus_files(self, corpus_dir, capsys):
        files = os.listdir(corpus_dir)
        assert "dictionary.txt" in files
        assert any(name.startswith("part-") for name in files)

    def test_web_dataset(self, tmp_path):
        directory = str(tmp_path / "web")
        assert main(["generate", "--dataset", "cw", "--documents", "10", "--output", directory]) == 0
        assert os.path.exists(os.path.join(directory, "dictionary.txt"))


class TestStats:
    def test_prints_table1_rows(self, corpus_dir, capsys):
        assert main(["stats", "--input", corpus_dir]) == 0
        output = capsys.readouterr().out
        assert "# documents" in output
        assert "sentence length (mean)" in output


class TestCount:
    def test_basic_count(self, corpus_dir, capsys):
        assert main(["count", "--input", corpus_dir, "--tau", "3", "--sigma", "3"]) == 0
        output = capsys.readouterr().out
        assert "SUFFIX-SIGMA" in output
        assert "n-grams" in output

    def test_count_with_naive(self, corpus_dir, capsys):
        assert (
            main(["count", "--input", corpus_dir, "--tau", "5", "--sigma", "2", "--algorithm", "NAIVE"])
            == 0
        )
        assert "NAIVE" in capsys.readouterr().out

    def test_count_maximal(self, corpus_dir, capsys):
        assert main(["count", "--input", corpus_dir, "--tau", "3", "--sigma", "3", "--maximal"]) == 0
        assert "SUFFIX-SIGMA-MAXIMAL" in capsys.readouterr().out

    def test_count_closed_writes_output_file(self, corpus_dir, tmp_path, capsys):
        output_file = str(tmp_path / "ngrams.tsv")
        assert (
            main(
                [
                    "count",
                    "--input",
                    corpus_dir,
                    "--tau",
                    "3",
                    "--sigma",
                    "3",
                    "--closed",
                    "--output",
                    output_file,
                ]
            )
            == 0
        )
        with open(output_file, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        assert lines
        assert all("\t" in line for line in lines)

    def test_maximal_and_closed_conflict(self, corpus_dir, capsys):
        assert (
            main(["count", "--input", corpus_dir, "--maximal", "--closed"]) == 2
        )

    def test_document_frequency_flag(self, corpus_dir, capsys):
        assert (
            main(["count", "--input", corpus_dir, "--tau", "2", "--sigma", "2", "--document-frequency"])
            == 0
        )


class TestExperimentCommand:
    def test_table1(self, capsys):
        assert main(["experiment", "table1", "--scale", "0.1"]) == 0
        output = capsys.readouterr().out
        assert "NYT-like" in output
        assert "# term occurrences" in output

    def test_extensions(self, capsys):
        assert main(["experiment", "extensions", "--scale", "0.1"]) == 0
        output = capsys.readouterr().out
        assert "maximal" in output

    def test_ablations_with_export(self, tmp_path, capsys):
        export_path = str(tmp_path / "ablations.csv")
        assert main(["experiment", "ablations", "--scale", "0.08", "--export", export_path]) == 0
        assert os.path.exists(export_path)
        with open(export_path, "r", encoding="utf-8") as handle:
            header = handle.readline()
        assert "algorithm" in header
        assert "records" in header


class TestApplicationCommands:
    def test_coderivatives(self, corpus_dir, capsys):
        assert main(["coderivatives", "--input", corpus_dir, "--min-length", "6", "--top", "5"]) == 0
        output = capsys.readouterr().out
        assert "longest shared n-gram" in output or "no co-derivative" in output

    def test_coderivatives_none_found(self, corpus_dir, capsys):
        assert main(["coderivatives", "--input", corpus_dir, "--min-length", "500"]) == 0
        assert "no co-derivative" in capsys.readouterr().out

    def test_trends(self, corpus_dir, capsys):
        assert main(["trends", "--input", corpus_dir, "--tau", "3", "--sigma", "2", "--top", "3"]) == 0
        output = capsys.readouterr().out
        assert "rising n-grams" in output
        assert "declining n-grams" in output
