"""Tests for Hadoop-style counters."""

from repro.mapreduce.counters import (
    MAP_OUTPUT_BYTES,
    MAP_OUTPUT_RECORDS,
    CounterGroup,
    Counters,
)


class TestCounterGroup:
    def test_starts_at_zero(self):
        group = CounterGroup("task")
        assert group.get("anything") == 0

    def test_increment_default_amount(self):
        group = CounterGroup("task")
        group.increment("records")
        group.increment("records")
        assert group.get("records") == 2

    def test_increment_amount(self):
        group = CounterGroup("task")
        group.increment("bytes", 100)
        group.increment("bytes", 23)
        assert group.get("bytes") == 123

    def test_items_sorted(self):
        group = CounterGroup("task")
        group.increment("b")
        group.increment("a")
        assert [name for name, _ in group.items()] == ["a", "b"]

    def test_merge(self):
        left = CounterGroup("task")
        right = CounterGroup("task")
        left.increment("records", 3)
        right.increment("records", 4)
        right.increment("bytes", 10)
        left.merge(right)
        assert left.get("records") == 7
        assert left.get("bytes") == 10


class TestCounters:
    def test_group_creation_is_idempotent(self):
        counters = Counters()
        assert counters.group("task") is counters.group("task")

    def test_increment_and_get(self):
        counters = Counters()
        counters.increment(MAP_OUTPUT_RECORDS, 5)
        assert counters.get(MAP_OUTPUT_RECORDS) == 5
        assert counters.map_output_records == 5

    def test_custom_group(self):
        counters = Counters()
        counters.increment("hits", 2, group="cache")
        assert counters.get("hits", group="cache") == 2
        assert counters.get("hits") == 0

    def test_merge_aggregates_all_groups(self):
        left = Counters()
        right = Counters()
        left.increment(MAP_OUTPUT_BYTES, 10)
        right.increment(MAP_OUTPUT_BYTES, 32)
        right.increment("hits", 1, group="cache")
        left.merge(right)
        assert left.map_output_bytes == 42
        assert left.get("hits", group="cache") == 1

    def test_as_dict_roundtrip(self):
        counters = Counters()
        counters.increment(MAP_OUTPUT_RECORDS, 7)
        counters.increment("hits", 3, group="cache")
        rebuilt = Counters.from_dict(counters.as_dict())
        assert rebuilt.as_dict() == counters.as_dict()

    def test_properties_default_zero(self):
        counters = Counters()
        assert counters.map_output_records == 0
        assert counters.map_output_bytes == 0
