"""Tests for collection statistics (Table I quantities)."""

import math

from repro.corpus.collection import DocumentCollection
from repro.corpus.document import Document
from repro.corpus.stats import compute_statistics


class TestComputeStatistics:
    def test_running_example(self, running_example):
        statistics = compute_statistics(running_example)
        assert statistics.num_documents == 3
        assert statistics.num_term_occurrences == 15
        assert statistics.num_distinct_terms == 3
        assert statistics.num_sentences == 3
        assert statistics.sentence_length_mean == 5.0
        assert statistics.sentence_length_stddev == 0.0

    def test_multi_sentence_documents(self):
        collection = DocumentCollection(
            [
                Document.from_sentences(0, [["a", "b", "c"], ["d"]]),
                Document.from_sentences(1, [["e", "f"]]),
            ]
        )
        statistics = compute_statistics(collection)
        assert statistics.num_documents == 2
        assert statistics.num_sentences == 3
        assert statistics.num_term_occurrences == 6
        assert statistics.sentence_length_mean == 2.0
        expected_std = math.sqrt(((3 - 2) ** 2 + (1 - 2) ** 2 + (2 - 2) ** 2) / 3)
        assert abs(statistics.sentence_length_stddev - expected_std) < 1e-12

    def test_empty_collection(self):
        statistics = compute_statistics(DocumentCollection())
        assert statistics.num_documents == 0
        assert statistics.sentence_length_mean == 0.0
        assert statistics.sentence_length_stddev == 0.0

    def test_works_on_encoded_collections(self, running_example):
        raw = compute_statistics(running_example)
        encoded = compute_statistics(running_example.encode())
        assert encoded == raw

    def test_as_rows_order(self, running_example):
        rows = compute_statistics(running_example).as_rows()
        labels = [label for label, _ in rows]
        assert labels == [
            "# documents",
            "# term occurrences",
            "# distinct terms",
            "# sentences",
            "sentence length (mean)",
            "sentence length (stddev)",
        ]
