"""Tests for k-way store merging (compaction)."""

import random

import pytest

from repro.cli import main
from repro.config import StoreConfig
from repro.corpus.collection import EncodedCollection
from repro.exceptions import StoreError
from repro.harness.datasets import nytimes_like
from repro.algorithms import count_ngrams
from repro.applications.language_model import NGramLanguageModel
from repro.ngramstore import NGramStore, build_store, merge_stores
from repro.ngramstore.merge import merge_records


def make_records(count, seed, max_term=40):
    rng = random.Random(seed)
    keys = set()
    while len(keys) < count:
        keys.add(tuple(rng.randint(0, max_term) for _ in range(rng.randint(1, 3))))
    return [(key, rng.randint(1, 200)) for key in sorted(keys)]


def unigram_total(statistics):
    """Sum of unigram frequencies (what base.py records in store metadata)."""
    return sum(count for ngram, count in statistics.items() if len(ngram) == 1)


def summed(*record_lists):
    totals = {}
    for records in record_lists:
        for key, value in records:
            totals[key] = totals.get(key, 0) + value
    return dict(sorted(totals.items()))


class TestMergeRecords:
    def test_duplicates_summed_across_inputs(self, tmp_path):
        left = make_records(200, seed=1)
        right = make_records(200, seed=2)  # overlapping key space by construction
        overlap = {key for key, _ in left} & {key for key, _ in right}
        assert overlap  # the fixture must actually exercise duplicate keys
        left_dir, right_dir = str(tmp_path / "left"), str(tmp_path / "right")
        build_store(left, left_dir, store=StoreConfig(num_partitions=2))
        build_store(right, right_dir, store=StoreConfig(num_partitions=3))
        with NGramStore.open(left_dir) as a, NGramStore.open(right_dir) as b:
            assert dict(merge_records([a, b])) == summed(left, right)

    def test_non_summable_duplicate_rejected(self, tmp_path):
        left_dir, right_dir = str(tmp_path / "left"), str(tmp_path / "right")
        build_store([((1,), {"2000": 3})], left_dir)
        build_store([((1,), {"2001": 4})], right_dir)
        with NGramStore.open(left_dir) as a, NGramStore.open(right_dir) as b:
            with pytest.raises(StoreError, match="do not support addition"):
                list(merge_records([a, b]))


class TestMergeStores:
    def test_merged_equals_sum(self, tmp_path):
        left = make_records(300, seed=5)
        right = make_records(250, seed=6)
        left_dir, right_dir = str(tmp_path / "left"), str(tmp_path / "right")
        out_dir = str(tmp_path / "merged")
        build_store(left, left_dir, store=StoreConfig(num_partitions=2, records_per_block=16))
        build_store(right, right_dir, store=StoreConfig(num_partitions=4, records_per_block=64))
        merge_stores([left_dir, right_dir], out_dir, store=StoreConfig(num_partitions=3))
        expected = summed(left, right)
        with NGramStore.open(out_dir) as merged:
            assert dict(merged.items()) == expected
            assert list(merged.items()) == sorted(expected.items())
            # Spot queries route correctly through re-derived boundaries.
            for key in list(expected)[::23]:
                assert merged.get(key) == expected[key]
            assert merged.top_k(5) == sorted(
                expected.items(), key=lambda record: (-record[1], record[0])
            )[:5]
            assert merged.metadata["merged_num_inputs"] == 2

    def test_empty_input_store_is_identity(self, tmp_path):
        records = make_records(150, seed=7)
        full_dir, empty_dir = str(tmp_path / "full"), str(tmp_path / "empty")
        out_dir = str(tmp_path / "merged")
        build_store(records, full_dir, store=StoreConfig(num_partitions=2))
        build_store([], empty_dir)
        merge_stores([full_dir, empty_dir], out_dir)
        with NGramStore.open(out_dir) as merged:
            assert list(merged.items()) == records

    def test_all_empty_inputs(self, tmp_path):
        first, second = str(tmp_path / "a"), str(tmp_path / "b")
        out_dir = str(tmp_path / "merged")
        build_store([], first)
        build_store([], second)
        merge_stores([first, second], out_dir)
        with NGramStore.open(out_dir) as merged:
            assert len(merged) == 0
            assert list(merged.items()) == []
            assert merged.get((1,)) is None

    def test_single_partition_inputs_merge_into_multi_partition(self, tmp_path):
        left = make_records(400, seed=8)
        right = make_records(400, seed=9)
        left_dir, right_dir = str(tmp_path / "left"), str(tmp_path / "right")
        out_dir = str(tmp_path / "merged")
        build_store(left, left_dir, store=StoreConfig(num_partitions=1))
        build_store(right, right_dir, store=StoreConfig(num_partitions=1))
        merge_stores(
            [left_dir, right_dir],
            out_dir,
            store=StoreConfig(num_partitions=4, records_per_block=32),
        )
        with NGramStore.open(out_dir) as merged:
            assert merged.num_partitions == 4
            assert len(merged.boundaries) == 3
            assert dict(merged.items()) == summed(left, right)
            # Per-partition tables are disjoint and ordered.
            previous_max = None
            for index in range(merged.num_partitions):
                table = merged._table(index)
                if len(table) == 0:
                    continue
                if previous_max is not None:
                    assert previous_max < table.min_key
                previous_max = table.max_key

    def test_codec_mixed_inputs(self, tmp_path):
        left = make_records(200, seed=10)
        right = make_records(200, seed=11)
        left_dir, right_dir = str(tmp_path / "gz"), str(tmp_path / "plain")
        out_dir = str(tmp_path / "merged")
        build_store(left, left_dir, store=StoreConfig(num_partitions=2, codec="gzip"))
        build_store(right, right_dir, store=StoreConfig(num_partitions=2, codec="none"))
        merge_stores(
            [left_dir, right_dir], out_dir, store=StoreConfig(num_partitions=2, codec="gzip")
        )
        with NGramStore.open(out_dir) as merged:
            assert merged.codec_name == "gzip"
            assert dict(merged.items()) == summed(left, right)

    def test_three_way_merge(self, tmp_path):
        shards = [make_records(120, seed=20 + index) for index in range(3)]
        shard_dirs = []
        for index, records in enumerate(shards):
            directory = str(tmp_path / f"shard-{index}")
            build_store(records, directory, store=StoreConfig(num_partitions=2))
            shard_dirs.append(directory)
        out_dir = str(tmp_path / "merged")
        merge_stores(shard_dirs, out_dir)
        with NGramStore.open(out_dir) as merged:
            assert dict(merged.items()) == summed(*shards)
            assert merged.metadata["merged_num_inputs"] == 3

    def test_boundary_planning_reads_no_data_blocks(self, tmp_path):
        """Boundaries come from block indexes: merging decodes each block once."""
        left = make_records(300, seed=40)
        right = make_records(300, seed=41)
        left_dir, right_dir = str(tmp_path / "left"), str(tmp_path / "right")
        out_dir = str(tmp_path / "merged")
        build_store(left, left_dir, store=StoreConfig(num_partitions=2, records_per_block=16))
        build_store(right, right_dir, store=StoreConfig(num_partitions=2, records_per_block=16))
        merge_stores([left_dir, right_dir], out_dir, store=StoreConfig(num_partitions=3))
        with NGramStore.open(out_dir) as merged:
            assert dict(merged.items()) == summed(left, right)
        # Re-open and count block decodes for the same merge: every input
        # block is read exactly once (the write pass), none for planning.
        with NGramStore.open(left_dir) as a, NGramStore.open(right_dir) as b:
            from repro.ngramstore.merge import _boundary_sample

            sample = _boundary_sample([a, b], 1024, 3)
            assert sample == sorted(sample)
            assert a.cache_stats().misses == 0
            assert b.cache_stats().misses == 0
            list(merge_records([a, b]))
            total_blocks = sum(
                store._table(index).num_blocks
                for store in (a, b)
                for index in range(store.num_partitions)
            )
            assert a.cache_stats().misses + b.cache_stats().misses == total_blocks

    def test_validation_errors(self, tmp_path):
        records = make_records(50, seed=12)
        store_dir = str(tmp_path / "store")
        build_store(records, store_dir)
        with pytest.raises(StoreError, match="at least one input"):
            merge_stores([], str(tmp_path / "out"))
        with pytest.raises(StoreError, match="cannot be one of the inputs"):
            merge_stores([store_dir], store_dir)

    def test_vocabulary_mismatch_rejected(self, tmp_path):
        collection_a = nytimes_like(num_documents=8, seed=1).build()
        collection_b = nytimes_like(num_documents=8, seed=99).build()
        a_dir, b_dir = str(tmp_path / "a"), str(tmp_path / "b")
        build_store(
            count_ngrams(collection_a, min_frequency=2).statistics.items(),
            a_dir,
            vocabulary=collection_a.vocabulary,
        )
        build_store(
            count_ngrams(collection_b, min_frequency=2).statistics.items(),
            b_dir,
            vocabulary=collection_b.vocabulary,
        )
        with pytest.raises(StoreError, match="different vocabularies"):
            merge_stores([a_dir, b_dir], str(tmp_path / "out"))

    def test_merge_preserves_common_vocabulary(self, tmp_path):
        collection = nytimes_like(num_documents=10, seed=4).build()
        statistics = count_ngrams(collection, min_frequency=2).statistics
        a_dir, b_dir = str(tmp_path / "a"), str(tmp_path / "b")
        out_dir = str(tmp_path / "merged")
        build_store(statistics.items(), a_dir, vocabulary=collection.vocabulary)
        build_store(statistics.items(), b_dir, vocabulary=collection.vocabulary)
        merge_stores([a_dir, b_dir], out_dir)
        with NGramStore.open(out_dir) as merged:
            assert merged.vocabulary is not None
            assert list(merged.vocabulary.terms()) == list(collection.vocabulary.terms())
            # Self-merge doubles every frequency.
            for key, value in list(statistics.items())[::17]:
                assert merged.get(key) == 2 * value


class TestMergeMatchesUnionRecount:
    """Per-shard counting runs, merged, equal a from-scratch union count.

    τ = 1 makes the equality exact: raw n-gram counts are additive across
    any document partition (n-grams never span documents), while τ > 1
    would drop shard-locally-infrequent n-grams before the merge could sum
    them (documented limitation).
    """

    def test_sharded_counts_merge_to_union_store(self, tmp_path):
        collection = nytimes_like(num_documents=30, seed=17).build()
        documents = list(collection.documents)
        vocabulary = collection.vocabulary
        first_half = EncodedCollection(documents[:15], vocabulary)
        second_half = EncodedCollection(documents[15:], vocabulary)

        shard_dirs = []
        for index, shard in enumerate((first_half, second_half)):
            result = count_ngrams(shard, min_frequency=1, max_length=3)
            directory = str(tmp_path / f"shard-{index}")
            build_store(
                result.statistics.items(),
                directory,
                store=StoreConfig(num_partitions=2, records_per_block=64),
                vocabulary=vocabulary,
                metadata={"unigram_total": unigram_total(result.statistics)},
            )
            shard_dirs.append(directory)

        merged_dir = str(tmp_path / "merged")
        merge_stores(
            shard_dirs, merged_dir, store=StoreConfig(num_partitions=3, records_per_block=64)
        )

        union = count_ngrams(collection, min_frequency=1, max_length=3)
        union_dir = str(tmp_path / "union")
        build_store(
            union.statistics.items(),
            union_dir,
            store=StoreConfig(num_partitions=3, records_per_block=64),
            vocabulary=vocabulary,
        )

        with NGramStore.open(merged_dir) as merged, NGramStore.open(union_dir) as scratch:
            # Query results over the merged store equal the from-scratch
            # union store: same records, same order, same top-k.
            assert list(merged.items()) == list(scratch.items())
            assert merged.top_k(10) == scratch.top_k(10)
            for key, _ in list(scratch.items())[::29]:
                assert merged.get(key) == scratch.get(key)
            prefix_term = scratch.top_k(1)[0][0][:1]
            assert list(merged.prefix(prefix_term)) == list(scratch.prefix(prefix_term))

    def test_merged_metadata_sums_unigram_total(self, tmp_path):
        collection = nytimes_like(num_documents=20, seed=23).build()
        documents = list(collection.documents)
        vocabulary = collection.vocabulary
        shard_dirs = []
        for index in range(2):
            shard = EncodedCollection(documents[index * 10 : (index + 1) * 10], vocabulary)
            result = count_ngrams(shard, min_frequency=1, max_length=2)
            directory = str(tmp_path / f"shard-{index}")
            result2 = result.statistics
            build_store(
                result2.items(),
                directory,
                vocabulary=vocabulary,
                metadata={
                    "unigram_total": unigram_total(result2),
                    "vocabulary_size": len(vocabulary),
                    "num_ngrams": len(result2),
                },
            )
            shard_dirs.append(directory)
        merged_dir = str(tmp_path / "merged")
        merge_stores(shard_dirs, merged_dir)
        with NGramStore.open(merged_dir) as merged:
            metadata = merged.metadata
            union_total = unigram_total(
                count_ngrams(collection, min_frequency=1, max_length=2).statistics
            )
            # Summed, not carried over stale — the language model's O(1)
            # init on a merged store stays exact.
            assert metadata["unigram_total"] == union_total
            assert "num_ngrams" not in metadata
            assert metadata["vocabulary_size"] == len(vocabulary)
            model = NGramLanguageModel.from_store(merged_dir, order=2)
            assert model.total_tokens == union_total


class TestMergeCLI:
    def test_merge_stores_cli(self, tmp_path, capsys):
        left = make_records(100, seed=30)
        right = make_records(100, seed=31)
        left_dir, right_dir = str(tmp_path / "a"), str(tmp_path / "b")
        out_dir = str(tmp_path / "merged")
        build_store(left, left_dir)
        build_store(right, right_dir)
        assert (
            main(
                [
                    "merge-stores",
                    left_dir,
                    right_dir,
                    "--output",
                    out_dir,
                    "--partitions",
                    "2",
                    "--codec",
                    "gzip",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "merged 2 stores" in output
        with NGramStore.open(out_dir) as merged:
            assert dict(merged.items()) == summed(left, right)
        assert main(["query", out_dir, "--stats"]) == 0

    def test_merge_cli_error_exit_2(self, tmp_path, capsys):
        assert (
            main(
                [
                    "merge-stores",
                    str(tmp_path / "missing"),
                    "--output",
                    str(tmp_path / "out"),
                ]
            )
            == 2
        )
        assert "error:" in capsys.readouterr().err
