"""Tests for the n-gram store: format, build job, query engine, consumers."""

import json
import os
import random

import pytest

from repro.algorithms import count_ngrams
from repro.applications.culturomics import trend_report
from repro.applications.language_model import NGramLanguageModel
from repro.cli import main
from repro.config import ExecutionConfig, StoreConfig
from repro.exceptions import StoreError
from repro.harness.datasets import nytimes_like
from repro.mapreduce.pipeline import JobPipeline
from repro.ngrams.timeseries import (
    NGramTimeSeriesCollection,
    StoreBackedTimeSeriesCollection,
    TimeSeries,
)
from repro.ngramstore import (
    NGramStore,
    RangePartitioner,
    StoreStatistics,
    Table,
    TableWriter,
    build_store,
    plan_boundaries,
    sample_keys,
)
from repro.ngramstore.build import SortedRunReducer, total_order_sort_job
from repro.ngramstore.table import BlockCache, top_k_records
from repro.util.memory import PeakMemoryTracker


def make_records(count=500, seed=11, max_term=40, max_len=4):
    """Deterministic sorted-unique (ngram, frequency) records."""
    rng = random.Random(seed)
    keys = set()
    while len(keys) < count:
        keys.add(tuple(rng.randint(0, max_term) for _ in range(rng.randint(1, max_len))))
    return [(key, rng.randint(1, 500)) for key in sorted(keys)]


@pytest.fixture()
def records():
    return make_records()


# --------------------------------------------------------------- table layer
class TestTable:
    def test_round_trip_all_queries(self, tmp_path, records):
        path = str(tmp_path / "table.ngt")
        with TableWriter(path, records_per_block=32) as writer:
            writer.extend(records)
        with Table(path) as table:
            assert len(table) == len(records)
            assert list(table) == records
            assert table.min_key == records[0][0]
            assert table.max_key == records[-1][0]
            for key, value in records[::17]:
                assert table.get(key) == value
                assert key in table
            assert table.get((999, 999)) is None
            assert (999, 999) not in table

    def test_sorted_invariant_enforced(self, tmp_path):
        writer = TableWriter(str(tmp_path / "t.ngt"))
        writer.append((1, 2), 10)
        with pytest.raises(StoreError, match="unsorted write"):
            writer.append((1, 1), 5)
        with pytest.raises(StoreError, match="unsorted write"):
            writer.append((1, 2), 5)  # duplicates are unsorted too
        writer.abort()
        assert not os.path.exists(writer.path)

    def test_block_boundary_keys_are_found(self, tmp_path, records):
        """Keys at the first/last slot of every block resolve correctly."""
        path = str(tmp_path / "table.ngt")
        block = 7  # uneven size so the last block is partial
        with TableWriter(path, records_per_block=block) as writer:
            writer.extend(records)
        with Table(path) as table:
            assert table.num_blocks == -(-len(records) // block)
            boundary_positions = set()
            for index in range(table.num_blocks):
                boundary_positions.add(index * block)
                boundary_positions.add(min(len(records), (index + 1) * block) - 1)
            for position in boundary_positions:
                key, value = records[position]
                assert table.get(key) == value

    def test_scan_range_and_prefix(self, tmp_path, records):
        path = str(tmp_path / "table.ngt")
        with TableWriter(path, records_per_block=16) as writer:
            writer.extend(records)
        with Table(path) as table:
            start, stop = records[100][0], records[300][0]
            assert list(table.scan(start=start, stop=stop)) == records[100:300]
            assert list(table.scan(stop=records[5][0])) == records[:5]
            prefix = (records[200][0][0],)
            expected = [r for r in records if r[0][: len(prefix)] == prefix]
            assert list(table.prefix(prefix)) == expected
            assert expected  # the fixture must actually exercise the path

    def test_top_k_orders(self, tmp_path, records):
        path = str(tmp_path / "table.ngt")
        with TableWriter(path, records_per_block=16) as writer:
            writer.extend(records)
        with Table(path) as table:
            by_freq = sorted(records, key=lambda r: (-r[1], r[0]))[:10]
            assert table.top_k(10, order="frequency") == by_freq
            assert table.top_k(10, order="key") == records[:10]
            with pytest.raises(StoreError, match="order"):
                table.top_k(3, order="bogus")
            with pytest.raises(StoreError, match="k must be"):
                table.top_k(0)

    @pytest.mark.parametrize("codec", ["gzip"])
    def test_compressed_results_byte_identical(self, tmp_path, records, codec):
        plain_path = str(tmp_path / "plain.ngt")
        packed_path = str(tmp_path / "packed.ngt")
        for path, name in ((plain_path, "none"), (packed_path, codec)):
            with TableWriter(path, codec=name, records_per_block=32) as writer:
                writer.extend(records)
        assert os.path.getsize(packed_path) < os.path.getsize(plain_path)
        with Table(plain_path) as plain, Table(packed_path) as packed:
            assert packed.codec_name == codec
            assert list(plain) == list(packed)
            for key, _ in records[::13]:
                assert plain.get(key) == packed.get(key)
            prefix = (records[50][0][0],)
            assert list(plain.prefix(prefix)) == list(packed.prefix(prefix))
            assert plain.top_k(20) == packed.top_k(20)

    def test_empty_table(self, tmp_path):
        path = str(tmp_path / "empty.ngt")
        with TableWriter(path) as writer:
            pass
        with Table(path) as table:
            assert len(table) == 0
            assert list(table) == []
            assert table.get((1,)) is None
            assert list(table.prefix((1,))) == []

    def test_corrupt_file_rejected(self, tmp_path):
        path = str(tmp_path / "junk.ngt")
        with open(path, "wb") as handle:
            handle.write(b"definitely not a store table, but long enough to read")
        with pytest.raises(StoreError):
            Table(path)

    def test_block_cache_bounds_and_counts(self, tmp_path, records):
        path = str(tmp_path / "table.ngt")
        with TableWriter(path, records_per_block=8) as writer:
            writer.extend(records)
        with Table(path, cache_blocks=2) as table:
            for key, value in records:
                assert table.get(key) == value
            stats = table.cache_stats
            # Sequential point lookups over 8-record blocks: one miss per
            # block, hits for the other records of the block.
            assert stats.misses == table.num_blocks
            assert stats.hits == len(records) - table.num_blocks
            assert stats.evictions == table.num_blocks - 2

    def test_block_cache_validation(self):
        with pytest.raises(StoreError):
            BlockCache(0)


# --------------------------------------------------------------- build layer
class TestBuildHelpers:
    def test_sample_and_boundaries_are_deterministic(self, records):
        from repro.mapreduce.dataset import MemoryDataset

        dataset = MemoryDataset(records)
        sample = sample_keys(dataset, 64)
        assert sample == sample_keys(dataset, 64)
        assert len(sample) <= 2 * 64
        boundaries = plan_boundaries(sample, 4)
        assert boundaries == sorted(boundaries)
        assert len(boundaries) <= 3
        assert plan_boundaries(sample, 1) == []
        assert plan_boundaries([], 8) == []

    def test_range_partitioner_routes_by_boundaries(self):
        partitioner = RangePartitioner([(5,), (10,)])
        assert partitioner.num_partitions == 3
        assert partitioner.partition((1,), 3) == 0
        assert partitioner.partition((5,), 3) == 1  # boundary key goes right
        assert partitioner.partition((5, 0), 3) == 1
        assert partitioner.partition((10, 7), 3) == 2
        with pytest.raises(StoreError, match="num_reducers"):
            partitioner.partition((1,), 4)
        with pytest.raises(StoreError, match="strictly increasing"):
            RangePartitioner([(5,), (5,)])

    def test_sorted_run_reducer_rejects_duplicates(self):
        job = total_order_sort_job("dup", [])
        with pytest.raises(StoreError, match="duplicate key"):
            JobPipeline().run_job(job, [((1,), 1), ((1,), 2)])

    def test_duplicate_check_message_names_reducer(self):
        reducer = SortedRunReducer()
        with pytest.raises(StoreError, match="exactly one value"):
            reducer.reduce((1,), [1, 2], context=None)


class TestBuildStore:
    def test_multi_partition_store_round_trip(self, tmp_path, records):
        store_dir = str(tmp_path / "store")
        shuffled = list(records)
        random.Random(3).shuffle(shuffled)
        build_store(
            iter(shuffled),
            store_dir,
            store=StoreConfig(num_partitions=4, records_per_block=32),
        )
        manifest = json.load(open(os.path.join(store_dir, "store.json")))
        assert manifest["num_partitions"] == 4
        assert manifest["num_records"] == len(records)
        assert len(manifest["boundaries"]) == 3
        with NGramStore.open(store_dir) as store:
            # Global order: concatenated partitions == fully sorted input.
            assert list(store.items()) == records
            for key, value in records[::7]:
                assert store.get(key) == value
            assert store.get((10_000,)) is None

    def test_partitions_are_disjoint_and_ordered(self, tmp_path, records):
        store_dir = str(tmp_path / "store")
        build_store(records, store_dir, store=StoreConfig(num_partitions=4))
        with NGramStore.open(store_dir) as store:
            previous_max = None
            non_empty = 0
            for index in range(store.num_partitions):
                table = store._table(index)
                if len(table) == 0:
                    continue
                non_empty += 1
                if previous_max is not None:
                    assert previous_max < table.min_key
                previous_max = table.max_key
            assert non_empty >= 2  # the sampling actually spread the keys

    def test_prefix_spans_partition_boundaries(self, tmp_path):
        # Keys chosen so one first-term prefix straddles a partition cut.
        records = [((term, position), term * 100 + position) for term in range(6) for position in range(50)]
        store_dir = str(tmp_path / "store")
        build_store(records, store_dir, store=StoreConfig(num_partitions=5, sample_size=300))
        with NGramStore.open(store_dir) as store:
            for term in range(6):
                expected = [r for r in records if r[0][0] == term]
                assert list(store.prefix((term,))) == expected
            assert store.top_k(7) == sorted(records, key=lambda r: (-r[1], r[0]))[:7]

    def test_store_under_disk_materialization(self, tmp_path, records):
        store_dir = str(tmp_path / "store")
        build_store(
            records,
            store_dir,
            store=StoreConfig(num_partitions=3, codec="gzip"),
            execution=ExecutionConfig(materialize="disk", spill_threshold_bytes=1024),
        )
        with NGramStore.open(store_dir) as store:
            assert store.codec_name == "gzip"
            assert list(store.items()) == records

    def test_empty_store(self, tmp_path):
        store_dir = str(tmp_path / "store")
        build_store([], store_dir)
        with NGramStore.open(store_dir) as store:
            assert len(store) == 0
            assert store.get((1,)) is None
            assert list(store.items()) == []
            assert store.top_k(5) == []

    def test_open_missing_manifest(self, tmp_path):
        with pytest.raises(StoreError, match="manifest"):
            NGramStore.open(str(tmp_path))

    def test_rebuild_replaces_previous_store(self, tmp_path, records):
        """A rebuild leaves no stale tables and no stale manifest routing."""
        store_dir = str(tmp_path / "store")
        build_store(records, store_dir, store=StoreConfig(num_partitions=4))
        assert sum(name.endswith(".ngt") for name in os.listdir(store_dir)) == 4
        replacement = records[:20]
        build_store(replacement, store_dir, store=StoreConfig(num_partitions=1))
        # Fewer partitions: the old part files are gone, not orphaned.
        assert sum(name.endswith(".ngt") for name in os.listdir(store_dir)) == 1
        with NGramStore.open(store_dir) as store:
            assert list(store.items()) == replacement

    def test_clear_store_dir_removes_manifest_first(self, tmp_path, records, monkeypatch):
        """A crash mid-clear must leave no manifest routing to dead tables."""
        import repro.ngramstore.build as build_module

        store_dir = str(tmp_path / "store")
        build_store(records, store_dir, store=StoreConfig(num_partitions=2))
        removed = []
        real_remove = os.remove

        def failing_remove(path):
            removed.append(path)
            if path.endswith(".ngt"):
                raise OSError("disk died mid-clear")
            real_remove(path)

        monkeypatch.setattr(build_module.os, "remove", failing_remove)
        with pytest.raises(OSError, match="mid-clear"):
            build_module.clear_store_dir(store_dir)
        monkeypatch.undo()
        assert removed[0].endswith("store.json")  # manifest goes first
        with pytest.raises(StoreError, match="manifest"):
            NGramStore.open(store_dir)

    def test_failed_rebuild_refuses_to_open(self, tmp_path, records):
        """A crash mid-build must not leave an old manifest over new tables."""
        store_dir = str(tmp_path / "store")
        build_store(records, store_dir)
        with pytest.raises(StoreError, match="duplicate key"):
            build_store([((1,), 1), ((1,), 2)], store_dir)
        with pytest.raises(StoreError, match="manifest"):
            NGramStore.open(store_dir)


# --------------------------------------------------------------- query layer
class TestStoreStatistics:
    def test_statistics_facade(self, tmp_path, records):
        store_dir = str(tmp_path / "store")
        build_store(records, store_dir, store=StoreConfig(num_partitions=2))
        with NGramStore.open(store_dir) as store:
            statistics = StoreStatistics(store)
            expected = dict(records)
            assert len(statistics) == len(expected)
            assert set(statistics) == set(expected)
            sample_key = records[42][0]
            assert statistics.frequency(sample_key) == expected[sample_key]
            assert statistics.frequency((123_456,)) == 0
            assert statistics[sample_key] == expected[sample_key]
            with pytest.raises(KeyError):
                statistics[(123_456,)]
            assert sample_key in statistics
            unigrams = sorted(
                (r for r in records if len(r[0]) == 1), key=lambda r: (-r[1], r[0])
            )[:5]
            assert statistics.top(5, length=1) == unigrams


class TestLanguageModelOnStore:
    def test_scores_byte_identical_to_dict_backed(self, tmp_path):
        collection = nytimes_like(num_documents=25, seed=5).build()
        result = count_ngrams(collection, min_frequency=2, max_length=3)
        total_tokens = sum(len(sequence) for _, sequence in collection.records())
        store_dir = str(tmp_path / "store")
        build_store(
            result.statistics.items(),
            store_dir,
            store=StoreConfig(num_partitions=3, codec="gzip", records_per_block=64),
            vocabulary=collection.vocabulary,
        )
        dict_model = NGramLanguageModel(
            result.statistics, order=3, total_tokens=total_tokens
        )
        with NGramStore.open(store_dir) as store:
            store_model = NGramLanguageModel.from_store(
                store, order=3, total_tokens=total_tokens
            )
            assert store_model.total_tokens == dict_model.total_tokens
            assert store_model._vocabulary_size == dict_model._vocabulary_size
            sentences = [sequence for _, sequence in collection.records()][:20]
            for sentence in sentences:
                dict_scored = dict_model.score_sentence(sentence)
                store_scored = store_model.score_sentence(sentence)
                # Byte-identical: exact float equality, not approx.
                assert store_scored.log10_score == dict_scored.log10_score
                assert store_scored.per_token_scores == dict_scored.per_token_scores
            context = sentences[0][:2]
            assert store_model.continuations(context, top_k=5) == dict_model.continuations(
                context, top_k=5
            )

    def test_from_store_accepts_directory_path(self, tmp_path, records):
        store_dir = str(tmp_path / "store")
        build_store(records, store_dir)
        model = NGramLanguageModel.from_store(store_dir, order=2)
        assert model.statistics.frequency(records[0][0]) == records[0][1]


class TestTimeSeriesOnStore:
    def test_trend_report_matches_dict_backed(self, tmp_path):
        collection = NGramTimeSeriesCollection()
        rng = random.Random(9)
        for term in range(40):
            series = TimeSeries.from_mapping(
                {2000 + year: rng.randint(1, 30) for year in range(rng.randint(2, 8))}
            )
            collection.set((term, term + 1), series)
        store_dir = str(tmp_path / "ts-store")
        build_store(collection.to_records(), store_dir, store=StoreConfig(num_partitions=2))
        with NGramStore.open(store_dir) as store:
            backed = StoreBackedTimeSeriesCollection(store)
            assert len(backed) == len(collection)
            probe = (7, 8)
            assert backed.series(probe) == collection.series(probe)
            assert backed.series((999, 999)) == TimeSeries()
            assert probe in backed
            assert trend_report(backed) == trend_report(collection)


# ----------------------------------------------------------- e2e acceptance
class TestEndToEndAcceptance:
    RECORDS_PER_BLOCK = 64
    CACHE_BLOCKS = 4

    @pytest.fixture(scope="class")
    def corpus_and_store(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("e2e")
        corpus_dir = str(root / "corpus")
        store_dir = str(root / "store")
        assert (
            main(
                [
                    "generate",
                    "--dataset",
                    "nyt",
                    "--documents",
                    "40",
                    "--seed",
                    "7",
                    "--output",
                    corpus_dir,
                ]
            )
            == 0
        )
        assert (
            main(
                [
                    "count",
                    "--input",
                    corpus_dir,
                    "--tau",
                    "3",
                    "--sigma",
                    "4",
                    "--algorithm",
                    "APRIORI-SCAN",
                    "--materialize",
                    "disk",
                    "--store-dir",
                    store_dir,
                    "--store-codec",
                    "gzip",
                ]
            )
            == 0
        )
        return corpus_dir, store_dir

    def _reference_statistics(self, corpus_dir):
        from repro.corpus.io import read_encoded_collection

        collection = read_encoded_collection(corpus_dir)
        return (
            count_ngrams(
                collection, min_frequency=3, max_length=4, algorithm="APRIORI-SCAN"
            ).statistics,
            collection,
        )

    def test_store_matches_counting_run(self, corpus_and_store):
        corpus_dir, store_dir = corpus_and_store
        statistics, _ = self._reference_statistics(corpus_dir)
        with NGramStore.open(store_dir) as store:
            assert len(store) == len(statistics)
            assert dict(store.items()) == statistics.as_dict()
            assert list(store) == sorted(statistics.as_dict())

    def test_query_cli_prefix_and_top_k(self, corpus_and_store, capsys):
        corpus_dir, store_dir = corpus_and_store
        statistics, collection = self._reference_statistics(corpus_dir)
        top = statistics.top(5)
        assert main(["query", store_dir, "--top-k", "5"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        for (ngram, frequency), line in zip(top, lines):
            surface = " ".join(collection.vocabulary.term(t) for t in ngram)
            assert line.split(None, 1) == [str(frequency), surface]

        # Prefix query through the CLI, on the two most frequent terms.
        w1, w2 = (collection.vocabulary.term(index) for index in (0, 1))
        expected = {
            ngram: frequency
            for ngram, frequency in statistics.items()
            if ngram[:2] == (0, 1)
        }
        assert main(["query", store_dir, "--prefix", f"{w1} {w2}"]) == 0
        output = capsys.readouterr().out
        assert f"{len(expected)} n-grams with prefix" in output

        assert main(["query", store_dir, "--get", w1]) == 0
        line = capsys.readouterr().out.strip()
        assert line.split(None, 1) == [str(statistics.frequency((0,))), w1]

        # Out-of-vocabulary terms are a not-found result (1), not an error (2).
        assert main(["query", store_dir, "--get", "zzz-unseen-term zzz"]) == 1
        assert main(["query", store_dir, "--stats"]) == 0
        assert "APRIORI-SCAN" in capsys.readouterr().out

    def test_query_memory_bounded_by_block_cache(self, tmp_path):
        """Serving peaks at blocks x cache entries, not at the table size."""
        records = make_records(count=8000, seed=21, max_term=200)
        store_dir = str(tmp_path / "big-store")
        build_store(
            records,
            store_dir,
            store=StoreConfig(
                num_partitions=2, records_per_block=self.RECORDS_PER_BLOCK
            ),
        )
        rng = random.Random(4)
        probes = [rng.choice(records)[0] for _ in range(300)]

        def run_queries(store):
            for key in probes:
                store.get(key)
            for _ in store.prefix((0,)):
                pass
            store.top_k(10)

        with NGramStore.open(store_dir, cache_blocks=self.CACHE_BLOCKS) as store:
            with PeakMemoryTracker() as query_tracker:
                run_queries(store)
            hot_blocks = sum(
                min(store._table(index).num_blocks, self.CACHE_BLOCKS)
                for index in range(store.num_partitions)
            )
        with NGramStore.open(store_dir) as store:
            with PeakMemoryTracker() as materialize_tracker:
                everything = dict(store.items())
        assert len(everything) == len(records)
        # The query path must not materialise the store: random point
        # lookups across the whole key space, a prefix scan and a top-k
        # together stay well under the full-dict footprint...
        assert query_tracker.peak_bytes < materialize_tracker.peak_bytes / 4
        # ... because only cache-capacity blocks are ever resident: the
        # peak is a small multiple of block size x cache entries (frames,
        # decoded tuples and heap overhead give the slack factor).
        resident_records = hot_blocks * self.RECORDS_PER_BLOCK
        assert resident_records < len(records) / 4
        per_record_budget = 512  # generous bytes/record incl. Python overhead
        assert query_tracker.peak_bytes < resident_records * per_record_budget

    def test_counting_result_records_store_dir(self, tmp_path):
        collection = nytimes_like(num_documents=15, seed=2).build()
        store_dir = str(tmp_path / "store")
        from repro.algorithms import make_counter
        from repro.config import NGramJobConfig

        counter = make_counter("SUFFIX-SIGMA", NGramJobConfig(min_frequency=3, max_length=3))
        result = counter.run(collection, store_dir=store_dir)
        assert result.store_dir == store_dir
        with NGramStore.open(store_dir) as store:
            assert dict(store.items()) == result.statistics.as_dict()
            assert store.vocabulary is not None

    def test_experiment_runner_persists_stores(self, tmp_path):
        from repro.harness.experiment import ExperimentRunner

        collection = nytimes_like(num_documents=15, seed=2).build()
        runner = ExperimentRunner(store_dir=str(tmp_path / "stores"))
        measurement, result = runner.run_once("NAIVE", collection, "NYT-like", 3, 3)
        assert result.store_dir is not None
        with NGramStore.open(result.store_dir) as store:
            assert len(store) == measurement.num_ngrams
        # A sweep repeating the same cell must not overwrite the first store.
        _, second = runner.run_once("NAIVE", collection, "NYT-like", 3, 3)
        assert second.store_dir != result.store_dir
        with NGramStore.open(second.store_dir) as store:
            assert len(store) == measurement.num_ngrams


# ------------------------------------------------------- top-k block skipping
def skewed_records(count=4096, block=64):
    """Sorted records whose frequency decays along the key order.

    Realistic shape: term identifiers are assigned in descending collection
    frequency, so low keys ~ frequent n-grams; the decay plus a little
    deterministic jitter concentrates the global top-k in the first blocks.
    """
    rng = random.Random(99)
    return [
        ((index // 7, index % 7, index), max(1, count - index + rng.randint(0, 3)))
        for index in range(count)
    ]


class TestTopKBlockSkipping:
    BLOCK = 64

    @pytest.fixture()
    def skewed_store(self, tmp_path):
        store_dir = str(tmp_path / "skewed")
        build_store(
            skewed_records(block=self.BLOCK),
            store_dir,
            store=StoreConfig(num_partitions=3, records_per_block=self.BLOCK),
        )
        return store_dir

    def test_summaries_persisted_in_block_index(self, tmp_path):
        records = skewed_records(count=512)
        path = str(tmp_path / "t.ngt")
        with TableWriter(path, records_per_block=64) as writer:
            writer.extend(records)
        with Table(path) as table:
            for entry in table._index:
                block_values = [
                    value
                    for key, value in records
                    if entry.first_key <= key <= entry.last_key
                ]
                assert entry.max_value == max(block_values)

    def test_non_numeric_blocks_have_no_summary(self, tmp_path):
        path = str(tmp_path / "ts.ngt")
        with TableWriter(path, records_per_block=4) as writer:
            writer.extend([((index,), {"year": index}) for index in range(10)])
        with Table(path) as table:
            assert all(entry.max_value is None for entry in table._index)

    def test_top_k_skips_blocks_and_matches_full_scan(self, skewed_store):
        from repro.ngramstore import TopKAccumulator

        records = skewed_records(block=self.BLOCK)
        expected = sorted(records, key=lambda record: (-record[1], record[0]))[:10]
        with NGramStore.open(skewed_store) as store:
            assert store.top_k(10) == expected
            accumulator = TopKAccumulator(10)
            store.top_k_into(accumulator)
            total_blocks = sum(
                store._table(index).num_blocks for index in range(store.num_partitions)
            )
            assert accumulator.blocks_scanned + accumulator.blocks_skipped == total_blocks
            assert accumulator.blocks_skipped > 0
            assert accumulator.blocks_scanned < total_blocks
            assert accumulator.results() == expected

    def test_skipping_equals_streaming_reference_on_random_values(self, tmp_path, records):
        """Random (unskewed) values: skipping must still be exact."""
        store_dir = str(tmp_path / "random")
        build_store(records, store_dir, store=StoreConfig(num_partitions=2, records_per_block=16))
        with NGramStore.open(store_dir) as store:
            for k in (1, 3, 25, len(records) + 10):
                assert store.top_k(k) == top_k_records(iter(records), k, "frequency")

    def test_key_order_early_exit(self, skewed_store):
        records = skewed_records(block=self.BLOCK)
        with NGramStore.open(skewed_store) as store:
            assert store.top_k(5, order="key") == records[:5]
            # Early exit: only the first block of the first partition is read.
            stats = store.cache_stats()
            assert stats.misses == 1

    def test_old_format_index_without_summaries_still_served(self, tmp_path, monkeypatch):
        """Tables written before max_value existed read fine, just unskipped."""
        import repro.ngramstore.format as format_module
        import repro.ngramstore.table as table_module

        real_write_index = format_module.write_index

        def legacy_write_index(handle, index):
            # Plain 5-tuples, exactly what a pre-summary writer pickled —
            # the read path must fill max_value from the NamedTuple default.
            legacy = [tuple(entry)[:5] for entry in index]
            return real_write_index(handle, legacy)

        # TableWriter resolves write_index from its own module namespace.
        monkeypatch.setattr(table_module, "write_index", legacy_write_index)
        records = skewed_records(count=512)
        path = str(tmp_path / "legacy.ngt")
        with TableWriter(path, records_per_block=32) as writer:
            writer.extend(records)
        monkeypatch.undo()

        with Table(path) as table:
            assert all(entry.max_value is None for entry in table._index)
            assert list(table) == records
            for key, value in records[::41]:
                assert table.get(key) == value
            expected = sorted(records, key=lambda record: (-record[1], record[0]))[:7]
            assert table.top_k(7) == expected
            from repro.ngramstore import TopKAccumulator

            accumulator = TopKAccumulator(7)
            table.top_k_into(accumulator)
            assert accumulator.blocks_skipped == 0  # no summaries -> no skipping

    def test_accumulator_tie_break_matches_nsmallest(self):
        from repro.ngramstore import TopKAccumulator

        records = [((2,), 5), ((1,), 5), ((3,), 9), ((0,), 5)]
        accumulator = TopKAccumulator(3)
        for key, value in records:
            accumulator.offer(key, value)
        assert accumulator.results() == top_k_records(iter(records), 3, "frequency")


class TestSharedBlockCache:
    def test_two_tables_share_one_cache(self, tmp_path, records):
        half = len(records) // 2
        paths = []
        for index, chunk in enumerate((records[:half], records[half:])):
            path = str(tmp_path / f"t{index}.ngt")
            with TableWriter(path, records_per_block=8) as writer:
                writer.extend(chunk)
            paths.append(path)
        cache = BlockCache(4)
        with Table(paths[0], cache=cache) as first, Table(paths[1], cache=cache) as second:
            for key, value in records[::9]:
                table = first if key <= first.max_key else second
                assert table.get(key) == value
            assert len(cache) <= 4
            stats = cache.stats_snapshot()
            assert stats.hits + stats.misses == len(records[::9])
            # Closing one table does not wipe the other's shared entries.
            first.close()
            assert len(cache) > 0


# ------------------------------------------------------------ helper checks
class TestTopKRecords:
    def test_frequency_tie_break_matches_statistics_top(self):
        records = [((2,), 5), ((1,), 5), ((3,), 9)]
        assert top_k_records(iter(records), 2, "frequency") == [((3,), 9), ((1,), 5)]

    def test_key_order(self):
        records = [((2,), 5), ((1,), 5), ((3,), 9)]
        assert top_k_records(iter(records), 2, "key") == [((1,), 5), ((2,), 5)]


# ----------------------------------------------------- bloom + mmap fast path
class TestBloomFilteredReads:
    def test_blooms_persisted_per_block(self, tmp_path, records):
        path = str(tmp_path / "bloomed.ngt")
        with TableWriter(path, records_per_block=32) as writer:
            writer.extend(records)
        with Table(path) as table:
            assert all(entry.bloom is not None for entry in table._index)

    def test_point_miss_decodes_zero_blocks(self, tmp_path, records):
        """The fast path the filters exist for: a filtered miss is free."""
        path = str(tmp_path / "bloomed.ngt")
        with TableWriter(path, records_per_block=32) as writer:
            writer.extend(records)
        present = {key for key, _ in records}
        with Table(path) as table:
            # In-range misses (so the index alone cannot reject them) that
            # the filter screens out: each must touch zero data blocks.
            rng = random.Random(7)
            filtered_misses = 0
            while filtered_misses < 20:
                key = tuple(rng.randint(0, 40) for _ in range(3))
                if key in present or not table.min_key <= key <= table.max_key:
                    continue
                before = table.blocks_decoded
                if table.get(key) is None and table.blocks_decoded == before:
                    filtered_misses += 1
            assert table.bloom_rejections >= filtered_misses
            # Hits are never filtered out (no false negatives end to end).
            for key, value in records[::17]:
                assert table.get(key) == value

    def test_bloom_disabled_reads_identically(self, tmp_path, records):
        plain = str(tmp_path / "plain.ngt")
        with TableWriter(plain, records_per_block=32, bloom_bits_per_key=0) as writer:
            writer.extend(records)
        with Table(plain) as table:
            assert all(entry.bloom is None for entry in table._index)
            assert list(table) == records
            assert table.get((999, 999)) is None
            assert table.bloom_rejections == 0

    def test_writer_rejects_negative_budget(self, tmp_path):
        with pytest.raises(StoreError, match="bloom_bits_per_key"):
            TableWriter(str(tmp_path / "t.ngt"), bloom_bits_per_key=-1)

    def test_legacy_index_without_blooms_still_served(self, tmp_path, monkeypatch, records):
        """Tables written before blooms existed read byte-identically."""
        import repro.ngramstore.format as format_module
        import repro.ngramstore.table as table_module

        real_write_index = format_module.write_index

        def legacy_write_index(handle, index):
            # Plain 6-tuples, exactly what a pre-bloom writer pickled — the
            # read path must fill bloom from the NamedTuple default.
            legacy = [tuple(entry)[:6] for entry in index]
            return real_write_index(handle, legacy)

        monkeypatch.setattr(table_module, "write_index", legacy_write_index)
        legacy_path = str(tmp_path / "legacy.ngt")
        with TableWriter(legacy_path, records_per_block=32) as writer:
            writer.extend(records)
        monkeypatch.undo()
        modern_path = str(tmp_path / "modern.ngt")
        with TableWriter(modern_path, records_per_block=32) as writer:
            writer.extend(records)

        with Table(legacy_path) as legacy, Table(modern_path) as modern:
            assert all(entry.bloom is None for entry in legacy._index)
            # max_value summaries (the older index addition) still present.
            assert [e.max_value for e in legacy._index] == [
                e.max_value for e in modern._index
            ]
            assert list(legacy) == list(modern) == records
            probes = [key for key, _ in records[::13]] + [(999, 999), (0,)]
            assert [legacy.get(key) for key in probes] == [
                modern.get(key) for key in probes
            ]
            assert legacy.top_k(9) == modern.top_k(9)
            assert legacy.bloom_rejections == 0  # nothing to filter with


class TestMmapReads:
    def test_mmap_active_and_identical_to_file_io(self, tmp_path, records):
        path = str(tmp_path / "table.ngt")
        with TableWriter(path, records_per_block=32) as writer:
            writer.extend(records)
        with Table(path, use_mmap=True) as mapped, Table(path, use_mmap=False) as plain:
            assert mapped.mmap_active
            assert not plain.mmap_active
            assert list(mapped) == list(plain) == records
            probes = [key for key, _ in records[::11]] + [(999, 999)]
            assert [mapped.get(key) for key in probes] == [
                plain.get(key) for key in probes
            ]
            assert mapped.top_k(8) == plain.top_k(8)

    def test_compressed_tables_fall_back_to_file_io(self, tmp_path, records):
        path = str(tmp_path / "compressed.ngt")
        with TableWriter(path, records_per_block=32, codec="gzip") as writer:
            writer.extend(records)
        with Table(path, use_mmap=True) as table:
            assert not table.mmap_active  # zero-copy needs uncompressed blocks
            assert list(table) == records

    def test_store_threads_mmap_flag_and_reports_io_stats(self, tmp_path, records):
        store_dir = str(tmp_path / "store")
        build_store(
            records, store_dir, store=StoreConfig(num_partitions=3, records_per_block=16)
        )
        with NGramStore.open(store_dir) as mapped, NGramStore.open(
            store_dir, use_mmap=False
        ) as plain:
            assert [mapped.get(key) for key, _ in records[::7]] == [
                plain.get(key) for key, _ in records[::7]
            ]
            assert list(mapped.items()) == list(plain.items())
            mapped_stats = mapped.io_stats()
            assert mapped_stats["mmap_partitions"] == 3
            assert mapped_stats["blocks_decoded"] > 0
            assert plain.io_stats()["mmap_partitions"] == 0

    def test_store_point_misses_skip_decoding(self, tmp_path, records):
        store_dir = str(tmp_path / "store")
        build_store(
            records, store_dir, store=StoreConfig(num_partitions=2, records_per_block=16)
        )
        present = {key for key, _ in records}
        with NGramStore.open(store_dir) as store:
            rng = random.Random(31)
            misses = 0
            while misses < 50:
                key = tuple(rng.randint(0, 40) for _ in range(3))
                if key in present:
                    continue
                assert store.get(key) is None
                misses += 1
            assert store.io_stats()["bloom_rejections"] > 0


# ------------------------------------------------------- per-block checksums
class TestBlockChecksums:
    def write_table(self, tmp_path, records, **kwargs):
        path = str(tmp_path / "table.ngt")
        with TableWriter(path, records_per_block=32, **kwargs) as writer:
            writer.extend(records)
        return path

    def corrupt_block(self, path, offset, length):
        """Flip one byte in the middle of the block at ``offset``."""
        position = offset + length // 2
        with open(path, "r+b") as handle:
            handle.seek(position)
            byte = handle.read(1)
            handle.seek(position)
            handle.write(bytes([byte[0] ^ 0xFF]))

    def test_checksums_persisted_per_block(self, tmp_path, records):
        path = self.write_table(tmp_path, records)
        with Table(path) as table:
            assert all(isinstance(entry.checksum, int) for entry in table._index)
            # Clean reads never trip the counter.
            assert list(table) == records
            assert table.blocks_checksum_failed == 0

    @pytest.mark.parametrize("use_mmap", [True, False])
    def test_corruption_detected_on_both_read_paths(self, tmp_path, records, use_mmap):
        """The CRC check runs before decode on mmap views and seek+read alike."""
        path = self.write_table(tmp_path, records)
        with Table(path) as table:
            entry = table._index[0]
        self.corrupt_block(path, entry.offset, entry.length)
        with Table(path, use_mmap=use_mmap) as table:
            with pytest.raises(StoreError, match="checksum mismatch"):
                table.get(records[0][0])
            assert table.blocks_checksum_failed == 1
            # Undamaged blocks in the same table still serve.
            last_block_key = table._index[-1].first_key
            assert table.get(last_block_key) is not None

    def test_corruption_detected_under_compression(self, tmp_path, records):
        """The CRC covers the *stored* payload, compressed or not."""
        path = self.write_table(tmp_path, records, codec="gzip")
        with Table(path) as table:
            entry = table._index[0]
        self.corrupt_block(path, entry.offset, entry.length)
        with Table(path) as table:
            with pytest.raises(StoreError, match="checksum mismatch"):
                table.get(records[0][0])

    def test_store_error_names_partition(self, tmp_path, records):
        """Corruption in a store partition is reported with its identity."""
        store_dir = str(tmp_path / "store")
        build_store(
            records, store_dir, store=StoreConfig(num_partitions=2, records_per_block=32)
        )
        with NGramStore.open(store_dir) as store:
            table = store._table(1)
            entry = table._index[0]
            victim_path, first_key = table.path, entry.first_key
            offset, length = entry.offset, entry.length
        self.corrupt_block(victim_path, offset, length)
        with NGramStore.open(store_dir) as store:
            with pytest.raises(StoreError, match="partition 1"):
                store.get(first_key)
            assert store.io_stats()["blocks_checksum_failed"] == 1
            # The undamaged partition still serves.
            for key, value in records[:20]:
                if store._partition_for(key) == 0:
                    assert store.get(key) == value
                    break

    def test_legacy_index_without_checksums_still_served(
        self, tmp_path, monkeypatch, records
    ):
        """Pre-checksum tables (7-tuple index entries) load and read fine."""
        import repro.ngramstore.format as format_module
        import repro.ngramstore.table as table_module

        real_write_index = format_module.write_index

        def legacy_write_index(handle, index):
            legacy = [tuple(entry)[:7] for entry in index]
            return real_write_index(handle, legacy)

        monkeypatch.setattr(table_module, "write_index", legacy_write_index)
        path = self.write_table(tmp_path, records)
        monkeypatch.undo()
        with Table(path) as table:
            assert all(entry.checksum is None for entry in table._index)
            assert list(table) == records
            for key, value in records[::43]:
                assert table.get(key) == value
            assert table.blocks_checksum_failed == 0
