"""Tests for the streaming dataset layer (memory + sharded on-disk)."""

import os
import pickle

import pytest

from repro.exceptions import DatasetError
from repro.mapreduce.dataset import (
    CollectionDataset,
    DatasetStorage,
    FileDataset,
    MemoryDataset,
    Shard,
    ShardSink,
    as_dataset,
    plan_split_sizes,
)
from repro.mapreduce.serialization import record_size


def _records(n):
    """Deterministic records mixing the engine's key/value shapes."""
    records = []
    for i in range(n):
        if i % 3 == 0:
            records.append(((i, i + 1), (1, 2, i)))  # n-gram-style tuple keys
        elif i % 3 == 1:
            records.append((f"term-{i}", i))  # string keys, int values
        else:
            records.append((i, [i, i * 2]))  # list values
    return records


class TestPlanSplitSizes:
    def test_empty_input_single_split(self):
        assert plan_split_sizes(0, 4) == [0]

    def test_split_count_capped_by_records(self):
        assert plan_split_sizes(3, 10) == [1, 1, 1]

    def test_balanced_sizes(self):
        assert plan_split_sizes(10, 3) == [4, 3, 3]

    def test_rejects_zero_splits(self):
        with pytest.raises(DatasetError):
            plan_split_sizes(5, 0)

    @pytest.mark.parametrize("total", [1, 2, 7, 23, 100])
    @pytest.mark.parametrize("splits", [1, 2, 3, 8])
    def test_sizes_sum_to_total(self, total, splits):
        sizes = plan_split_sizes(total, splits)
        assert sum(sizes) == total
        assert max(sizes) - min(sizes) <= 1


class TestMemoryDataset:
    def test_round_trip_and_len(self):
        records = _records(7)
        dataset = MemoryDataset(records)
        assert len(dataset) == 7
        assert list(dataset) == records
        assert dataset.to_list() is records  # no copy for list inputs

    def test_split_is_contiguous_and_ordered(self):
        records = _records(17)
        splits = MemoryDataset(records).split(4)
        assert [len(split) for split in splits] == plan_split_sizes(17, 4)
        assert [record for split in splits for record in split] == records

    def test_empty_dataset_has_one_empty_split(self):
        assert MemoryDataset([]).split(5) == [[]]

    def test_release_then_access_raises(self):
        dataset = MemoryDataset(_records(3))
        dataset.release()
        assert dataset.released
        with pytest.raises(DatasetError):
            dataset.to_list()
        with pytest.raises(DatasetError):
            list(dataset)

    def test_as_dataset_passthrough_and_wrap(self):
        dataset = MemoryDataset(_records(2))
        assert as_dataset(dataset) is dataset
        wrapped = as_dataset(iter(_records(2)))
        assert wrapped.to_list() == _records(2)

    def test_as_dataset_rejects_released(self):
        dataset = MemoryDataset(_records(2))
        dataset.release()
        with pytest.raises(DatasetError):
            as_dataset(dataset)


class TestFileDataset:
    @pytest.mark.parametrize("n", [0, 1, 7, 23])
    @pytest.mark.parametrize("records_per_shard", [1, 3, 100])
    def test_write_round_trip(self, tmp_path, n, records_per_shard):
        records = _records(n)
        dataset = FileDataset.write(
            records,
            directory=str(tmp_path),
            name="rt",
            records_per_shard=records_per_shard,
        )
        assert dataset.num_records == n
        assert dataset.to_list() == records
        expected_shards = -(-n // records_per_shard)  # ceil
        assert len(dataset.shards) == expected_shards

    def test_shard_accounting_matches_record_size(self, tmp_path):
        records = _records(5)
        dataset = FileDataset.write(records, directory=str(tmp_path), name="acct")
        total = sum(shard.serialized_bytes for shard in dataset.shards)
        assert total == sum(record_size(key, value) for key, value in records)

    @pytest.mark.parametrize("n", [0, 1, 7, 23])
    @pytest.mark.parametrize("records_per_shard", [1, 3, 5, 100])
    @pytest.mark.parametrize("num_splits", [1, 2, 4, 6])
    def test_split_covers_records_in_order(self, tmp_path, n, records_per_shard, num_splits):
        """Property: splits are contiguous, ordered and shard-size independent."""
        records = _records(n)
        dataset = FileDataset.write(
            records,
            directory=str(tmp_path),
            name="split",
            records_per_shard=records_per_shard,
        )
        splits = dataset.split(num_splits)
        assert [len(split) for split in splits] == plan_split_sizes(n, num_splits)
        recovered = [record for split in splits for record in split]
        assert recovered == records
        # Splits match the memory-mode boundaries exactly.
        assert [list(split) for split in splits] == MemoryDataset(records).split(num_splits)

    def test_splits_are_cheap_to_pickle(self, tmp_path):
        records = _records(1000)
        dataset = FileDataset.write(records, directory=str(tmp_path), name="pkl")
        split = dataset.split(2)[0]
        payload = pickle.dumps(split)
        # A split carries shard paths and offsets, not the records.
        assert len(payload) < 2000
        assert list(pickle.loads(payload)) == records[:500]

    def test_release_deletes_shards(self, tmp_path):
        dataset = FileDataset.write(_records(5), directory=str(tmp_path), name="rel")
        paths = [shard.path for shard in dataset.shards]
        assert all(os.path.exists(path) for path in paths)
        dataset.release()
        assert dataset.released
        assert not any(os.path.exists(path) for path in paths)
        with pytest.raises(DatasetError):
            dataset.num_records

    def test_shared_shards_release_is_idempotent(self, tmp_path):
        dataset = FileDataset.write(_records(5), directory=str(tmp_path), name="dup")
        view = FileDataset(dataset.shards)
        dataset.release()
        view.release()  # same files already gone; must not raise
        assert view.released


class TestShardSink:
    def test_sink_writes_one_shard(self, tmp_path):
        path = str(tmp_path / "part-0.shard")
        sink = ShardSink(path)
        sink.begin()
        records = _records(4)
        for key, value in records:
            sink.append(key, value)
        shards = sink.finish()
        assert len(shards) == 1 and isinstance(shards[0], Shard)
        assert sink.num_records == shards[0].num_records == 4
        assert list(shards[0].iter_records()) == records

    def test_sink_rolls_over_at_shard_bound(self, tmp_path):
        path = str(tmp_path / "part-2.shard")
        sink = ShardSink(path, records_per_shard=3)
        sink.begin()
        records = _records(8)
        for key, value in records:
            sink.append(key, value)
        shards = sink.finish()
        assert [shard.num_records for shard in shards] == [3, 3, 2]
        assert sink.num_records == 8
        dataset = FileDataset(shards)
        assert dataset.to_list() == records

    def test_sink_pickles_before_begin(self, tmp_path):
        sink = ShardSink(str(tmp_path / "part-1.shard"))
        clone = pickle.loads(pickle.dumps(sink))
        clone.begin()
        clone.append("k", 1)
        (shard,) = clone.finish()
        assert shard.num_records == 1

    def test_abort_removes_partial_shards(self, tmp_path):
        sink = ShardSink(str(tmp_path / "part-3.shard"), records_per_shard=2)
        sink.begin()
        for key, value in _records(5):
            sink.append(key, value)
        sink.abort()
        assert not any(name.startswith("part-3") for name in os.listdir(tmp_path))


class TestDatasetStorage:
    def test_allocates_unique_paths(self, tmp_path):
        storage = DatasetStorage(str(tmp_path))
        first = storage.allocate("job/part-0")
        second = storage.allocate("job/part-0")
        assert first != second
        assert os.path.isdir(storage.directory)
        assert os.sep not in os.path.basename(first)

    def test_cleanup_removes_directory(self, tmp_path):
        storage = DatasetStorage(str(tmp_path))
        directory = storage.directory
        open(os.path.join(directory, "leftover"), "w").close()
        storage.cleanup()
        assert not os.path.exists(directory)


class TestCollectionDataset:
    def test_collection_exposes_splittable_dataset(self, small_newswire):
        encoded = small_newswire.encode()
        dataset = encoded.dataset()
        assert isinstance(dataset, CollectionDataset)
        records = list(encoded.records())
        assert dataset.num_records == encoded.num_sentences == len(records)
        assert list(dataset) == records
        splits = dataset.split(4)
        assert [record for split in splits for record in split] == records
        assert [len(split) for split in splits] == plan_split_sizes(len(records), 4)

    def test_raw_collection_dataset(self, running_example):
        dataset = running_example.dataset()
        assert dataset.num_records == running_example.num_sentences
        assert list(dataset) == list(running_example.records())

    def test_collection_dataset_cannot_be_released(self, running_example):
        with pytest.raises(DatasetError):
            running_example.dataset().release()


class TestShardCodecs:
    """Compressed shard files: same records, same splits, smaller bytes."""

    def test_gzip_round_trip_and_split(self, tmp_path):
        records = _records(300)
        plain = FileDataset.write(
            iter(records), directory=str(tmp_path / "plain"), records_per_shard=64
        )
        packed = FileDataset.write(
            iter(records),
            directory=str(tmp_path / "gz"),
            records_per_shard=64,
            codec="gzip",
        )
        assert packed.to_list() == records
        assert [shard.codec for shard in packed.shards] == ["gzip"] * len(packed.shards)
        # Logical accounting is codec-independent...
        assert [shard.num_records for shard in packed.shards] == [
            shard.num_records for shard in plain.shards
        ]
        assert [shard.serialized_bytes for shard in packed.shards] == [
            shard.serialized_bytes for shard in plain.shards
        ]
        # ... and split planning too (record streams are byte-identical).
        plain_splits = plain.split(5)
        packed_splits = packed.split(5)
        assert [list(split) for split in packed_splits] == [
            list(split) for split in plain_splits
        ]
        assert all(split.codec == "gzip" for split in packed_splits)

    def test_gzip_splits_pickle_as_paths(self, tmp_path):
        records = _records(100)
        dataset = FileDataset.write(
            iter(records),
            directory=str(tmp_path / "gz"),
            records_per_shard=16,
            codec="gzip",
        )
        split = dataset.split(3)[1]
        clone = pickle.loads(pickle.dumps(split))
        assert list(clone) == list(split)

    def test_shard_sink_with_codec(self, tmp_path):
        records = _records(50)
        sink = ShardSink(str(tmp_path / "out.shard"), records_per_shard=20, codec="gzip")
        sink.begin()
        for key, value in records:
            sink.append(key, value)
        shards = sink.finish()
        assert all(shard.codec == "gzip" for shard in shards)
        assert [record for shard in shards for record in shard.iter_records()] == records

    def test_unknown_codec_rejected(self, tmp_path):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            FileDataset.write(
                iter(_records(3)), directory=str(tmp_path), codec="snappy"
            )
