"""Tests for partitioning, sorting and grouping of map output."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import MapReduceError
from repro.mapreduce.job import Partitioner, SortComparator
from repro.mapreduce.shuffle import (
    group_sorted_records,
    partition_records,
    shuffle,
    sort_partition,
)
from repro.ngrams.ordering import ReverseLexicographicOrder


class TestPartitionRecords:
    def test_all_records_kept(self):
        records = [((i,), i) for i in range(50)]
        partitions = partition_records(records, Partitioner(), 4)
        assert sum(len(partition) for partition in partitions) == 50

    def test_same_key_same_partition(self):
        records = [(("a",), 1), (("a",), 2), (("b",), 3)]
        partitions = partition_records(records, Partitioner(), 3)
        locations = {}
        for index, partition in enumerate(partitions):
            for key, _ in partition:
                locations.setdefault(key, set()).add(index)
        assert all(len(indexes) == 1 for indexes in locations.values())

    def test_invalid_partition_count(self):
        with pytest.raises(MapReduceError):
            partition_records([], Partitioner(), 0)

    def test_out_of_range_partitioner_detected(self):
        class Broken(Partitioner):
            def partition(self, key, num_partitions):
                return num_partitions  # off by one

        with pytest.raises(MapReduceError):
            partition_records([(("a",), 1)], Broken(), 2)

    def test_single_partition(self):
        records = [((i,), i) for i in range(10)]
        partitions = partition_records(records, Partitioner(), 1)
        assert len(partitions) == 1
        assert partitions[0] == records


class TestSortPartition:
    def test_natural_order(self):
        records = [((2,), "b"), ((1,), "a"), ((3,), "c")]
        ordered = sort_partition(records, SortComparator())
        assert [key for key, _ in ordered] == [(1,), (2,), (3,)]

    def test_stable_for_equal_keys(self):
        records = [((1,), "first"), ((1,), "second"), ((1,), "third")]
        ordered = sort_partition(records, SortComparator())
        assert [value for _, value in ordered] == ["first", "second", "third"]

    def test_custom_comparator(self):
        comparator = ReverseLexicographicOrder()
        records = [(("b",), 1), (("b", "a"), 2), (("b", "x"), 3)]
        ordered = sort_partition(records, comparator)
        assert [key for key, _ in ordered] == [("b", "x"), ("b", "a"), ("b",)]

    def test_fast_key_path_matches_comparator_path(self):
        comparator = ReverseLexicographicOrder()
        records = [((3, 1), "a"), ((3,), "b"), ((5,), "c"), ((3, 1, 2), "d")]
        fast = sort_partition(records, comparator)

        class NoFastPath(ReverseLexicographicOrder):
            def sort_key_function(self):
                return None

        slow = sort_partition(records, NoFastPath())
        assert [key for key, _ in fast] == [key for key, _ in slow]

    def test_fast_key_path_falls_back_on_strings(self):
        comparator = ReverseLexicographicOrder()
        records = [(("b",), 1), (("a",), 2)]
        ordered = sort_partition(records, comparator)
        assert [key for key, _ in ordered] == [("b",), ("a",)]


class TestGroupSortedRecords:
    def test_grouping(self):
        comparator = SortComparator()
        records = [(("a",), 1), (("a",), 2), (("b",), 3)]
        groups = list(group_sorted_records(records, comparator))
        assert groups == [(("a",), [1, 2]), (("b",), [3])]

    def test_empty(self):
        assert list(group_sorted_records([], SortComparator())) == []

    def test_single_group(self):
        records = [(("a",), i) for i in range(5)]
        groups = list(group_sorted_records(records, SortComparator()))
        assert len(groups) == 1
        assert groups[0][1] == list(range(5))

    def test_grouping_uses_comparator_equality(self):
        class FirstElementOnly(SortComparator):
            def compare(self, left, right):
                return (left[0] > right[0]) - (left[0] < right[0])

        records = [((1, "x"), "a"), ((1, "y"), "b"), ((2, "z"), "c")]
        groups = list(group_sorted_records(records, FirstElementOnly()))
        assert len(groups) == 2
        assert groups[0][1] == ["a", "b"]


class TestShuffle:
    @given(
        st.lists(
            st.tuples(
                st.tuples(st.integers(min_value=0, max_value=20)),
                st.integers(),
            ),
            max_size=100,
        ),
        st.integers(min_value=1, max_value=8),
    )
    def test_shuffle_preserves_records_and_sorts(self, records, num_partitions):
        partitions = shuffle(records, Partitioner(), SortComparator(), num_partitions)
        assert len(partitions) == num_partitions
        flattened = [record for partition in partitions for record in partition]
        assert sorted(flattened, key=repr) == sorted(records, key=repr)
        comparator = SortComparator()
        for partition in partitions:
            keys = [key for key, _ in partition]
            assert all(
                comparator.compare(keys[i], keys[i + 1]) <= 0 for i in range(len(keys) - 1)
            )
