"""Tests for tokenisation, sentence splitting, boilerplate removal and preprocessing."""

from repro.corpus.boilerplate import TextBlock, classify_blocks, extract_main_content
from repro.corpus.preprocess import collection_from_texts, document_from_text
from repro.corpus.sentences import split_sentences
from repro.corpus.tokenize import tokenize, tokenize_sentences


class TestTokenize:
    def test_basic_tokenisation(self):
        assert tokenize("Hello, World!") == ("hello", "world")

    def test_numbers_kept(self):
        assert tokenize("add 2 cups of flour") == ("add", "2", "cups", "of", "flour")

    def test_apostrophes(self):
        assert tokenize("don't stop") == ("don't", "stop")

    def test_case_preserved_when_requested(self):
        assert tokenize("Hello World", lowercase=False) == ("Hello", "World")

    def test_empty_string(self):
        assert tokenize("") == ()
        assert tokenize("   ...   ") == ()

    def test_tokenize_sentences_drops_empty(self):
        sentences = tokenize_sentences(["Hello!", "...", "Bye."])
        assert sentences == [("hello",), ("bye",)]


class TestSentenceSplitting:
    def test_simple_sentences(self):
        text = "This is one. This is two! Is this three?"
        assert split_sentences(text) == ["This is one.", "This is two!", "Is this three?"]

    def test_abbreviations_not_split(self):
        text = "Mr. Smith went to Washington. He met Dr. Jones."
        sentences = split_sentences(text)
        assert len(sentences) == 2
        assert sentences[0] == "Mr. Smith went to Washington."

    def test_initials_not_split(self):
        text = "J. Smith wrote the book. It sold well."
        assert len(split_sentences(text)) == 2

    def test_no_split_before_lowercase(self):
        text = "The price rose 3.5 percent. analysts were surprised by www.example.com pages."
        sentences = split_sentences(text)
        # Conservative splitter: never splits before a lower-case continuation.
        assert all(not sentence[0].islower() or sentence is sentences[0] for sentence in sentences)

    def test_empty_text(self):
        assert split_sentences("") == []
        assert split_sentences("   ") == []

    def test_text_without_terminal_punctuation(self):
        assert split_sentences("no punctuation here") == ["no punctuation here"]

    def test_decimal_numbers_not_split(self):
        text = "Growth was 3.5 percent. Inflation stayed low."
        assert len(split_sentences(text)) == 2


class TestBoilerplate:
    def test_classify_blocks_by_length_and_link_density(self):
        blocks = [
            TextBlock.from_text("Home About Contact", num_link_words=3),
            TextBlock.from_text(
                "This is the actual article content with plenty of words to be "
                "considered a proper paragraph of text."
            ),
            TextBlock.from_text("Copyright 2009 all rights reserved", num_link_words=0),
        ]
        flags = classify_blocks(blocks)
        assert flags[0] is False
        assert flags[1] is True

    def test_short_block_between_content_rescued(self):
        blocks = [
            TextBlock.from_text("word " * 20),
            TextBlock.from_text("short interlude"),
            TextBlock.from_text("word " * 20),
        ]
        flags = classify_blocks(blocks)
        assert flags == [True, True, True]

    def test_extract_main_content(self):
        blocks = [
            "Home | Products | Contact",
            "The quick brown fox jumps over the lazy dog and keeps running through the field for a while.",
            "Share on Facebook",
        ]
        kept = extract_main_content(blocks, link_word_counts=[5, 0, 3])
        assert len(kept) == 1
        assert kept[0].startswith("The quick brown fox")

    def test_empty_block_list(self):
        assert extract_main_content([]) == ()


class TestPreprocess:
    def test_document_from_text(self):
        text = "The cat sat on the mat. The dog barked loudly."
        document = document_from_text(7, text, timestamp=2001)
        assert document.doc_id == 7
        assert document.timestamp == 2001
        assert document.num_sentences == 2
        assert document.sentences[0] == ("the", "cat", "sat", "on", "the", "mat")

    def test_document_from_text_with_boilerplate_removal(self):
        text = (
            "Home About Contact Login\n\n"
            "This is the main article body which talks at length about something "
            "interesting that happened yesterday in the city.\n\n"
            "Copyright 2009"
        )
        document = document_from_text(0, text, remove_boilerplate=True)
        tokens = document.tokens
        assert "copyright" not in tokens
        assert "article" in tokens

    def test_collection_from_texts(self):
        collection = collection_from_texts(
            ["First document. Second sentence.", "Another document here."],
            timestamps=[1999, 2000],
        )
        assert len(collection) == 2
        assert collection.timestamps() == {0: 1999, 1: 2000}
        assert collection[0].num_sentences == 2
