"""Tests for the package's public API surface and example end-to-end paths."""

import subprocess
import sys

import pytest

import repro


class TestPublicExports:
    def test_version(self):
        assert repro.__version__
        major = int(repro.__version__.split(".")[0])
        assert major >= 1

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_top_level_count_ngrams(self):
        from repro import DocumentCollection, count_ngrams

        docs = DocumentCollection.from_token_lists([["a", "b", "a", "b"]])
        result = count_ngrams(docs, min_frequency=2, max_length=2)
        assert result.statistics.frequency(("a", "b")) == 2

    def test_generators_exported(self):
        collection = repro.NewswireCorpusGenerator(num_documents=3, seed=1).generate()
        assert len(collection) == 3
        collection = repro.WebCorpusGenerator(num_documents=3, seed=1).generate()
        assert len(collection) == 3

    def test_counter_classes_exported(self):
        from repro import (
            AprioriIndexCounter,
            AprioriScanCounter,
            NGramJobConfig,
            NaiveCounter,
            SuffixSigmaCounter,
        )

        config = NGramJobConfig(min_frequency=1, max_length=2)
        for counter_class in (
            NaiveCounter,
            AprioriScanCounter,
            AprioriIndexCounter,
            SuffixSigmaCounter,
        ):
            assert counter_class(config).name


class TestExampleScripts:
    @pytest.mark.parametrize("script", ["quickstart.py"])
    def test_example_runs(self, script):
        """The quickstart example must run end to end (the other examples use
        the same code paths with bigger corpora and are exercised by the
        library tests)."""
        result = subprocess.run(
            [sys.executable, f"examples/{script}"],
            capture_output=True,
            text=True,
            cwd="/root/repo",
            timeout=300,
            check=False,
        )
        if result.returncode != 0 and "ModuleNotFoundError" in result.stderr:
            pytest.skip("repro not importable in subprocess environment")
        assert result.returncode == 0, result.stderr
        assert "Running example from the paper" in result.stdout
        assert "SUFFIX-SIGMA" in result.stdout
