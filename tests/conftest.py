"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.corpus.collection import DocumentCollection
from repro.corpus.synthetic import NewswireCorpusGenerator, WebCorpusGenerator


@pytest.fixture
def running_example() -> DocumentCollection:
    """The three-document running example of Section III of the paper."""
    return DocumentCollection.from_token_lists(
        [
            "a x b x x".split(),
            "b a x b x".split(),
            "x b a x b".split(),
        ]
    )


#: Expected output of the running example for tau=3, sigma=3 (from the paper).
RUNNING_EXAMPLE_EXPECTED = {
    ("a",): 3,
    ("b",): 5,
    ("x",): 7,
    ("a", "x"): 3,
    ("x", "b"): 4,
    ("a", "x", "b"): 3,
}


@pytest.fixture
def running_example_expected() -> dict:
    return dict(RUNNING_EXAMPLE_EXPECTED)


@pytest.fixture(scope="session")
def small_newswire() -> DocumentCollection:
    """A small deterministic newswire corpus shared across tests."""
    return NewswireCorpusGenerator(num_documents=30, seed=123).generate()


@pytest.fixture(scope="session")
def small_web() -> DocumentCollection:
    """A small deterministic web corpus shared across tests."""
    return WebCorpusGenerator(num_documents=30, seed=321).generate()
