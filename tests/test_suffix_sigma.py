"""Tests for SUFFIX-σ (Algorithm 4), the paper's contribution."""


from repro.algorithms.aggregation import CountAggregation
from repro.algorithms.naive import NaiveCounter
from repro.algorithms.suffix_sigma import (
    FirstTermPartitioner,
    SuffixMapper,
    SuffixSigmaCounter,
    SuffixSigmaReducer,
)
from repro.config import NGramJobConfig
from repro.mapreduce.context import TaskContext
from repro.ngrams.reference import (
    reference_document_frequencies,
    reference_ngram_statistics,
)


class TestSuffixMapper:
    def test_emits_one_suffix_per_position(self):
        context = TaskContext()
        SuffixMapper(max_length=None).map(0, ("a", "b", "c"), context)
        assert [key for key, _ in context.output] == [("a", "b", "c"), ("b", "c"), ("c",)]

    def test_truncates_to_sigma(self):
        context = TaskContext()
        SuffixMapper(max_length=2).map(0, ("a", "b", "c"), context)
        assert [key for key, _ in context.output] == [("a", "b"), ("b", "c"), ("c",)]

    def test_value_is_document_id(self):
        context = TaskContext()
        SuffixMapper(max_length=None).map((9, 4), ("a",), context)
        assert context.output == [(("a",), 9)]

    def test_custom_value_function(self):
        context = TaskContext()
        SuffixMapper(max_length=None, value_function=lambda doc_id: (doc_id, 2001)).map(
            (9, 4), ("a",), context
        )
        assert context.output == [(("a",), (9, 2001))]


class TestFirstTermPartitioner:
    def test_same_first_term_same_partition(self):
        partitioner = FirstTermPartitioner()
        partitions = {
            partitioner.partition(key, 7)
            for key in [("x", "a"), ("x",), ("x", "b", "c"), ("x", "x", "x")]
        }
        assert len(partitions) == 1

    def test_empty_key_goes_to_partition_zero(self):
        assert FirstTermPartitioner().partition((), 5) == 0

    def test_in_range(self):
        partitioner = FirstTermPartitioner()
        for term in range(50):
            assert 0 <= partitioner.partition((term, 1, 2), 6) < 6


class TestSuffixSigmaReducer:
    """Replays the reducer trace of Section IV / Figure 1 of the paper."""

    #: Input of the reducer responsible for suffixes starting with 'b',
    #: already in reverse lexicographic order (term order: a < b < x).
    REDUCER_INPUT = [
        (("b", "x", "x"), [1]),
        (("b", "x"), [2]),
        (("b", "a", "x"), [2, 3]),
        (("b",), [3]),
    ]

    def _run_reducer(self, min_frequency):
        reducer = SuffixSigmaReducer(min_frequency, aggregation=CountAggregation())
        context = TaskContext()
        for key, values in self.REDUCER_INPUT:
            reducer.reduce(key, values, context)
        reducer.cleanup(context)
        return dict(context.output)

    def test_paper_example_tau3(self):
        # Only 'b' (cf 5) reaches tau=3 among n-grams starting with b.
        assert self._run_reducer(3) == {("b",): 5}

    def test_paper_example_tau1(self):
        output = self._run_reducer(1)
        assert output == {
            ("b", "x", "x"): 1,
            ("b", "x"): 2,
            ("b", "a", "x"): 2,
            ("b", "a"): 2,
            ("b",): 5,
        }

    def test_stack_state_after_third_suffix(self):
        """Figure 1: after processing 〈b a x〉 the stacks hold b/a/x with 2/0/2."""
        reducer = SuffixSigmaReducer(3, aggregation=CountAggregation())
        context = TaskContext()
        for key, values in self.REDUCER_INPUT[:3]:
            reducer.reduce(key, values, context)
        assert reducer._terms == ["b", "a", "x"]
        assert reducer._elements == [2, 0, 2]

    def test_emits_each_ngram_at_most_once(self):
        reducer = SuffixSigmaReducer(1, aggregation=CountAggregation())
        context = TaskContext()
        for key, values in self.REDUCER_INPUT:
            reducer.reduce(key, values, context)
        reducer.cleanup(context)
        keys = [key for key, _ in context.output]
        assert len(keys) == len(set(keys))

    def test_cleanup_flushes_everything(self):
        reducer = SuffixSigmaReducer(1, aggregation=CountAggregation())
        context = TaskContext()
        reducer.reduce(("b", "a"), [1, 2], context)
        assert context.output == []  # nothing emitted yet
        reducer.cleanup(context)
        assert dict(context.output) == {("b", "a"): 2, ("b",): 2}

    def test_empty_reducer_cleanup_is_safe(self):
        reducer = SuffixSigmaReducer(1, aggregation=CountAggregation())
        context = TaskContext()
        reducer.cleanup(context)
        assert context.output == []


class TestSuffixSigmaCounter:
    def test_running_example(self, running_example, running_example_expected):
        config = NGramJobConfig(min_frequency=3, max_length=3)
        result = SuffixSigmaCounter(config).run(running_example)
        assert result.statistics.as_dict() == running_example_expected
        assert result.num_jobs == 1
        assert result.algorithm == "SUFFIX-SIGMA"

    def test_single_job_regardless_of_sigma(self, small_newswire):
        for sigma in (2, 5, None):
            config = NGramJobConfig(min_frequency=5, max_length=sigma)
            result = SuffixSigmaCounter(config).run(small_newswire)
            assert result.num_jobs == 1

    def test_emits_one_record_per_term_occurrence(self, running_example):
        config = NGramJobConfig(min_frequency=3, max_length=3)
        result = SuffixSigmaCounter(config).run(running_example)
        assert result.map_output_records == running_example.num_token_occurrences

    def test_fewer_records_than_naive(self, small_newswire):
        config = NGramJobConfig(min_frequency=5, max_length=5)
        suffix_result = SuffixSigmaCounter(config).run(small_newswire)
        naive_result = NaiveCounter(config).run(small_newswire)
        assert suffix_result.statistics == naive_result.statistics
        assert suffix_result.map_output_records < naive_result.map_output_records

    def test_matches_reference_on_synthetic_corpus(self, small_newswire):
        config = NGramJobConfig(min_frequency=3, max_length=4)
        result = SuffixSigmaCounter(config).run(small_newswire)
        expected = reference_ngram_statistics(
            small_newswire.records(), min_frequency=3, max_length=4
        )
        assert result.statistics == expected

    def test_matches_reference_with_unbounded_sigma(self, small_web):
        config = NGramJobConfig(min_frequency=5, max_length=None)
        result = SuffixSigmaCounter(config).run(small_web)
        expected = reference_ngram_statistics(small_web.records(), min_frequency=5)
        assert result.statistics == expected

    def test_document_frequency_mode(self, running_example):
        config = NGramJobConfig(min_frequency=2, max_length=3, count_document_frequency=True)
        result = SuffixSigmaCounter(config).run(running_example)
        expected = reference_document_frequencies(
            running_example.records(), min_frequency=2, max_length=3
        )
        assert result.statistics == expected

    def test_with_document_splitting(self, small_newswire):
        config = NGramJobConfig(min_frequency=5, max_length=5, split_documents=True)
        result = SuffixSigmaCounter(config).run(small_newswire)
        expected = reference_ngram_statistics(
            small_newswire.records(), min_frequency=5, max_length=5
        )
        assert result.statistics == expected

    def test_works_with_single_reducer(self, running_example, running_example_expected):
        config = NGramJobConfig(min_frequency=3, max_length=3, num_reducers=1)
        result = SuffixSigmaCounter(config).run(running_example)
        assert result.statistics.as_dict() == running_example_expected

    def test_works_with_many_reducers(self, running_example, running_example_expected):
        config = NGramJobConfig(min_frequency=3, max_length=3, num_reducers=13)
        result = SuffixSigmaCounter(config).run(running_example)
        assert result.statistics.as_dict() == running_example_expected

    def test_encoded_collection(self, running_example, running_example_expected):
        encoded = running_example.encode()
        config = NGramJobConfig(min_frequency=3, max_length=3)
        result = SuffixSigmaCounter(config).run(encoded)
        assert result.statistics.decoded(encoded.vocabulary).as_dict() == running_example_expected

    def test_empty_collection(self):
        from repro.corpus.collection import DocumentCollection

        config = NGramJobConfig(min_frequency=1, max_length=3)
        result = SuffixSigmaCounter(config).run(DocumentCollection())
        assert len(result.statistics) == 0
