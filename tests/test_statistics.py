"""Tests for the n-gram statistics container."""

import pytest

from repro.corpus.vocabulary import Vocabulary
from repro.exceptions import ReproError
from repro.ngrams.statistics import NGramStatistics


class TestNGramStatistics:
    def test_add_accumulates(self):
        statistics = NGramStatistics()
        statistics.add(("a",), 2)
        statistics.add(("a",), 3)
        assert statistics.frequency(("a",)) == 5

    def test_set_overwrites(self):
        statistics = NGramStatistics()
        statistics.add(("a",), 2)
        statistics.set(("a",), 7)
        assert statistics[("a",)] == 7

    def test_empty_ngram_rejected(self):
        statistics = NGramStatistics()
        with pytest.raises(ReproError):
            statistics.add((), 1)
        with pytest.raises(ReproError):
            statistics.set([], 1)

    def test_negative_count_rejected(self):
        with pytest.raises(ReproError):
            NGramStatistics().add(("a",), -1)

    def test_frequency_of_missing_is_zero(self):
        assert NGramStatistics().frequency(("nope",)) == 0

    def test_getitem_missing_raises(self):
        with pytest.raises(KeyError):
            _ = NGramStatistics()[("nope",)]

    def test_contains_len_iter(self):
        statistics = NGramStatistics({("a",): 1, ("a", "b"): 2})
        assert ("a",) in statistics
        assert ("z",) not in statistics
        assert "not-a-tuple" not in statistics
        assert len(statistics) == 2
        assert set(statistics) == {("a",), ("a", "b")}

    def test_equality(self):
        left = NGramStatistics({("a",): 1})
        right = NGramStatistics({("a",): 1})
        assert left == right
        right.add(("a",), 1)
        assert left != right
        assert left != "something else"

    def test_from_pairs_accumulates(self):
        statistics = NGramStatistics.from_pairs([(("a",), 1), (("a",), 2), (("b",), 1)])
        assert statistics.as_dict() == {("a",): 3, ("b",): 1}

    def test_filtered_by_tau_and_sigma(self):
        statistics = NGramStatistics({("a",): 10, ("a", "b"): 5, ("a", "b", "c"): 10})
        filtered = statistics.filtered(min_frequency=6, max_length=2)
        assert filtered.as_dict() == {("a",): 10}

    def test_total_and_max_length(self):
        statistics = NGramStatistics({("a",): 3, ("a", "b", "c"): 2})
        assert statistics.total_frequency() == 5
        assert statistics.max_length() == 3
        assert NGramStatistics().max_length() == 0

    def test_by_length(self):
        statistics = NGramStatistics({("a",): 3, ("b",): 1, ("a", "b"): 2})
        assert statistics.by_length() == {1: 2, 2: 1}

    def test_top(self):
        statistics = NGramStatistics({("a",): 3, ("b",): 9, ("c", "d"): 9})
        assert statistics.top(1) == [(("b",), 9)]
        assert statistics.top(5, length=2) == [(("c", "d"), 9)]

    def test_bucket_histogram(self):
        statistics = NGramStatistics(
            {
                ("a",): 5,        # bucket (0, 0)
                ("b",): 50,       # bucket (0, 1)
                tuple("t" * 1 for _ in range(12)): 7,  # length 12 -> bucket (1, 0)
            }
        )
        histogram = statistics.bucket_histogram()
        assert histogram[(0, 0)] == 1
        assert histogram[(0, 1)] == 1
        assert histogram[(1, 0)] == 1

    def test_bucket_histogram_skips_zero_counts(self):
        statistics = NGramStatistics()
        statistics.set(("a",), 0)
        assert statistics.bucket_histogram() == {}

    def test_decoded(self):
        vocabulary = Vocabulary.from_term_frequencies({"x": 5, "b": 3})
        statistics = NGramStatistics({(0, 1): 4})
        decoded = statistics.decoded(vocabulary)
        assert decoded.as_dict() == {("x", "b"): 4}
