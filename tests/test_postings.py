"""Tests for positional posting lists (APRIORI-INDEX building block)."""

import pytest
from hypothesis import given, strategies as st

from repro.algorithms.postings import Posting, PostingList
from repro.exceptions import ReproError


class TestPosting:
    def test_frequency(self):
        posting = Posting(doc_id=1, seq_id=0, positions=(0, 4, 7))
        assert posting.frequency == 3

    def test_positions_must_increase(self):
        with pytest.raises(ReproError):
            Posting(doc_id=1, seq_id=0, positions=(3, 3))
        with pytest.raises(ReproError):
            Posting(doc_id=1, seq_id=0, positions=(5, 2))

    def test_serialized_size_positive_and_gap_encoded(self):
        small_gaps = Posting(doc_id=1, seq_id=0, positions=(1000, 1001, 1002))
        large_values = Posting(doc_id=1, seq_id=0, positions=(1000, 2000, 3000))
        assert small_gaps.serialized_size() < large_values.serialized_size()


class TestPostingList:
    def test_merges_same_sequence(self):
        posting_list = PostingList(
            [
                Posting(doc_id=1, seq_id=0, positions=(4,)),
                Posting(doc_id=1, seq_id=0, positions=(1,)),
            ]
        )
        assert len(posting_list) == 1
        assert posting_list.postings[0].positions == (1, 4)

    def test_collection_and_document_frequency(self):
        posting_list = PostingList(
            [
                Posting(doc_id=1, seq_id=0, positions=(0, 2)),
                Posting(doc_id=1, seq_id=1, positions=(3,)),
                Posting(doc_id=2, seq_id=2, positions=(5,)),
            ]
        )
        assert posting_list.collection_frequency == 4
        assert posting_list.document_frequency == 2
        assert posting_list.documents() == [1, 2]

    def test_equality(self):
        left = PostingList([Posting(1, 0, (0,))])
        right = PostingList([Posting(1, 0, (0,))])
        assert left == right
        assert left != PostingList([Posting(1, 0, (1,))])
        assert left != "other"

    def test_merge(self):
        left = PostingList([Posting(1, 0, (0,))])
        right = PostingList([Posting(2, 1, (3,))])
        merged = left.merge(right)
        assert merged.collection_frequency == 2
        assert merged.document_frequency == 2

    def test_join_adjacent_positions(self):
        # "a b" at positions 0 and 3; "b c" at positions 1 and 6.
        left = PostingList([Posting(1, 0, (0, 3))])
        right = PostingList([Posting(1, 0, (1, 6))])
        joined = left.join(right)
        # only position 0 is followed by position 1.
        assert joined.collection_frequency == 1
        assert joined.postings[0].positions == (0,)

    def test_join_requires_same_sequence(self):
        left = PostingList([Posting(1, 0, (0,))])
        right = PostingList([Posting(1, 1, (1,))])
        assert left.join(right).collection_frequency == 0

    def test_join_empty_result(self):
        left = PostingList([Posting(1, 0, (0,))])
        right = PostingList([Posting(2, 2, (1,))])
        assert len(left.join(right)) == 0

    def test_serialized_size(self):
        posting_list = PostingList([Posting(1, 0, (0, 2)), Posting(2, 1, (1,))])
        assert posting_list.serialized_size() > 0
        assert posting_list.serialized_size() >= sum(
            posting.serialized_size() for posting in posting_list
        )

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=3),
                st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=5),
            ),
            max_size=10,
        )
    )
    def test_construction_invariants(self, raw):
        postings = [
            Posting(doc_id=doc, seq_id=seq, positions=tuple(sorted(set(positions))))
            for doc, seq, positions in raw
        ]
        posting_list = PostingList(postings)
        # Sequences unique and sorted.
        keys = [(p.doc_id, p.seq_id) for p in posting_list]
        assert keys == sorted(keys)
        assert len(keys) == len(set(keys))
        # cf equals total distinct positions per sequence.
        expected_cf = len({(doc, seq, pos) for doc, seq, positions in raw for pos in positions})
        assert posting_list.collection_frequency == expected_cf

    def test_join_matches_bruteforce_on_example_sequence(self):
        # Sequence: a b a b a  -> "a b" at 0, 2; "b a" at 1, 3.
        ab = PostingList([Posting(0, 0, (0, 2))])
        ba = PostingList([Posting(0, 0, (1, 3))])
        aba = ab.join(ba)
        assert aba.postings[0].positions == (0, 2)
        bab = ba.join(ab)
        assert bab.postings[0].positions == (1,)  # "b a b" only at position 1
