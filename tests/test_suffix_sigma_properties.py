"""Property-based tests of the SUFFIX-σ reducer invariants.

Section IV states two invariants maintained between invocations of the
reduce function: (1) the terms stack and the counts stack always have the
same size, and (2) the partial sums of the counts stack from any depth to the
top equal the number of occurrences seen so far for the prefix ending at that
depth.  These tests feed the reducer arbitrary (correctly sorted) suffix
streams and check the invariants after every call, plus the end-to-end
guarantee that the reducer's output equals a brute-force prefix count.
"""

from __future__ import annotations

from collections import Counter
from functools import cmp_to_key
from typing import Dict, List, Tuple

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algorithms.aggregation import CountAggregation
from repro.algorithms.suffix_sigma import SuffixSigmaReducer
from repro.mapreduce.context import TaskContext
from repro.ngrams.ordering import reverse_lexicographic_compare
from repro.ngrams.sequence import is_prefix

# A reducer partition receives suffixes that all share the same first term;
# generate such streams directly.
suffix_strategy = st.lists(
    st.integers(min_value=0, max_value=4), min_size=0, max_size=5
).map(lambda tail: (7, *tail))

stream_strategy = st.dictionaries(
    suffix_strategy, st.integers(min_value=1, max_value=4), min_size=1, max_size=20
)

relaxed = settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])


def _sorted_groups(groups: Dict[Tuple, int]) -> List[Tuple[Tuple, List[int]]]:
    ordered = sorted(groups, key=cmp_to_key(reverse_lexicographic_compare))
    return [(suffix, [0] * count) for suffix, count in ((s, groups[s]) for s in ordered)]


def _expected_prefix_counts(groups: Dict[Tuple, int]) -> Counter:
    expected: Counter = Counter()
    for suffix, count in groups.items():
        for length in range(1, len(suffix) + 1):
            expected[suffix[:length]] += count
    return expected


class TestReducerInvariants:
    @relaxed
    @given(stream_strategy)
    def test_stacks_stay_synchronised(self, groups):
        reducer = SuffixSigmaReducer(1, aggregation=CountAggregation())
        context = TaskContext()
        for suffix, values in _sorted_groups(groups):
            reducer.reduce(suffix, values, context)
            # Invariant 1: both stacks always have the same size.
            assert len(reducer._terms) == len(reducer._elements)
            # The stack content is always a prefix of the current suffix.
            assert is_prefix(tuple(reducer._terms), suffix)
        reducer.cleanup(context)
        assert reducer._terms == []
        assert reducer._elements == []

    @relaxed
    @given(stream_strategy)
    def test_suffix_sums_equal_occurrences_seen_so_far(self, groups):
        """Invariant 2: sum(counts[i:]) equals the occurrences of the prefix
        terms[0..i] accumulated from the groups processed so far."""
        reducer = SuffixSigmaReducer(1, aggregation=CountAggregation())
        context = TaskContext()
        seen: Counter = Counter()
        for suffix, values in _sorted_groups(groups):
            reducer.reduce(suffix, values, context)
            for length in range(1, len(suffix) + 1):
                seen[suffix[:length]] += len(values)
            # Prefixes still on the stack have never been emitted (that is the
            # point of the reverse lexicographic order), so the stacked partial
            # sums must equal everything seen for them so far.
            for depth in range(len(reducer._terms)):
                prefix = tuple(reducer._terms[: depth + 1])
                stacked = sum(reducer._elements[depth:])
                assert stacked == seen[prefix]

    @relaxed
    @given(stream_strategy, st.integers(min_value=1, max_value=6))
    def test_output_matches_bruteforce_prefix_counts(self, groups, tau):
        reducer = SuffixSigmaReducer(tau, aggregation=CountAggregation())
        context = TaskContext()
        for suffix, values in _sorted_groups(groups):
            reducer.reduce(suffix, values, context)
        reducer.cleanup(context)
        output = dict(context.output)
        expected = {
            ngram: count
            for ngram, count in _expected_prefix_counts(groups).items()
            if count >= tau
        }
        assert output == expected

    @relaxed
    @given(stream_strategy)
    def test_each_ngram_emitted_at_most_once(self, groups):
        reducer = SuffixSigmaReducer(1, aggregation=CountAggregation())
        context = TaskContext()
        for suffix, values in _sorted_groups(groups):
            reducer.reduce(suffix, values, context)
        reducer.cleanup(context)
        keys = [key for key, _ in context.output]
        assert len(keys) == len(set(keys))
