"""Cross-backend agreement: local, thread and process runners are equivalent.

The acceptance bar for an execution backend is byte-identical results: same
final statistics, same per-job output and partition output, and identical
counter totals, for every algorithm — on a seeded synthetic corpus large
enough to exercise multiple map tasks, reducers and (for APRIORI-SCAN)
multi-job pipelines.
"""

import pytest

from repro.algorithms import make_counter
from repro.config import ExecutionConfig, NGramJobConfig
from repro.mapreduce.counters import SHUFFLE_SPILLS, SPILLED_RECORDS

ALGORITHMS = ("NAIVE", "APRIORI-SCAN", "SUFFIX-SIGMA")

#: Execution configs under test; ``local`` is the sequential reference.
#: All runs retain every job's output (the default policy releases
#: intermediates) so multi-job pipelines can be compared job by job.
BACKENDS = {
    "local": ExecutionConfig(runner="local", retention="all"),
    "threads": ExecutionConfig(runner="threads", max_workers=3, retention="all"),
    "processes": ExecutionConfig(runner="processes", max_workers=2, retention="all"),
}


def _run(algorithm, execution, collection):
    config = NGramJobConfig(min_frequency=3, max_length=4)
    counter = make_counter(algorithm, config, execution=execution)
    return counter.run(collection)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_backends_agree(algorithm, small_newswire):
    reference = _run(algorithm, BACKENDS["local"], small_newswire)
    assert len(reference.statistics) > 0

    for name, execution in BACKENDS.items():
        if name == "local":
            continue
        result = _run(algorithm, execution, small_newswire)
        assert result.statistics.as_dict() == reference.statistics.as_dict(), name
        assert (
            result.pipeline.counters.as_dict() == reference.pipeline.counters.as_dict()
        ), name
        assert result.pipeline.num_jobs == reference.pipeline.num_jobs, name
        for job_result, reference_job in zip(
            result.pipeline.job_results, reference.pipeline.job_results
        ):
            assert job_result.job_name == reference_job.job_name
            assert job_result.output == reference_job.output, name
            assert job_result.partition_output == reference_job.partition_output, name


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_process_backend_with_spilling_matches_reference(algorithm, small_newswire):
    """A spill budget far below the shuffle volume changes nothing but counters."""
    reference = _run(algorithm, BACKENDS["local"], small_newswire)
    execution = ExecutionConfig(
        runner="processes", max_workers=2, spill_threshold_bytes=512, retention="all"
    )
    result = _run(algorithm, execution, small_newswire)
    assert result.statistics.as_dict() == reference.statistics.as_dict()
    for job_result, reference_job in zip(
        result.pipeline.job_results, reference.pipeline.job_results
    ):
        assert job_result.output == reference_job.output
        assert job_result.partition_output == reference_job.partition_output
    counters = result.pipeline.counters
    assert counters.get(SHUFFLE_SPILLS) >= 2
    assert counters.get(SPILLED_RECORDS) > 0
    assert counters.map_output_records == reference.pipeline.counters.map_output_records
    assert counters.map_output_bytes == reference.pipeline.counters.map_output_bytes
