"""Tests for the pluggable SUFFIX-σ aggregation strategies."""

from collections import Counter

from repro.algorithms.aggregation import (
    CountAggregation,
    DistinctDocumentAggregation,
    DocumentPostingAggregation,
    TimeSeriesAggregation,
)


class TestCountAggregation:
    def test_monoid_behaviour(self):
        aggregation = CountAggregation()
        assert aggregation.empty() == 0
        assert aggregation.from_values([1, 2, 2]) == 3
        assert aggregation.merge(2, 3) == 5
        assert aggregation.magnitude(7) == 7
        assert aggregation.output_value(7) == 7


class TestDistinctDocumentAggregation:
    def test_counts_distinct_documents(self):
        aggregation = DistinctDocumentAggregation()
        element = aggregation.from_values([1, 1, 2])
        assert aggregation.magnitude(element) == 2
        assert aggregation.output_value(element) == 2

    def test_merge_unions(self):
        aggregation = DistinctDocumentAggregation()
        merged = aggregation.merge({1, 2}, {2, 3})
        assert merged == {1, 2, 3}

    def test_merge_into_empty(self):
        aggregation = DistinctDocumentAggregation()
        merged = aggregation.merge(aggregation.empty(), {4})
        assert merged == {4}


class TestTimeSeriesAggregation:
    def test_from_values_counts_timestamps(self):
        aggregation = TimeSeriesAggregation()
        element = aggregation.from_values([(1, 1990), (2, 1990), (3, None)])
        total, observations = element
        assert total == 3
        assert observations == Counter({1990: 2})

    def test_merge_adds_totals_and_observations(self):
        aggregation = TimeSeriesAggregation()
        left = aggregation.from_values([(1, 1990)])
        right = aggregation.from_values([(2, 1991), (3, 1990)])
        total, observations = aggregation.merge(left, right)
        assert total == 3
        assert observations == Counter({1990: 2, 1991: 1})

    def test_magnitude_is_total_occurrences(self):
        aggregation = TimeSeriesAggregation()
        element = aggregation.from_values([(1, None), (2, None)])
        assert aggregation.magnitude(element) == 2

    def test_output_value(self):
        aggregation = TimeSeriesAggregation()
        element = aggregation.from_values([(1, 2000)])
        assert aggregation.output_value(element) == (1, {2000: 1})


class TestDocumentPostingAggregation:
    def test_counts_per_document(self):
        aggregation = DocumentPostingAggregation()
        element = aggregation.from_values([1, 1, 2])
        assert aggregation.magnitude(element) == 3
        assert aggregation.output_value(element) == {1: 2, 2: 1}

    def test_merge(self):
        aggregation = DocumentPostingAggregation()
        merged = aggregation.merge(Counter({1: 1}), Counter({1: 2, 3: 1}))
        assert merged == Counter({1: 3, 3: 1})

    def test_merge_into_empty(self):
        aggregation = DocumentPostingAggregation()
        merged = aggregation.merge(aggregation.empty(), Counter({5: 2}))
        assert merged == Counter({5: 2})
