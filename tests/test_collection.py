"""Tests for document collections (raw and encoded)."""

import pytest

from repro.corpus.collection import DocumentCollection, EncodedCollection, EncodedDocument
from repro.corpus.document import Document
from repro.corpus.vocabulary import Vocabulary
from repro.exceptions import CorpusError


class TestDocumentCollection:
    def test_from_token_lists(self):
        collection = DocumentCollection.from_token_lists([["a", "b"], ["c"]])
        assert len(collection) == 2
        assert collection[0].tokens == ("a", "b")
        assert collection[1].tokens == ("c",)

    def test_from_token_lists_with_timestamps(self):
        collection = DocumentCollection.from_token_lists([["a"], ["b"]], timestamps=[2000, 2001])
        assert collection.timestamps() == {0: 2000, 1: 2001}

    def test_timestamps_length_mismatch(self):
        with pytest.raises(CorpusError):
            DocumentCollection.from_token_lists([["a"]], timestamps=[1, 2])

    def test_duplicate_doc_id_rejected(self):
        collection = DocumentCollection()
        collection.add(Document.from_tokens(0, ["a"]))
        with pytest.raises(CorpusError):
            collection.add(Document.from_tokens(0, ["b"]))

    def test_records_one_per_sentence(self):
        collection = DocumentCollection(
            [Document.from_sentences(0, [["a", "b"], ["c"]]), Document.from_tokens(1, ["d"])]
        )
        records = list(collection.records())
        assert records == [(0, ("a", "b")), (0, ("c",)), (1, ("d",))]

    def test_counts(self, running_example):
        assert len(running_example) == 3
        assert running_example.num_token_occurrences == 15
        assert running_example.num_sentences == 3
        assert running_example.distinct_terms() == {"a", "b", "x"}

    def test_missing_doc_raises_keyerror(self, running_example):
        with pytest.raises(KeyError):
            _ = running_example[99]

    def test_sample_fraction_one_returns_all(self, small_newswire):
        sampled = small_newswire.sample(1.0)
        assert len(sampled) == len(small_newswire)

    def test_sample_deterministic(self, small_newswire):
        first = small_newswire.sample(0.5, seed=3)
        second = small_newswire.sample(0.5, seed=3)
        assert [d.doc_id for d in first] == [d.doc_id for d in second]

    def test_sample_rough_size(self, small_newswire):
        sampled = small_newswire.sample(0.5, seed=1)
        assert 0 < len(sampled) < len(small_newswire)

    def test_sample_invalid_fraction(self, small_newswire):
        with pytest.raises(CorpusError):
            small_newswire.sample(0.0)
        with pytest.raises(CorpusError):
            small_newswire.sample(1.5)


class TestEncoding:
    def test_encode_roundtrip_surface_forms(self, running_example):
        encoded = running_example.encode()
        assert len(encoded) == 3
        for document, encoded_document in zip(running_example, encoded):
            decoded = tuple(
                encoded.vocabulary.term(term_id)
                for sentence in encoded_document.sentences
                for term_id in sentence
            )
            assert decoded == document.tokens

    def test_term_ids_ordered_by_frequency(self, running_example):
        encoded = running_example.encode()
        vocabulary = encoded.vocabulary
        # x occurs 7 times, b 5 times, a 3 times.
        assert vocabulary.term_id("x") == 0
        assert vocabulary.term_id("b") == 1
        assert vocabulary.term_id("a") == 2

    def test_encode_with_existing_vocabulary(self, running_example):
        vocabulary = Vocabulary.from_collection(running_example)
        encoded = running_example.encode(vocabulary)
        assert encoded.vocabulary is vocabulary

    def test_encoded_records_and_counts(self, running_example):
        encoded = running_example.encode()
        assert encoded.num_token_occurrences == 15
        assert encoded.num_sentences == 3
        records = list(encoded.records())
        assert len(records) == 3
        assert all(isinstance(term, int) for _, seq in records for term in seq)

    def test_encoded_timestamps(self):
        collection = DocumentCollection.from_token_lists([["a"], ["b"]], timestamps=[1990, None])
        encoded = collection.encode()
        assert encoded.timestamps() == {0: 1990, 1: None}

    def test_decode_ngram(self, running_example):
        encoded = running_example.encode()
        ngram = (encoded.vocabulary.term_id("a"), encoded.vocabulary.term_id("x"))
        assert encoded.decode_ngram(ngram) == ("a", "x")

    def test_duplicate_encoded_doc_rejected(self):
        vocabulary = Vocabulary.from_term_frequencies({"a": 1})
        documents = [
            EncodedDocument(doc_id=0, sentences=((0,),)),
            EncodedDocument(doc_id=0, sentences=((0,),)),
        ]
        with pytest.raises(CorpusError):
            EncodedCollection(documents, vocabulary)

    def test_encoded_getitem(self, running_example):
        encoded = running_example.encode()
        assert encoded[1].doc_id == 1
        with pytest.raises(KeyError):
            _ = encoded[42]
