"""Tests for multi-job pipelines."""

from repro.mapreduce.counters import MAP_OUTPUT_RECORDS
from repro.mapreduce.job import JobSpec, Mapper, Reducer
from repro.mapreduce.pipeline import JobPipeline, PipelineResult


class _TokenMapper(Mapper):
    def map(self, key, value, context):
        for token in value:
            context.emit(token, 1)


class _SumReducer(Reducer):
    def reduce(self, key, values, context):
        context.emit(key, sum(values))


class _ThresholdReducer(Reducer):
    def __init__(self, threshold):
        self.threshold = threshold

    def reduce(self, key, values, context):
        total = sum(values)
        if total >= self.threshold:
            context.emit(key, total)


def _count_job(name="count") -> JobSpec:
    return JobSpec(name=name, mapper_factory=_TokenMapper, reducer_factory=_SumReducer)


INPUT = [(0, ("a", "b", "a")), (1, ("b", "c", "a"))]


class TestJobPipeline:
    def test_single_job(self):
        pipeline = JobPipeline()
        result = pipeline.run_job(_count_job(), INPUT)
        assert result.output_as_dict() == {"a": 3, "b": 2, "c": 1}
        assert pipeline.num_jobs == 1

    def test_chained_jobs_and_counter_aggregation(self):
        pipeline = JobPipeline()
        first = pipeline.run_job(_count_job("first"), INPUT)

        class _Identity(Mapper):
            def map(self, key, value, context):
                context.emit(key, value)

        second_job = JobSpec(
            name="filter",
            mapper_factory=_Identity,
            reducer_factory=lambda: _ThresholdReducer(2),
        )
        second = pipeline.run_job(second_job, first.output)
        assert second.output_as_dict() == {"a": 3, "b": 2}
        assert pipeline.num_jobs == 2
        total_records = pipeline.counters.get(MAP_OUTPUT_RECORDS)
        assert total_records == first.counters.get(MAP_OUTPUT_RECORDS) + second.counters.get(
            MAP_OUTPUT_RECORDS
        )

    def test_cache_shared_across_jobs(self):
        pipeline = JobPipeline()
        pipeline.cache.publish("threshold", 2)

        class _CacheReducer(Reducer):
            def setup(self, context):
                self.threshold = context.cache.get("threshold")

            def reduce(self, key, values, context):
                total = sum(values)
                if total >= self.threshold:
                    context.emit(key, total)

        job = JobSpec(name="cached", mapper_factory=_TokenMapper, reducer_factory=_CacheReducer)
        result = pipeline.run_job(job, INPUT)
        assert result.output_as_dict() == {"a": 3, "b": 2}

    def test_pipeline_result_properties(self):
        pipeline = JobPipeline()
        pipeline.run_job(_count_job("one"), INPUT)
        pipeline.run_job(_count_job("two"), INPUT)
        result = pipeline.result
        assert isinstance(result, PipelineResult)
        assert result.num_jobs == 2
        assert len(result.job_metrics) == 2
        assert result.elapsed_seconds >= 0
        assert result.final_output  # output of the last job

    def test_empty_pipeline(self):
        result = PipelineResult()
        assert result.num_jobs == 0
        assert result.final_output == []
        assert result.counters.map_output_records == 0


class TestJobMetricsPublication:
    def test_completed_jobs_land_in_metrics_registry(self):
        from repro.mapreduce.metrics import publish_job_metrics
        from repro.util.metrics import MetricsRegistry

        pipeline = JobPipeline()
        result = pipeline.run_job(_count_job("observed"), INPUT)

        registry = MetricsRegistry()
        publish_job_metrics(result, registry)
        jobs = registry.get("mapreduce_jobs_total")
        assert jobs.value(job="observed") == 1
        counters = registry.get("mapreduce_counters_total")
        assert counters.value(
            group="task", counter=MAP_OUTPUT_RECORDS
        ) == result.counters.get(MAP_OUTPUT_RECORDS)
        assert registry.get("mapreduce_job_seconds").count() == 1

    def test_pipeline_publishes_to_default_registry(self):
        from repro.util.metrics import default_registry

        jobs = default_registry().counter(
            "mapreduce_jobs_total", "MapReduce jobs completed, by job name",
            labels=("job",),
        )
        before = jobs.value(job="auto-published")
        JobPipeline().run_job(_count_job("auto-published"), INPUT)
        assert jobs.value(job="auto-published") == before + 1
