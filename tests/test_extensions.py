"""Tests for the SUFFIX-σ extensions (Section VI)."""

import pytest

from repro.algorithms.extensions import (
    ClosedNGramCounter,
    MaximalNGramCounter,
    SuffixSigmaIndexCounter,
    SuffixSigmaTimeSeriesCounter,
    document_frequencies,
)
from repro.algorithms.suffix_sigma import PrefixEmissionFilter
from repro.config import NGramJobConfig
from repro.corpus.collection import DocumentCollection
from repro.ngrams.reference import (
    reference_closed,
    reference_document_frequencies,
    reference_maximal,
    reference_ngram_statistics,
    reference_time_series,
)
from repro.ngrams.sequence import count_occurrences


class TestPrefixEmissionFilter:
    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            PrefixEmissionFilter("bogus")

    def test_maximal_suppresses_prefixes(self):
        emission_filter = PrefixEmissionFilter(PrefixEmissionFilter.MAXIMAL)
        assert emission_filter.should_emit(("a", "x", "b"), 3)
        assert not emission_filter.should_emit(("a", "x"), 3)
        assert not emission_filter.should_emit(("a",), 5)

    def test_closed_keeps_prefix_with_different_count(self):
        emission_filter = PrefixEmissionFilter(PrefixEmissionFilter.CLOSED)
        assert emission_filter.should_emit(("a", "x", "b"), 3)
        assert not emission_filter.should_emit(("a", "x"), 3)  # same cf
        # 'a' has a different cf and therefore stays.
        assert emission_filter.should_emit(("a",), 5)

    def test_non_prefix_always_emitted(self):
        emission_filter = PrefixEmissionFilter(PrefixEmissionFilter.MAXIMAL)
        assert emission_filter.should_emit(("x", "b"), 4)
        assert emission_filter.should_emit(("x", "a"), 4)


class TestMaximalClosed:
    def test_running_example_maximal(self, running_example):
        config = NGramJobConfig(min_frequency=3, max_length=3)
        result = MaximalNGramCounter(config).run(running_example)
        # The paper: for maximality only 〈a x b〉 remains.
        assert result.statistics.as_dict() == {("a", "x", "b"): 3}
        assert result.num_jobs == 2  # suffix-sigma job + post-filter job

    def test_running_example_closed(self, running_example):
        config = NGramJobConfig(min_frequency=3, max_length=3)
        result = ClosedNGramCounter(config).run(running_example)
        assert result.statistics.as_dict() == {
            ("a", "x", "b"): 3,
            ("x", "b"): 4,
            ("b",): 5,
            ("x",): 7,
        }

    def test_maximal_matches_reference_on_synthetic_corpus(self, small_newswire):
        config = NGramJobConfig(min_frequency=3, max_length=4)
        result = MaximalNGramCounter(config).run(small_newswire)
        frequent = reference_ngram_statistics(
            small_newswire.records(), min_frequency=3, max_length=4
        )
        assert result.statistics == reference_maximal(frequent)

    def test_closed_matches_reference_on_synthetic_corpus(self, small_newswire):
        config = NGramJobConfig(min_frequency=3, max_length=4)
        result = ClosedNGramCounter(config).run(small_newswire)
        frequent = reference_ngram_statistics(
            small_newswire.records(), min_frequency=3, max_length=4
        )
        assert result.statistics == reference_closed(frequent)

    def test_maximal_subset_of_closed_subset_of_all(self, small_web):
        config = NGramJobConfig(min_frequency=4, max_length=4)
        from repro.algorithms.suffix_sigma import SuffixSigmaCounter

        all_ngrams = SuffixSigmaCounter(config).run(small_web).statistics
        closed = ClosedNGramCounter(config).run(small_web).statistics
        maximal = MaximalNGramCounter(config).run(small_web).statistics
        assert set(maximal) <= set(closed) <= set(all_ngrams)

    def test_closed_frequencies_are_exact(self, small_newswire):
        """Closed n-grams keep their exact collection frequency."""
        config = NGramJobConfig(min_frequency=3, max_length=3)
        closed = ClosedNGramCounter(config).run(small_newswire).statistics
        full = reference_ngram_statistics(
            small_newswire.records(), min_frequency=3, max_length=3
        )
        for ngram, frequency in closed.items():
            assert frequency == full.frequency(ngram)


class TestTimeSeries:
    def test_matches_reference(self):
        collection = DocumentCollection.from_token_lists(
            [
                "a x b x x".split(),
                "b a x b x".split(),
                "x b a x b".split(),
            ],
            timestamps=[1990, 1990, 1995],
        )
        config = NGramJobConfig(min_frequency=3, max_length=3)
        counter = SuffixSigmaTimeSeriesCounter(config)
        result = counter.run(collection)

        expected = reference_time_series(
            collection.records(), collection.timestamps(), min_frequency=3, max_length=3
        )
        assert set(counter.time_series.as_dict()) == set(expected)
        for ngram, series in expected.items():
            assert counter.time_series.series(ngram).as_dict() == series

        # Statistics carry the total collection frequencies.
        assert result.statistics.frequency(("x",)) == 7

    def test_documents_without_timestamps(self):
        collection = DocumentCollection.from_token_lists(
            [["a", "a"], ["a"]], timestamps=[2000, None]
        )
        config = NGramJobConfig(min_frequency=3, max_length=1)
        counter = SuffixSigmaTimeSeriesCounter(config)
        result = counter.run(collection)
        assert result.statistics.frequency(("a",)) == 3
        assert counter.time_series.series(("a",)).as_dict() == {2000: 2}

    def test_synthetic_corpus_totals(self, small_newswire):
        config = NGramJobConfig(min_frequency=5, max_length=2)
        counter = SuffixSigmaTimeSeriesCounter(config)
        result = counter.run(small_newswire)
        expected = reference_ngram_statistics(
            small_newswire.records(), min_frequency=5, max_length=2
        )
        assert result.statistics == expected
        # Each series sums to at most the total (documents lacking timestamps
        # would account for the difference; here all documents have one).
        for ngram, frequency in result.statistics.items():
            assert counter.time_series.series(ngram).total == frequency


class TestInvertedIndex:
    def test_per_document_counts(self, running_example):
        config = NGramJobConfig(min_frequency=3, max_length=3)
        counter = SuffixSigmaIndexCounter(config)
        result = counter.run(running_example)
        assert result.statistics.frequency(("x",)) == 7
        assert counter.document_postings[("x",)] == {0: 3, 1: 2, 2: 2}
        assert counter.document_postings[("a", "x", "b")] == {0: 1, 1: 1, 2: 1}

    def test_postings_match_bruteforce(self, small_newswire):
        config = NGramJobConfig(min_frequency=5, max_length=2)
        counter = SuffixSigmaIndexCounter(config)
        counter.run(small_newswire)
        documents = {doc.doc_id: doc for doc in small_newswire}
        for ngram, postings in list(counter.document_postings.items())[:50]:
            for doc_id, count in postings.items():
                expected = sum(
                    count_occurrences(ngram, sentence)
                    for sentence in documents[doc_id].sentences
                )
                assert count == expected


class TestDocumentFrequencies:
    def test_facade_matches_reference(self, running_example):
        result = document_frequencies(running_example, min_frequency=2, max_length=3)
        expected = reference_document_frequencies(
            running_example.records(), min_frequency=2, max_length=3
        )
        assert result.statistics == expected

    def test_facade_with_other_algorithm(self, running_example):
        result = document_frequencies(
            running_example, min_frequency=2, max_length=2, algorithm="NAIVE"
        )
        expected = reference_document_frequencies(
            running_example.records(), min_frequency=2, max_length=2
        )
        assert result.statistics == expected
