"""Tests for documents."""

import pytest

from repro.corpus.document import Document
from repro.exceptions import CorpusError


class TestDocument:
    def test_from_tokens_single_sentence(self):
        document = Document.from_tokens(3, ["a", "b", "c"], timestamp=1999)
        assert document.doc_id == 3
        assert document.sentences == (("a", "b", "c"),)
        assert document.timestamp == 1999
        assert document.num_tokens == 3
        assert document.num_sentences == 1

    def test_from_sentences(self):
        document = Document.from_sentences(0, [["a", "b"], ["c"]])
        assert document.sentences == (("a", "b"), ("c",))
        assert document.num_tokens == 3
        assert document.num_sentences == 2

    def test_tokens_flattens_sentences(self):
        document = Document.from_sentences(0, [["a", "b"], ["c"]])
        assert document.tokens == ("a", "b", "c")

    def test_negative_doc_id_rejected(self):
        with pytest.raises(CorpusError):
            Document.from_tokens(-1, ["a"])

    def test_metadata_kwargs(self):
        document = Document.from_tokens(1, ["a"], source="nyt", title="hello")
        assert document.metadata == {"source": "nyt", "title": "hello"}

    def test_iter_sentences(self):
        document = Document.from_sentences(0, [["a"], ["b"]])
        assert list(document.iter_sentences()) == [("a",), ("b",)]

    def test_empty_document(self):
        document = Document(doc_id=0, sentences=())
        assert document.num_tokens == 0
        assert document.tokens == ()

    def test_immutable(self):
        document = Document.from_tokens(0, ["a"])
        with pytest.raises(Exception):
            document.doc_id = 5  # type: ignore[misc]
