"""Tests for request tracing: IDs, stage timing, and the slow-query log."""

import io
import json
import time

import pytest

from repro.util.tracing import (
    TRACE_FIELD,
    SlowQueryLog,
    TraceContext,
    attach_trace,
    new_trace_id,
    trace_id_of,
)


class TestTraceIds:
    def test_new_ids_are_hex_and_distinct(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        for trace_id in ids:
            assert len(trace_id) == 16
            int(trace_id, 16)

    def test_attach_trace_mints_and_stamps(self):
        request = {"op": "get", "key": [1]}
        trace_id = attach_trace(request)
        assert request[TRACE_FIELD] == {"id": trace_id}
        assert trace_id_of(request) == trace_id

    def test_attach_trace_respects_existing_id(self):
        """A router forwarding a traced request must not re-mint the ID —
        that is what makes one request traceable across tiers."""
        request = {"op": "get", TRACE_FIELD: {"id": "deadbeefdeadbeef"}}
        assert attach_trace(request) == "deadbeefdeadbeef"
        assert request[TRACE_FIELD] == {"id": "deadbeefdeadbeef"}

    @pytest.mark.parametrize(
        "malformed", [None, "bare-string", {"id": ""}, {"id": 7}, ["id"], {}]
    )
    def test_malformed_trace_yields_none(self, malformed):
        assert trace_id_of({"op": "get", TRACE_FIELD: malformed}) is None

    def test_trace_id_of_untraced_request(self):
        assert trace_id_of({"op": "get"}) is None
        assert trace_id_of("not a dict") is None


class TestTraceContext:
    def test_from_request_adopts_wire_id(self):
        trace = TraceContext.from_request({"op": "get", TRACE_FIELD: {"id": "ab" * 8}})
        assert trace.trace_id == "ab" * 8

    def test_from_request_mints_for_untraced(self):
        trace = TraceContext.from_request({"op": "get"})
        assert len(trace.trace_id) == 16

    def test_stage_accumulates_and_sums_repeats(self):
        trace = TraceContext.from_request({})
        with trace.stage("read"):
            time.sleep(0.002)
        with trace.stage("read"):
            time.sleep(0.002)
        with trace.stage("route"):
            pass
        assert set(trace.stages) == {"read", "route"}
        assert trace.stages["read"] >= 0.003
        stages_ms = trace.stages_ms()
        assert stages_ms["read"] == pytest.approx(trace.stages["read"] * 1e3, rel=0.01)


class TestSlowQueryLog:
    def test_threshold_filters_entries(self):
        log = SlowQueryLog(5.0)
        assert log.should_log(0.006)
        assert not log.should_log(0.004)

    def test_zero_threshold_logs_everything(self):
        assert SlowQueryLog(0.0).should_log(0.0)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            SlowQueryLog(-1.0)

    def test_records_json_lines_to_stream(self):
        stream = io.StringIO()
        log = SlowQueryLog(0.0, stream=stream)
        log.record({"trace_id": "x" * 16, "op": "get", "duration_ms": 12.5})
        log.record({"trace_id": "y" * 16, "op": "prefix", "duration_ms": 80.0})
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert [entry["op"] for entry in lines] == ["get", "prefix"]
        assert all("ts" in entry for entry in lines)
        assert log.entries[0]["trace_id"] == "x" * 16

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "slow.jsonl"
        with SlowQueryLog(0.0, str(path)) as log:
            log.record({"op": "get", "duration_ms": 1.0})
        entries = [
            json.loads(line) for line in path.read_text().splitlines() if line
        ]
        assert entries[0]["op"] == "get"

    def test_appends_across_reopen(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        with SlowQueryLog(0.0, str(path)) as log:
            log.record({"op": "get"})
        with SlowQueryLog(0.0, str(path)) as log:
            log.record({"op": "prefix"})
        assert len(path.read_text().splitlines()) == 2
