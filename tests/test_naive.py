"""Tests for the NAIVE counting algorithm (Algorithm 1)."""


from repro.algorithms.naive import NaiveCounter, NaiveMapper
from repro.config import NGramJobConfig
from repro.mapreduce.context import TaskContext
from repro.ngrams.reference import (
    reference_document_frequencies,
    reference_ngram_statistics,
)


class TestNaiveMapper:
    def test_emits_all_ngrams_up_to_sigma(self):
        context = TaskContext()
        NaiveMapper(max_length=2, emit_partial_counts=False).map(0, ("a", "b", "c"), context)
        emitted = [key for key, _ in context.output]
        assert sorted(emitted) == sorted([("a",), ("b",), ("c",), ("a", "b"), ("b", "c")])

    def test_emits_document_id_values(self):
        context = TaskContext()
        NaiveMapper(max_length=1, emit_partial_counts=False).map((7, 0), ("a",), context)
        assert context.output == [(("a",), 7)]

    def test_emit_partial_counts(self):
        context = TaskContext()
        NaiveMapper(max_length=1, emit_partial_counts=True).map(3, ("a", "a"), context)
        assert context.output == [(("a",), 1), (("a",), 1)]

    def test_unbounded_sigma(self):
        context = TaskContext()
        NaiveMapper(max_length=None, emit_partial_counts=True).map(0, ("a", "b", "c"), context)
        assert len(context.output) == 6  # 3 + 2 + 1


class TestNaiveCounter:
    def test_running_example(self, running_example, running_example_expected):
        config = NGramJobConfig(min_frequency=3, max_length=3)
        result = NaiveCounter(config).run(running_example)
        assert result.statistics.as_dict() == running_example_expected
        assert result.num_jobs == 1
        assert result.algorithm == "NAIVE"

    def test_without_combiner(self, running_example, running_example_expected):
        config = NGramJobConfig(min_frequency=3, max_length=3, use_combiner=False)
        result = NaiveCounter(config).run(running_example)
        assert result.statistics.as_dict() == running_example_expected

    def test_matches_reference_on_synthetic_corpus(self, small_newswire):
        config = NGramJobConfig(min_frequency=3, max_length=3)
        result = NaiveCounter(config).run(small_newswire)
        expected = reference_ngram_statistics(
            small_newswire.records(), min_frequency=3, max_length=3
        )
        assert result.statistics == expected

    def test_document_frequency_mode(self, running_example):
        config = NGramJobConfig(min_frequency=2, max_length=2, count_document_frequency=True)
        result = NaiveCounter(config).run(running_example)
        expected = reference_document_frequencies(
            running_example.records(), min_frequency=2, max_length=2
        )
        assert result.statistics == expected

    def test_unbounded_sigma(self, running_example):
        config = NGramJobConfig(min_frequency=2, max_length=None)
        result = NaiveCounter(config).run(running_example)
        expected = reference_ngram_statistics(running_example.records(), min_frequency=2)
        assert result.statistics == expected

    def test_with_document_splitting(self, small_newswire):
        config = NGramJobConfig(min_frequency=4, max_length=3, split_documents=True)
        result = NaiveCounter(config).run(small_newswire)
        expected = reference_ngram_statistics(
            small_newswire.records(), min_frequency=4, max_length=3
        )
        assert result.statistics == expected

    def test_record_count_formula(self, running_example):
        """NAIVE emits sum over documents of the number of contained n-grams."""
        config = NGramJobConfig(min_frequency=1, max_length=3)
        result = NaiveCounter(config).run(running_example)
        # Each document has 5 terms: 5 + 4 + 3 = 12 n-grams of length <= 3.
        assert result.map_output_records == 3 * 12

    def test_works_on_encoded_collection(self, running_example, running_example_expected):
        encoded = running_example.encode()
        config = NGramJobConfig(min_frequency=3, max_length=3)
        result = NaiveCounter(config).run(encoded)
        decoded = result.statistics.decoded(encoded.vocabulary)
        assert decoded.as_dict() == running_example_expected

    def test_tau_one_keeps_everything(self, running_example):
        config = NGramJobConfig(min_frequency=1, max_length=2)
        result = NaiveCounter(config).run(running_example)
        expected = reference_ngram_statistics(running_example.records(), max_length=2)
        assert result.statistics == expected

    def test_high_tau_empty_result(self, running_example):
        config = NGramJobConfig(min_frequency=100, max_length=3)
        result = NaiveCounter(config).run(running_example)
        assert len(result.statistics) == 0
