"""Cross-backend × cross-materialization agreement, and retention semantics.

The acceptance bar for the dataset layer is that materialisation is
*byte-transparent*: every runner (local, threads, processes) in every
materialisation mode (memory, disk) produces the same final statistics,
the same per-job outputs and partition outputs, and identical counter
totals.  Disk mode must additionally put job outputs on disk (as shards)
and, under the default retention policy, drop intermediate outputs of
chained pipelines once they have been consumed.
"""

import os

import pytest

from repro.algorithms import make_counter
from repro.config import ExecutionConfig, NGramJobConfig
from repro.exceptions import DatasetError
from repro.mapreduce.dataset import FileDataset, MemoryDataset

ALGORITHMS = ("NAIVE", "APRIORI-SCAN", "SUFFIX-SIGMA")

#: runner × materialisation matrix; every cell must be byte-identical to the
#: sequential in-memory reference.  Retention "all" keeps intermediates so
#: multi-job pipelines can be compared job by job.
MATRIX = {
    ("local", "memory"): ExecutionConfig(runner="local", retention="all"),
    ("local", "disk"): ExecutionConfig(runner="local", materialize="disk", retention="all"),
    ("threads", "memory"): ExecutionConfig(runner="threads", max_workers=3, retention="all"),
    ("threads", "disk"): ExecutionConfig(
        runner="threads", max_workers=3, materialize="disk", retention="all"
    ),
    ("processes", "memory"): ExecutionConfig(runner="processes", max_workers=2, retention="all"),
    ("processes", "disk"): ExecutionConfig(
        runner="processes", max_workers=2, materialize="disk", retention="all"
    ),
}


def _run(algorithm, execution, collection):
    config = NGramJobConfig(min_frequency=3, max_length=4)
    counter = make_counter(algorithm, config, execution=execution)
    return counter.run(collection)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_materialization_modes_agree_across_backends(algorithm, small_newswire):
    reference = _run(algorithm, MATRIX[("local", "memory")], small_newswire)
    assert len(reference.statistics) > 0

    for (runner_name, mode), execution in MATRIX.items():
        if (runner_name, mode) == ("local", "memory"):
            continue
        result = _run(algorithm, execution, small_newswire)
        label = f"{runner_name}/{mode}"
        assert result.statistics.as_dict() == reference.statistics.as_dict(), label
        assert (
            result.pipeline.counters.as_dict() == reference.pipeline.counters.as_dict()
        ), label
        assert result.pipeline.num_jobs == reference.pipeline.num_jobs, label
        for job_result, reference_job in zip(
            result.pipeline.job_results, reference.pipeline.job_results
        ):
            assert job_result.job_name == reference_job.job_name
            assert job_result.output == reference_job.output, label
            assert job_result.partition_output == reference_job.partition_output, label


@pytest.mark.parametrize("algorithm", ("APRIORI-SCAN", "SUFFIX-SIGMA"))
def test_disk_mode_with_spilling_matches_reference(algorithm, small_newswire):
    """Disk materialisation composes with the out-of-core shuffle."""
    reference = _run(algorithm, MATRIX[("local", "memory")], small_newswire)
    execution = ExecutionConfig(
        runner="processes",
        max_workers=2,
        materialize="disk",
        spill_threshold_bytes=512,
        retention="all",
    )
    result = _run(algorithm, execution, small_newswire)
    assert result.statistics.as_dict() == reference.statistics.as_dict()
    for job_result, reference_job in zip(
        result.pipeline.job_results, reference.pipeline.job_results
    ):
        assert job_result.output == reference_job.output
    counters = result.pipeline.counters
    assert counters.map_output_records == reference.pipeline.counters.map_output_records
    assert counters.map_output_bytes == reference.pipeline.counters.map_output_bytes


def test_disk_mode_outputs_are_file_datasets(small_newswire):
    execution = ExecutionConfig(materialize="disk", retention="all")
    result = _run("SUFFIX-SIGMA", execution, small_newswire)
    job = result.pipeline.job_results[-1]
    assert isinstance(job.output_dataset, FileDataset)
    for shard in job.output_dataset.shards:
        assert os.path.exists(shard.path)
    # Streaming access and materialised access see the same records.
    assert list(job.iter_output()) == job.output


def test_memory_mode_outputs_are_memory_datasets(small_newswire):
    result = _run("SUFFIX-SIGMA", None, small_newswire)
    job = result.pipeline.job_results[-1]
    assert isinstance(job.output_dataset, MemoryDataset)


class TestChainedPipelineRetention:
    """Default policy: only the final job's output survives the pipeline."""

    @pytest.mark.parametrize("mode", ("memory", "disk"))
    def test_intermediate_outputs_not_retained(self, mode, small_newswire):
        execution = ExecutionConfig(materialize=mode)  # retention defaults to final
        result = _run("APRIORI-SCAN", execution, small_newswire)
        jobs = result.pipeline.job_results
        assert len(jobs) > 1, "APRIORI-SCAN should chain multiple jobs"
        for intermediate in jobs[:-1]:
            assert intermediate.output_released
            with pytest.raises(DatasetError):
                intermediate.output
            # Counters and metrics survive the release.
            assert intermediate.counters.map_output_records > 0
            assert intermediate.metrics.num_map_tasks > 0
        final = jobs[-1]
        assert not final.output_released
        assert result.pipeline.final_output == final.output

    def test_disk_intermediate_shards_are_deleted(self, small_newswire):
        execution = ExecutionConfig(materialize="disk")
        keep_all = ExecutionConfig(materialize="disk", retention="all")

        retained = _run("APRIORI-SCAN", keep_all, small_newswire)
        for job in retained.pipeline.job_results:
            for shard in job.output_dataset.shards:
                assert os.path.exists(shard.path)

        dropped = _run("APRIORI-SCAN", execution, small_newswire)
        final = dropped.pipeline.job_results[-1]
        for shard in final.output_dataset.shards:
            assert os.path.exists(shard.path)

    def test_statistics_identical_across_retention_policies(self, small_newswire):
        default = _run("APRIORI-SCAN", ExecutionConfig(materialize="disk"), small_newswire)
        keep_all = _run(
            "APRIORI-SCAN",
            ExecutionConfig(materialize="disk", retention="all"),
            small_newswire,
        )
        assert default.statistics.as_dict() == keep_all.statistics.as_dict()
        assert (
            default.pipeline.counters.as_dict() == keep_all.pipeline.counters.as_dict()
        )

    def test_maximal_counter_streams_between_jobs(self, small_newswire):
        """The two-job maximality pipeline works under default retention."""
        from repro.algorithms.extensions import MaximalNGramCounter

        config = NGramJobConfig(min_frequency=3, max_length=4)
        reference = MaximalNGramCounter(config).run(small_newswire)
        disk = MaximalNGramCounter(
            config, execution=ExecutionConfig(materialize="disk")
        ).run(small_newswire)
        assert disk.statistics.as_dict() == reference.statistics.as_dict()
        assert disk.pipeline.job_results[0].output_released
        assert not disk.pipeline.job_results[-1].output_released


class TestStreamingBoundsMemory:
    """Acceptance: a chained APRIORI-SCAN run in the streaming configuration
    (disk materialisation + shuffle spill budget) peaks below the
    fully-materialised baseline (in-memory datasets, every output retained,
    no spilling) on the Figure-6 smoke corpus."""

    def test_disk_peak_below_fully_materialized_baseline(self):
        from repro.harness.datasets import nytimes_like
        from repro.harness.experiment import ExperimentRunner

        # The full bench corpus: big enough that the streaming configuration
        # peaks at well under half the baseline (a ~2.5x measured margin),
        # so interpreter-state noise from earlier tests in the same process
        # cannot flip the comparison.
        spec = nytimes_like(num_documents=120)
        collection = spec.build(fraction=1.0)

        baseline_runner = ExperimentRunner(
            execution=ExecutionConfig(retention="all"), track_memory=True
        )
        streaming_runner = ExperimentRunner(
            execution=ExecutionConfig(
                materialize="disk", spill_threshold_bytes=8 * 1024
            ),
            track_memory=True,
        )
        baseline, _ = baseline_runner.run_once(
            "APRIORI-SCAN", collection, spec.name, spec.default_tau, 5
        )
        streaming, _ = streaming_runner.run_once(
            "APRIORI-SCAN", collection, spec.name, spec.default_tau, 5
        )
        # Same computation, measured identically...
        assert streaming.map_output_records == baseline.map_output_records
        assert streaming.map_output_bytes == baseline.map_output_bytes
        assert streaming.num_ngrams == baseline.num_ngrams
        assert streaming.num_jobs == baseline.num_jobs > 1
        # ...but a clearly lower allocation high-water mark.
        assert streaming.peak_memory_bytes < 0.8 * baseline.peak_memory_bytes


class TestPeakMemoryTracking:
    def test_run_reports_peak_when_tracked(self, small_newswire):
        counter = make_counter("SUFFIX-SIGMA", NGramJobConfig(min_frequency=3, max_length=3))
        untracked = counter.run(small_newswire)
        assert untracked.peak_memory_bytes is None
        tracked = counter.run(small_newswire, track_memory=True)
        assert isinstance(tracked.peak_memory_bytes, int)
        assert tracked.peak_memory_bytes > 0

    def test_nested_trackers_preserve_outer_peak(self):
        from repro.util.memory import PeakMemoryTracker

        with PeakMemoryTracker() as outer:
            blob = bytearray(8_000_000)  # outer transient, freed before inner
            del blob
            with PeakMemoryTracker() as inner:
                small = bytearray(1_000_000)
                del small
        # The inner region measures only itself...
        assert 1_000_000 <= inner.peak_bytes < 8_000_000
        # ...and its reset must not erase the outer region's high-water mark.
        assert outer.peak_bytes >= 8_000_000

    def test_measurement_carries_peak(self, small_newswire):
        from repro.harness.experiment import ExperimentRunner

        runner = ExperimentRunner(track_memory=True)
        measurement, result = runner.run_once(
            "NAIVE", small_newswire, "newswire", min_frequency=3, max_length=3
        )
        assert measurement.peak_memory_bytes == result.peak_memory_bytes
        assert measurement.peak_memory_bytes > 0
        assert measurement.as_row()["peak_mem_bytes"] == measurement.peak_memory_bytes


class TestShardCodecAgreement:
    """Compressed shards/spills must be byte-transparent to the engine."""

    @pytest.mark.parametrize("algorithm", ("APRIORI-SCAN", "SUFFIX-SIGMA"))
    def test_gzip_shards_and_spills_byte_identical(self, algorithm, small_newswire):
        settings = dict(
            materialize="disk", spill_threshold_records=200, retention="all"
        )
        reference = _run(
            algorithm, ExecutionConfig(shard_codec="none", **settings), small_newswire
        )
        compressed = _run(
            algorithm, ExecutionConfig(shard_codec="gzip", **settings), small_newswire
        )
        assert len(reference.statistics) > 0
        assert compressed.statistics.as_dict() == reference.statistics.as_dict()
        assert (
            compressed.pipeline.counters.as_dict()
            == reference.pipeline.counters.as_dict()
        )

    def test_gzip_shards_on_process_backend(self, small_newswire):
        settings = dict(
            runner="processes",
            max_workers=2,
            materialize="disk",
            spill_threshold_bytes=4096,
            retention="all",
        )
        reference = _run(
            "NAIVE", ExecutionConfig(shard_codec="none", **settings), small_newswire
        )
        compressed = _run(
            "NAIVE", ExecutionConfig(shard_codec="gzip", **settings), small_newswire
        )
        assert compressed.statistics.as_dict() == reference.statistics.as_dict()
        assert (
            compressed.pipeline.counters.as_dict()
            == reference.pipeline.counters.as_dict()
        )
