"""Tests for the on-disk corpus format."""

import os

import pytest

from repro.corpus.collection import DocumentCollection
from repro.corpus.io import read_encoded_collection, write_encoded_collection
from repro.exceptions import CorpusError


class TestCorpusIO:
    def test_roundtrip(self, small_newswire, tmp_path):
        encoded = small_newswire.encode()
        directory = str(tmp_path / "corpus")
        write_encoded_collection(encoded, directory, num_shards=4)

        loaded = read_encoded_collection(directory)
        assert len(loaded) == len(encoded)
        assert len(loaded.vocabulary) == len(encoded.vocabulary)
        for original, restored in zip(encoded.documents, loaded.documents):
            assert original.doc_id == restored.doc_id
            assert original.sentences == restored.sentences
            assert original.timestamp == restored.timestamp

    def test_roundtrip_preserves_vocabulary_mapping(self, running_example, tmp_path):
        encoded = running_example.encode()
        directory = str(tmp_path / "tiny")
        write_encoded_collection(encoded, directory, num_shards=1)
        loaded = read_encoded_collection(directory)
        for term in ("a", "b", "x"):
            assert loaded.vocabulary.term_id(term) == encoded.vocabulary.term_id(term)

    def test_shard_files_created(self, running_example, tmp_path):
        encoded = running_example.encode()
        directory = str(tmp_path / "sharded")
        write_encoded_collection(encoded, directory, num_shards=3)
        files = sorted(os.listdir(directory))
        assert "dictionary.txt" in files
        assert sum(1 for name in files if name.startswith("part-")) == 3

    def test_documents_without_timestamp(self, tmp_path):
        collection = DocumentCollection.from_token_lists([["a", "b"], ["b"]])
        encoded = collection.encode()
        directory = str(tmp_path / "no-ts")
        write_encoded_collection(encoded, directory)
        loaded = read_encoded_collection(directory)
        assert all(document.timestamp is None for document in loaded.documents)

    def test_invalid_shard_count(self, running_example, tmp_path):
        with pytest.raises(CorpusError):
            write_encoded_collection(running_example.encode(), str(tmp_path / "x"), num_shards=0)

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(CorpusError):
            read_encoded_collection(str(tmp_path / "does-not-exist"))

    def test_records_identical_after_roundtrip(self, small_web, tmp_path):
        encoded = small_web.encode()
        directory = str(tmp_path / "web")
        write_encoded_collection(encoded, directory, num_shards=5)
        loaded = read_encoded_collection(directory)
        assert list(loaded.records()) == list(encoded.records())
