"""Tests for the on-disk corpus format and its streaming reader."""

import os
import pickle

import pytest

from repro.corpus.collection import DocumentCollection, EncodedCollection
from repro.corpus.io import (
    ShardedEncodedCollection,
    read_encoded_collection,
    write_encoded_collection,
)
from repro.exceptions import CorpusError, DatasetError


class TestCorpusIO:
    def test_roundtrip(self, small_newswire, tmp_path):
        encoded = small_newswire.encode()
        directory = str(tmp_path / "corpus")
        write_encoded_collection(encoded, directory, num_shards=4)

        loaded = read_encoded_collection(directory)
        assert len(loaded) == len(encoded)
        assert len(loaded.vocabulary) == len(encoded.vocabulary)
        for original, restored in zip(encoded.documents, loaded.documents):
            assert original.doc_id == restored.doc_id
            assert original.sentences == restored.sentences
            assert original.timestamp == restored.timestamp

    def test_roundtrip_preserves_vocabulary_mapping(self, running_example, tmp_path):
        encoded = running_example.encode()
        directory = str(tmp_path / "tiny")
        write_encoded_collection(encoded, directory, num_shards=1)
        loaded = read_encoded_collection(directory)
        for term in ("a", "b", "x"):
            assert loaded.vocabulary.term_id(term) == encoded.vocabulary.term_id(term)

    def test_shard_files_created(self, running_example, tmp_path):
        encoded = running_example.encode()
        directory = str(tmp_path / "sharded")
        write_encoded_collection(encoded, directory, num_shards=3)
        files = sorted(os.listdir(directory))
        assert "dictionary.txt" in files
        assert sum(1 for name in files if name.startswith("part-")) == 3

    def test_documents_without_timestamp(self, tmp_path):
        collection = DocumentCollection.from_token_lists([["a", "b"], ["b"]])
        encoded = collection.encode()
        directory = str(tmp_path / "no-ts")
        write_encoded_collection(encoded, directory)
        loaded = read_encoded_collection(directory)
        assert all(document.timestamp is None for document in loaded.documents)

    def test_invalid_shard_count(self, running_example, tmp_path):
        with pytest.raises(CorpusError):
            write_encoded_collection(running_example.encode(), str(tmp_path / "x"), num_shards=0)

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(CorpusError):
            read_encoded_collection(str(tmp_path / "does-not-exist"))

    def test_records_identical_after_roundtrip(self, small_web, tmp_path):
        encoded = small_web.encode()
        directory = str(tmp_path / "web")
        write_encoded_collection(encoded, directory, num_shards=5)
        loaded = read_encoded_collection(directory)
        assert list(loaded.records()) == list(encoded.records())


class TestShardedCollection:
    """The default reader streams from the shard layout, documents on disk."""

    @pytest.fixture
    def corpus_dir(self, small_newswire, tmp_path):
        directory = str(tmp_path / "sharded-corpus")
        write_encoded_collection(small_newswire.encode(), directory, num_shards=4)
        return directory

    def test_default_read_is_lazy_and_matches_eager(self, corpus_dir):
        lazy = read_encoded_collection(corpus_dir)
        eager = read_encoded_collection(corpus_dir, materialize=True)
        assert isinstance(lazy, ShardedEncodedCollection)
        assert type(eager) is EncodedCollection
        assert len(lazy) == len(eager)
        assert list(lazy.records()) == list(eager.records())
        assert lazy.num_sentences == eager.num_sentences
        assert lazy.num_token_occurrences == eager.num_token_occurrences
        assert lazy.timestamps() == eager.timestamps()
        assert lazy.documents == eager.documents

    def test_random_access_decodes_on_demand(self, corpus_dir):
        lazy = read_encoded_collection(corpus_dir)
        eager = read_encoded_collection(corpus_dir, materialize=True)
        for document in eager.documents[:5]:
            assert lazy[document.doc_id] == document
        with pytest.raises(KeyError):
            lazy[10**9]

    def test_dataset_splits_reassemble_the_record_stream(self, corpus_dir):
        lazy = read_encoded_collection(corpus_dir)
        dataset = lazy.dataset()
        expected = list(lazy.records())
        assert dataset.num_records == len(expected)
        for num_splits in (1, 3, 7, len(expected) + 5):
            splits = dataset.split(num_splits)
            assert [record for split in splits for record in split] == expected
            assert [len(split) for split in splits] == [
                sum(1 for _ in split) for split in splits
            ]

    def test_splits_pickle_as_offsets_not_documents(self, corpus_dir):
        """A split ships shard paths plus integers — a worker process
        reads its slice of the corpus straight from the shard files."""
        lazy = read_encoded_collection(corpus_dir)
        splits = lazy.dataset().split(4)
        for split in splits:
            clone = pickle.loads(pickle.dumps(split))
            assert list(clone) == list(split)

    def test_corpus_dataset_cannot_be_released(self, corpus_dir):
        lazy = read_encoded_collection(corpus_dir)
        with pytest.raises(DatasetError):
            lazy.dataset().release()

    def test_truncated_shard_is_detected(self, corpus_dir):
        shard = os.path.join(corpus_dir, "part-00001.bin")
        with open(shard, "rb") as handle:
            data = handle.read()
        with open(shard, "wb") as handle:
            handle.write(data[:-1])
        with pytest.raises(Exception):
            read_encoded_collection(corpus_dir)
