"""Tests for APRIORI-INDEX (Algorithm 3)."""


from repro.algorithms.apriori_index import AprioriIndexCounter
from repro.config import NGramJobConfig
from repro.corpus.collection import DocumentCollection
from repro.ngrams.reference import (
    reference_document_frequencies,
    reference_ngram_statistics,
)
from repro.ngrams.sequence import count_occurrences


class TestAprioriIndexCounter:
    def test_running_example_with_small_k(self, running_example, running_example_expected):
        # K=2 exercises the posting-list join phase for the frequent 3-gram.
        config = NGramJobConfig(min_frequency=3, max_length=3, apriori_index_k=2)
        result = AprioriIndexCounter(config).run(running_example)
        assert result.statistics.as_dict() == running_example_expected

    def test_running_example_with_k1(self, running_example, running_example_expected):
        config = NGramJobConfig(min_frequency=3, max_length=3, apriori_index_k=1)
        result = AprioriIndexCounter(config).run(running_example)
        assert result.statistics.as_dict() == running_example_expected

    def test_running_example_with_large_k(self, running_example, running_example_expected):
        # K >= sigma means only the direct indexing phase runs.
        config = NGramJobConfig(min_frequency=3, max_length=3, apriori_index_k=4)
        result = AprioriIndexCounter(config).run(running_example)
        assert result.statistics.as_dict() == running_example_expected

    def test_paper_join_example(self, running_example):
        """Section III.B: joining 'a x' and 'x b' gives 'a x b' in all documents."""
        config = NGramJobConfig(min_frequency=3, max_length=3, apriori_index_k=2)
        counter = AprioriIndexCounter(config, keep_index=True)
        counter.run(running_example)
        posting_list = counter.inverted_index[("a", "x", "b")]
        assert posting_list.collection_frequency == 3
        assert posting_list.document_frequency == 3
        # One occurrence per document, at the positions given in the paper.
        positions = {
            posting.doc_id: posting.positions for posting in posting_list
        }
        assert positions == {0: (0,), 1: (1,), 2: (2,)}

    def test_inverted_index_positions_match_bruteforce(self, running_example):
        config = NGramJobConfig(min_frequency=3, max_length=3, apriori_index_k=2)
        counter = AprioriIndexCounter(config, keep_index=True)
        counter.run(running_example)
        documents = {doc.doc_id: doc.tokens for doc in running_example}
        for ngram, posting_list in counter.inverted_index.items():
            total = sum(count_occurrences(ngram, tokens) for tokens in documents.values())
            assert posting_list.collection_frequency == total

    def test_matches_reference_on_synthetic_corpus(self, small_newswire):
        config = NGramJobConfig(min_frequency=4, max_length=5, apriori_index_k=2)
        result = AprioriIndexCounter(config).run(small_newswire)
        expected = reference_ngram_statistics(
            small_newswire.records(), min_frequency=4, max_length=5
        )
        assert result.statistics == expected

    def test_document_frequency_mode(self, running_example):
        config = NGramJobConfig(
            min_frequency=2, max_length=3, apriori_index_k=2, count_document_frequency=True
        )
        result = AprioriIndexCounter(config).run(running_example)
        expected = reference_document_frequencies(
            running_example.records(), min_frequency=2, max_length=3
        )
        assert result.statistics == expected

    def test_sentences_of_same_document_not_joined_across(self):
        """Positions in different sentences of one document must not be adjacent."""
        collection = DocumentCollection()
        from repro.corpus.document import Document

        # "a b" ends sentence 1 and "c" starts sentence 2: "b c" never occurs.
        collection.add(Document.from_sentences(0, [["a", "b"], ["c", "a", "b"]]))
        collection.add(Document.from_sentences(1, [["a", "b"], ["c", "a", "b"]]))
        config = NGramJobConfig(min_frequency=2, max_length=3, apriori_index_k=1)
        result = AprioriIndexCounter(config).run(collection)
        assert ("b", "c") not in result.statistics
        assert result.statistics.frequency(("a", "b")) == 4
        assert result.statistics.frequency(("c", "a", "b")) == 2

    def test_number_of_jobs(self, running_example):
        config = NGramJobConfig(min_frequency=3, max_length=3, apriori_index_k=2)
        result = AprioriIndexCounter(config).run(running_example)
        # Two indexing jobs (k=1,2) plus one join job (k=3).
        assert result.num_jobs == 3

    def test_unbounded_sigma_terminates(self, running_example):
        config = NGramJobConfig(min_frequency=3, max_length=None, apriori_index_k=2)
        result = AprioriIndexCounter(config).run(running_example)
        expected = reference_ngram_statistics(running_example.records(), min_frequency=3)
        assert result.statistics == expected

    def test_empty_collection(self):
        config = NGramJobConfig(min_frequency=1, max_length=3)
        result = AprioriIndexCounter(config).run(DocumentCollection())
        assert len(result.statistics) == 0
