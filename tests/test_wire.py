"""Tests for the binary wire codec: round-trips, fuzz, hostile frames."""

import io
import random

import pytest

from repro.exceptions import SerializationError
from repro.ngramstore.wire import (
    WIRE_MAGIC,
    WIRE_VERSION,
    decode_value,
    encode_hello,
    encode_message,
    encode_value,
    read_message,
)


def round_trip(value, max_bytes=None):
    """Encode through the full framed path and decode it back."""
    stream = io.BytesIO(encode_message(value))
    decoded = read_message(stream, max_bytes)
    assert read_message(stream) is None  # exactly one frame, clean EOF after
    return decoded


SCALARS = [
    None,
    True,
    False,
    0,
    1,
    -1,
    127,
    128,
    -128,
    2**31,
    -(2**31) - 1,
    10**30,  # arbitrary precision: larger than any varint cap
    -(10**30),
    0.0,
    -0.0,
    1.5,
    -273.15,
    1e300,
    "",
    "plain ascii",
    "naïve — déjà vu",
    "日本語のテキスト",
    "emoji \U0001f600 and ☃",
    "embedded\nnewline\tand\x00nul",
]


class TestRoundTrip:
    @pytest.mark.parametrize("value", SCALARS)
    def test_scalars(self, value):
        decoded = round_trip(value)
        assert decoded == value
        # bool/int fidelity: True must not come back as 1 or vice versa.
        assert type(decoded) is type(value)

    def test_containers(self):
        for value in (
            [],
            {},
            [[], {}, [[]]],
            list(range(50)),
            {"op": "multi_get", "keys": [[1, 2], [3]], "default": None},
            {"records": [[[1, 2], 10], [[3], -4]], "truncated": False},
            {"nested": {"deep": {"deeper": [1, "two", 3.0, None, True]}}},
        ):
            assert round_trip(value) == value

    def test_tuples_encode_as_lists(self):
        """JSON semantics: a tuple key arrives as a list, like json.dumps."""
        assert round_trip((1, (2, 3))) == [1, [2, 3]]

    def test_empty_batch_requests(self):
        """The degenerate batches a client may legally send."""
        for value in (
            {"op": "multi_get", "keys": []},
            {"op": "multi_prefix", "keys": []},
            {"results": []},
        ):
            assert round_trip(value) == value

    def test_huge_keys_and_values(self):
        value = {
            "key": ["x" * 100_000],
            "values": [10**100, -(10**100)],
            "blob": "é" * 50_000,
        }
        assert round_trip(value) == value

    def test_fuzz_random_structures(self):
        rng = random.Random(0xB13)

        def build(depth):
            choice = rng.randrange(8 if depth < 4 else 6)
            if choice == 0:
                return None
            if choice == 1:
                return rng.random() < 0.5
            if choice == 2:
                return rng.randint(-(10**12), 10**12)
            if choice == 3:
                return rng.uniform(-1e6, 1e6)
            if choice == 4:
                alphabet = "abz09 é中\U0001f600"
                return "".join(rng.choice(alphabet) for _ in range(rng.randrange(12)))
            if choice == 5:
                return rng.randint(0, 2**70)  # beyond 64-bit
            if choice == 6:
                return [build(depth + 1) for _ in range(rng.randrange(6))]
            return {
                "".join(rng.choice("klmn") for _ in range(4)) + str(index): build(depth + 1)
                for index in range(rng.randrange(5))
            }

        for _ in range(300):
            value = build(0)
            assert round_trip(value) == value


class TestHostileInput:
    def test_every_truncation_point_rejected(self):
        """Chopping the frame anywhere must raise, never mis-decode."""
        message = encode_message(
            {"op": "multi_get", "keys": [[1, 2**40], ["naïve"]], "limit": -3, "x": 1.5}
        )
        for cut in range(1, len(message)):
            with pytest.raises(SerializationError):
                read_message(io.BytesIO(message[:cut]))

    def test_oversized_frame_rejected_before_allocation(self):
        message = encode_message({"blob": "x" * 10_000})
        with pytest.raises(SerializationError, match="exceeds"):
            read_message(io.BytesIO(message), max_bytes=64)

    def test_trailing_garbage_rejected(self):
        payload = encode_value({"ok": True}) + b"\x00"
        with pytest.raises(SerializationError, match="frame holds"):
            decode_value(payload)

    def test_unknown_tag_rejected(self):
        with pytest.raises(SerializationError, match="tag byte 0x7f"):
            decode_value(b"\x7f")

    def test_empty_payload_rejected(self):
        with pytest.raises(SerializationError, match="missing tag"):
            decode_value(b"")

    def test_clean_eof_is_none_not_error(self):
        assert read_message(io.BytesIO(b"")) is None

    def test_non_string_dict_keys_rejected(self):
        with pytest.raises(SerializationError, match="keys must be str"):
            encode_value({1: "one"})

    def test_unencodable_types_rejected(self):
        for value in (b"bytes", {1, 2}, object()):
            with pytest.raises(SerializationError, match="cannot wire-encode"):
                encode_value(value)


class TestNegotiation:
    def test_hello_first_byte_is_not_json(self):
        """The auto-detect hinge: a hello frame can never start with '{'."""
        hello = encode_hello()
        assert hello[0] != ord("{")
        decoded = read_message(io.BytesIO(hello))
        assert decoded == {"protocol": "binary", "version": WIRE_VERSION}

    def test_magic_line_parses_as_invalid_json(self):
        """A legacy JSON server must see the magic as one bad request."""
        import json

        with pytest.raises(ValueError):
            json.loads(WIRE_MAGIC)
        assert b"\n" not in WIRE_MAGIC  # sent as exactly one line
