"""Tests for the distributed serving topologies (router module).

The conformance suite (test_store_api.py) proves end-to-end identity over
live servers; these tests pin down the topology mechanics in isolation:
shard range arithmetic (including empty shards and boundary keys),
replica rotation and failover semantics, and the router's refusal to
operate over a broken topology.
"""

import random

import pytest

from repro.config import StoreConfig
from repro.exceptions import StoreConnectionError, StoreError
from repro.ngramstore import NGramStore, ReplicaPool, ShardRouter, ShardView, build_store
from repro.ngramstore.router import shard_partition_range


def make_records(count=400, seed=29, max_term=30, max_len=3):
    rng = random.Random(seed)
    keys = set()
    while len(keys) < count:
        keys.add(tuple(rng.randint(0, max_term) for _ in range(rng.randint(1, max_len))))
    return [(key, rng.randint(1, 300)) for key in sorted(keys)]


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("router-store") / "store")
    build_store(
        make_records(),
        directory,
        store=StoreConfig(num_partitions=5, records_per_block=16),
    )
    return directory


@pytest.fixture()
def store(store_dir):
    with NGramStore.open(store_dir) as opened:
        yield opened


class TestShardPartitionRange:
    def test_covers_all_partitions_disjointly(self):
        for num_partitions in (0, 1, 3, 5, 8):
            for num_shards in (1, 2, 3, 7):
                covered = []
                for index in range(num_shards):
                    first, last = shard_partition_range(num_partitions, index, num_shards)
                    covered.extend(range(first, last))
                assert covered == list(range(num_partitions))

    def test_invalid_arguments(self):
        with pytest.raises(StoreError, match="num_shards"):
            shard_partition_range(4, 0, 0)
        with pytest.raises(StoreError, match="shard_index"):
            shard_partition_range(4, 3, 3)
        with pytest.raises(StoreError, match="shard_index"):
            shard_partition_range(4, -1, 3)


class TestShardView:
    def test_shards_partition_the_store(self, store_dir, store):
        """Every record is owned by exactly one of N shard views."""
        all_records = list(store.items())
        for num_shards in (1, 2, 3, 5):
            views = [
                ShardView(NGramStore.open(store_dir), index, num_shards)
                for index in range(num_shards)
            ]
            try:
                combined = []
                for view in views:
                    combined.extend(view.scan())
                assert combined == all_records  # disjoint and in global order
                assert sum(view.num_records for view in views) == store.num_records
            finally:
                for view in views:
                    view.close()

    def test_out_of_range_get_misses_without_io(self, store_dir, store):
        keys = [key for key, _ in store.items()]
        views = [ShardView(NGramStore.open(store_dir), i, 2) for i in range(2)]
        try:
            lower_half, upper_half = views
            boundary = upper_half.lower
            for key in keys[::17]:
                in_upper = key >= boundary
                assert (upper_half.get(key) is not None) == in_upper
                assert (lower_half.get(key) is not None) == (not in_upper)
            assert lower_half.get((10_000,), default=-1) == -1
        finally:
            for view in views:
                view.close()

    def test_more_shards_than_partitions_gives_empty_shards(self, store_dir, store):
        num_shards = store.num_partitions + 3
        views = [
            ShardView(NGramStore.open(store_dir), index, num_shards)
            for index in range(num_shards)
        ]
        try:
            assert sum(1 for view in views if view.is_empty) == 3
            for view in views:
                if view.is_empty:
                    assert list(view.scan()) == []
                    assert view.get((0,)) is None
                    assert view.num_records == 0
            combined = []
            for view in views:
                combined.extend(view.scan())
            assert combined == list(store.items())
        finally:
            for view in views:
                view.close()

    def test_shard_top_k_is_top_k_of_owned_records(self, store_dir):
        view = ShardView(NGramStore.open(store_dir), 1, 3)
        try:
            owned = list(view.scan())
            reference = sorted(owned, key=lambda record: (-record[1], record[0]))[:7]
            assert view.top_k(7) == reference
            assert view.top_k(7, order="key") == owned[:7]
        finally:
            view.close()

    def test_stats_descriptor(self, store_dir, store):
        view = ShardView(NGramStore.open(store_dir), 0, 2)
        try:
            descriptor = view.stats()["shard"]
            assert descriptor["index"] == 0
            assert descriptor["num_shards"] == 2
            assert descriptor["lower"] is None  # first shard: unbounded below
            assert tuple(descriptor["upper"]) in store.boundaries
            assert descriptor["empty"] is False
        finally:
            view.close()


class _ScriptedReplica:
    """A fake StoreAPI member: answers with a tag, or dies on command."""

    def __init__(self, tag, dead=False):
        self.tag = tag
        self.dead = dead
        self.calls = 0
        self.closed = False

    def get(self, ngram, default=None):
        self.calls += 1
        if self.dead:
            raise StoreConnectionError(f"{self.tag} is down")
        return self.tag

    def top_k(self, k, order="frequency"):
        self.calls += 1
        if self.dead:
            raise StoreConnectionError(f"{self.tag} is down")
        return [((0,), self.tag)]

    def close(self):
        self.closed = True


class TestReplicaPool:
    def test_round_robin_rotation(self):
        replicas = [_ScriptedReplica(tag) for tag in ("a", "b", "c")]
        pool = ReplicaPool(replicas)
        assert [pool.get((1,)) for _ in range(6)] == ["a", "b", "c", "a", "b", "c"]

    def test_failover_skips_dead_replica(self):
        replicas = [_ScriptedReplica("a", dead=True), _ScriptedReplica("b")]
        pool = ReplicaPool(replicas)
        # Every request lands on the live replica, whichever starts the cycle.
        assert [pool.get((1,)) for _ in range(4)] == ["b", "b", "b", "b"]
        assert replicas[0].calls > 0  # the dead one was tried, not shunned forever

    def test_all_dead_raises_connection_error(self):
        pool = ReplicaPool([_ScriptedReplica(tag, dead=True) for tag in ("a", "b")])
        with pytest.raises(StoreConnectionError, match="all 2 replicas failed"):
            pool.top_k(3)

    def test_application_errors_propagate_without_failover(self):
        class Grumpy(_ScriptedReplica):
            def top_k(self, k, order="frequency"):
                self.calls += 1
                raise StoreError("k too large")

        replicas = [Grumpy("a"), Grumpy("b")]
        pool = ReplicaPool(replicas)
        with pytest.raises(StoreError, match="k too large"):
            pool.top_k(10**9)
        # Only one replica was asked: every replica would answer identically.
        assert sum(replica.calls for replica in replicas) == 1

    def test_close_closes_all_members(self):
        replicas = [_ScriptedReplica(tag) for tag in ("a", "b")]
        ReplicaPool(replicas).close()
        assert all(replica.closed for replica in replicas)

    def test_empty_pool_rejected(self):
        with pytest.raises(StoreError, match="at least one"):
            ReplicaPool([])

    def test_negative_quarantine_rejected(self):
        with pytest.raises(StoreError, match="quarantine"):
            ReplicaPool([_ScriptedReplica("a")], quarantine_base=-1)


class _FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestReplicaQuarantine:
    """Failed replicas sit out with exponential backoff, then re-earn trust."""

    def make_pool(self, replicas, clock):
        return ReplicaPool(replicas, quarantine_base=0.25, quarantine_cap=30.0, clock=clock)

    def test_failed_replica_not_retried_until_backoff_expires(self):
        clock = _FakeClock()
        dead = _ScriptedReplica("a", dead=True)
        live = _ScriptedReplica("b")
        pool = self.make_pool([dead, live], clock)
        assert pool.get((1,)) == "b"  # first cycle tries and benches "a"
        assert pool.benched_replicas() == [0]
        tried = dead.calls
        for _ in range(10):
            assert pool.get((1,)) == "b"
        assert dead.calls == tried  # benched: not even probed
        clock.now += 0.26  # past the base delay
        # One full rotation pair: whichever call starts at "a" probes it.
        assert {pool.get((1,)), pool.get((1,))} == {"b"}
        assert dead.calls == tried + 1  # probed again exactly once

    def test_backoff_doubles_per_consecutive_failure(self):
        clock = _FakeClock()
        dead = _ScriptedReplica("a", dead=True)
        pool = self.make_pool([dead, _ScriptedReplica("b")], clock)
        pool.get((1,))  # failure #1 -> benched 0.25s
        for expected_delay in (0.25, 0.5, 1.0, 2.0):
            tried = dead.calls
            clock.now += expected_delay - 0.01  # just short of the bench
            pool.get((1,))
            assert dead.calls == tried
            clock.now += 0.02  # cross it: the probe fails again, doubling
            pool.get((1,))
            assert dead.calls == tried + 1

    def test_backoff_is_capped(self):
        clock = _FakeClock()
        dead = _ScriptedReplica("a", dead=True)
        pool = ReplicaPool(
            [dead, _ScriptedReplica("b")], quarantine_base=0.25, quarantine_cap=1.0, clock=clock
        )
        for _ in range(12):  # uncapped this would bench for ~8 minutes
            pool.get((1,))
            clock.now += 1.01
        tried = dead.calls
        clock.now += 1.01
        pool.get((1,))
        assert dead.calls == tried + 1  # still probed every ~cap seconds

    def test_success_resets_the_backoff(self):
        clock = _FakeClock()
        flaky = _ScriptedReplica("a", dead=True)
        pool = self.make_pool([flaky, _ScriptedReplica("b")], clock)
        for _ in range(4):  # every probe of "a" fails, escalating its bench
            pool.get((1,))
            clock.now += 40
        assert flaky.calls >= 2
        flaky.dead = False
        # One full rotation pair lands one call on the recovered replica.
        assert "a" in {pool.get((1,)), pool.get((1,))}
        assert pool.benched_replicas() == []
        flaky.dead = True
        pool.get((1,))
        pool.get((1,))  # the pair contains exactly one fresh failure
        tried = flaky.calls
        clock.now += 0.26  # base delay again, not the escalated one
        pool.get((1,))
        pool.get((1,))
        assert flaky.calls == tried + 1

    def test_all_benched_still_tries_everyone(self):
        """Total outage: quarantine must not make the pool unservable."""
        clock = _FakeClock()
        replicas = [_ScriptedReplica(tag, dead=True) for tag in ("a", "b")]
        pool = self.make_pool(replicas, clock)
        with pytest.raises(StoreConnectionError, match="all 2 replicas failed"):
            pool.get((1,))
        assert pool.benched_replicas() == [0, 1]
        # No clock advance: every replica is benched, yet all are retried.
        calls = [replica.calls for replica in replicas]
        with pytest.raises(StoreConnectionError):
            pool.get((1,))
        assert [replica.calls for replica in replicas] == [count + 1 for count in calls]
        # One recovers: the pool notices on the next full-rotation attempt.
        replicas[1].dead = False
        assert pool.get((1,)) == "b"


class TestShardRouterLocal:
    """Router over in-process ShardViews (no sockets): pure routing logic."""

    def make_router(self, store_dir, num_shards):
        return ShardRouter(
            [
                ShardView(NGramStore.open(store_dir), index, num_shards)
                for index in range(num_shards)
            ]
        )

    def test_routes_and_merges_like_the_local_store(self, store_dir, store):
        expected = dict(store.items())
        router = self.make_router(store_dir, 3)
        try:
            for key in sorted(expected)[::13]:
                assert router.get(key) == expected[key]
            assert router.get((10_000,)) is None
            keys = sorted(expected)[::29] + [(10_000,)]
            assert router.multi_get(keys) == [expected.get(key) for key in keys]
            term = sorted(expected)[0][0]
            assert list(router.prefix((term,))) == list(store.prefix((term,)))
            assert router.top_k(9) == store.top_k(9)
            assert router.top_k(9, order="key") == store.top_k(9, order="key")
            assert router.stats()["num_records"] == store.num_records
        finally:
            router.close()

    def test_tolerates_empty_shards(self, store_dir, store):
        num_shards = store.num_partitions + 2
        router = self.make_router(store_dir, num_shards)
        try:
            assert router.top_k(5) == store.top_k(5)
            some_key = next(iter(store))
            assert router.get(some_key) == store.get(some_key)
        finally:
            router.close()

    def test_rejects_incomplete_topology(self, store_dir):
        views = [ShardView(NGramStore.open(store_dir), index, 3) for index in (0, 2)]
        try:
            with pytest.raises(StoreError, match="missing indexes \\[1\\]"):
                ShardRouter(views)
        finally:
            for view in views:
                view.close()

    def test_rejects_mixed_shard_counts(self, store_dir):
        views = [
            ShardView(NGramStore.open(store_dir), 0, 2),
            ShardView(NGramStore.open(store_dir), 1, 3),
        ]
        try:
            with pytest.raises(StoreError, match="disagree on num_shards"):
                ShardRouter(views)
        finally:
            for view in views:
                view.close()

    def test_rejects_unsharded_members(self, store_dir):
        with NGramStore.open(store_dir) as plain:
            with pytest.raises(StoreError, match="shard descriptor"):
                ShardRouter([plain])

    def test_parallel_fan_out_identical_to_local(self, store_dir, store):
        """The thread-pool fan-out changes wall-clock, never answers."""
        expected = dict(store.items())
        router = self.make_router(store_dir, 3)
        try:
            terms = sorted({key[0] for key in expected})
            for term in terms[::5]:
                reference = list(store.prefix((term,)))
                assert list(router.prefix((term,))) == reference
                assert list(router.prefix((term,), limit=3)) == reference[:3]
            prefixes = [(term,) for term in terms[:6]]
            assert router.multi_prefix(prefixes) == [
                list(store.prefix(prefix)) for prefix in prefixes
            ]
            assert router.multi_prefix(prefixes, limit=2) == [
                list(store.prefix(prefix, limit=2)) for prefix in prefixes
            ]
            for k in (1, 9, 50):
                assert router.top_k(k) == store.top_k(k)
                assert router.top_k(k, order="key") == store.top_k(k, order="key")
            # The queries above genuinely crossed shards in parallel.
            assert router._executor is not None
        finally:
            router.close()
            router.close()  # idempotent, including the executor shutdown

    def test_fan_out_from_many_caller_threads(self, store_dir, store):
        """Caller concurrency on top of shard fan-out stays correct."""
        from concurrent.futures import ThreadPoolExecutor

        expected = dict(store.items())
        terms = sorted({key[0] for key in expected})
        reference = {term: list(store.prefix((term,))) for term in terms}
        reference_top = store.top_k(7)
        router = self.make_router(store_dir, 3)

        def hammer(seed):
            rng = random.Random(seed)
            for _ in range(15):
                term = rng.choice(terms)
                assert list(router.prefix((term,))) == reference[term]
            assert router.top_k(7) == reference_top
            return True

        try:
            with ThreadPoolExecutor(max_workers=6) as pool:
                assert all(pool.map(hammer, range(8)))
        finally:
            router.close()
