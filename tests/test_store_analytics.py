"""Cross-store analytics (diff/intersect) and exact completion semantics.

The analytics module's claim is byte-identity: :func:`diff_records` /
:func:`intersect_records` over two stores' ``exact_items()`` streams must
equal the brute-force set computation over the same streams — fuzzed here
across codecs and thresholds τ ∈ {1, 2, 3} (τ > 1 exercises the residual
sidecar reconstruction inside the co-scan).  The store-writing twins must
produce directories whose ``exact_items()`` replay the record streams.

The completion half pins the serving tier's ``complete`` to one canonical
ranking: the local store, the :class:`QueryEngine`, a dict-backed
:class:`NGramLanguageModel`, a store-backed one, and an LSM
:class:`GenerationView` all funnel through
:func:`repro.ngramstore.api.complete_scan`, so ties break identically
everywhere.  (Cross-transport identity lives in ``test_store_api.py``.)
"""

import random

import pytest

from repro.applications.language_model import NGramLanguageModel
from repro.cli import main
from repro.config import StoreConfig
from repro.corpus.vocabulary import Vocabulary
from repro.exceptions import StoreError
from repro.ngrams.statistics import NGramStatistics
from repro.ngramstore import (
    LSMStore,
    NGramStore,
    QueryEngine,
    build_store,
    diff_records,
    diff_stores,
    intersect_records,
    intersect_stores,
)

MAX_TERM = 30


def term_for(term_id):
    return f"w{term_id:02d}"


def make_vocabulary(max_term=MAX_TERM):
    return Vocabulary.from_term_frequencies(
        {term_for(index): 1000 - index for index in range(max_term + 1)}
    )


def make_counts(count, seed, max_len=3, max_count=12):
    rng = random.Random(seed)
    keys = set()
    while len(keys) < count:
        keys.add(
            tuple(rng.randint(0, MAX_TERM) for _ in range(rng.randint(1, max_len)))
        )
    return {key: rng.randint(1, max_count) for key in keys}


def overlapping_counts(seed, size_a=120, size_b=90, shared=40):
    """Two count tables sharing ``shared`` keys (with independent counts)."""
    counts_a = make_counts(size_a, seed=seed)
    rng = random.Random(seed + 1)
    counts_b = make_counts(size_b - shared, seed=seed + 2)
    for key in sorted(counts_a)[:shared]:
        counts_b[key] = rng.randint(1, 12)
    return counts_a, counts_b


def brute_diff(counts_a, counts_b, min_frequency=1):
    return sorted(
        (key, value)
        for key, value in counts_a.items()
        if key not in counts_b and value >= min_frequency
    )


def brute_intersect(counts_a, counts_b, min_frequency=1):
    return sorted(
        (key, [counts_a[key], counts_b[key]])
        for key in counts_a.keys() & counts_b.keys()
        if counts_a[key] >= min_frequency and counts_b[key] >= min_frequency
    )


def build_pair(tmp_path, counts_a, counts_b, tau=1, codec="none", vocabulary=None):
    a_dir, b_dir = str(tmp_path / "a"), str(tmp_path / "b")
    layout = dict(num_partitions=2, records_per_block=16, codec=codec)
    build_store(
        sorted(counts_a.items()),
        a_dir,
        store=StoreConfig(min_frequency=tau, **layout),
        vocabulary=vocabulary,
    )
    build_store(
        sorted(counts_b.items()),
        b_dir,
        store=StoreConfig(min_frequency=tau, **layout),
        vocabulary=vocabulary,
    )
    return a_dir, b_dir


class TestAnalyticsFuzz:
    """diff/intersect == brute force, across codecs, thresholds and seeds."""

    @pytest.mark.parametrize("codec", ("none", "gzip"))
    @pytest.mark.parametrize("tau", (1, 2, 3))
    def test_streams_match_brute_force(self, tmp_path, codec, tau):
        for seed in (11, 37, 91):
            counts_a, counts_b = overlapping_counts(seed)
            a_dir, b_dir = build_pair(
                tmp_path / f"s{seed}", counts_a, counts_b, tau=tau, codec=codec
            )
            assert list(diff_records(a_dir, b_dir)) == brute_diff(counts_a, counts_b)
            assert list(intersect_records(a_dir, b_dir)) == brute_intersect(
                counts_a, counts_b
            )

    @pytest.mark.parametrize("tau", (1, 3))
    def test_min_frequency_filters_the_analysis(self, tmp_path, tau):
        counts_a, counts_b = overlapping_counts(5)
        a_dir, b_dir = build_pair(tmp_path, counts_a, counts_b, tau=tau)
        for bound in (2, 5):
            assert list(
                diff_records(a_dir, b_dir, min_frequency=bound)
            ) == brute_diff(counts_a, counts_b, min_frequency=bound)
            assert list(
                intersect_records(a_dir, b_dir, min_frequency=bound)
            ) == brute_intersect(counts_a, counts_b, min_frequency=bound)

    def test_open_stores_accepted_in_place_of_paths(self, tmp_path):
        counts_a, counts_b = overlapping_counts(7)
        a_dir, b_dir = build_pair(tmp_path, counts_a, counts_b, tau=2)
        with NGramStore.open(a_dir) as store_a, NGramStore.open(b_dir) as store_b:
            assert list(diff_records(store_a, store_b)) == brute_diff(
                counts_a, counts_b
            )
            # The caller's stores stay open for reuse.
            assert store_a.get(next(iter(sorted(counts_a)))) is not None


class TestAnalyticsStores:
    def test_store_output_replays_the_stream(self, tmp_path):
        counts_a, counts_b = overlapping_counts(13)
        a_dir, b_dir = build_pair(
            tmp_path, counts_a, counts_b, tau=2, vocabulary=make_vocabulary()
        )
        diff_dir = diff_stores(a_dir, b_dir, str(tmp_path / "diff"))
        intersect_dir = intersect_stores(a_dir, b_dir, str(tmp_path / "int"))
        with NGramStore.open(diff_dir) as diff:
            assert list(diff.exact_items()) == brute_diff(counts_a, counts_b)
            assert diff.metadata["analytics"] == "diff"
            assert diff.metadata["analytics_inputs"] == ["a", "b"]
            assert diff.vocabulary is not None
        with NGramStore.open(intersect_dir) as shared:
            assert list(shared.exact_items()) == brute_intersect(counts_a, counts_b)
            assert shared.metadata["analytics"] == "intersect"

    def test_diff_store_is_a_valid_count_store(self, tmp_path):
        """Diff values are plain A-counts, so the output store queries and
        rethresholds like any other count table."""
        counts_a, counts_b = overlapping_counts(17)
        a_dir, b_dir = build_pair(tmp_path, counts_a, counts_b)
        diff_dir = diff_stores(a_dir, b_dir, str(tmp_path / "diff"))
        expected = dict(brute_diff(counts_a, counts_b))
        with NGramStore.open(diff_dir) as diff:
            some = sorted(expected)[::7]
            assert diff.multi_get(some) == [expected[key] for key in some]
            assert diff.top_k(3) == sorted(
                ((key, value) for key, value in expected.items()),
                key=lambda item: (-item[1], item[0]),
            )[:3]

    def test_output_dir_cannot_be_an_input(self, tmp_path):
        counts_a, counts_b = overlapping_counts(19)
        a_dir, b_dir = build_pair(tmp_path, counts_a, counts_b)
        with pytest.raises(StoreError, match="cannot be one of the inputs"):
            diff_stores(a_dir, b_dir, a_dir)

    def test_min_frequency_carries_into_the_store(self, tmp_path):
        counts_a, counts_b = overlapping_counts(23)
        a_dir, b_dir = build_pair(tmp_path, counts_a, counts_b)
        out = intersect_stores(
            a_dir, b_dir, str(tmp_path / "out"), min_frequency=3
        )
        with NGramStore.open(out) as store:
            assert list(store.exact_items()) == brute_intersect(
                counts_a, counts_b, min_frequency=3
            )
            assert store.metadata["analytics_min_frequency"] == 3


class TestAnalyticsRefusals:
    def test_thresholded_residual_less_inputs_refused(self, tmp_path):
        counts_a, counts_b = overlapping_counts(29)
        a_dir, b_dir = str(tmp_path / "a"), str(tmp_path / "b")
        # Legacy layout: τ stamped but no residual sidecar — the sub-τ
        # counts are gone, so absence claims below τ would be wrong.
        build_store(
            sorted((k, v) for k, v in counts_a.items() if v >= 2),
            a_dir,
            metadata={"min_frequency": 2},
        )
        build_store(sorted(counts_b.items()), b_dir)
        with pytest.raises(StoreError, match="allow_thresholded"):
            list(diff_records(a_dir, b_dir))
        served_a = {key: value for key, value in counts_a.items() if value >= 2}
        assert list(
            diff_records(a_dir, b_dir, allow_thresholded=True)
        ) == brute_diff(served_a, counts_b)

    def test_vocabulary_mismatch_refused(self, tmp_path):
        counts_a, counts_b = overlapping_counts(31)
        a_dir, b_dir = str(tmp_path / "a"), str(tmp_path / "b")
        build_store(sorted(counts_a.items()), a_dir, vocabulary=make_vocabulary())
        build_store(
            sorted(counts_b.items()),
            b_dir,
            vocabulary=Vocabulary.from_term_frequencies({"other": 1}),
        )
        with pytest.raises(StoreError, match="vocabular"):
            list(diff_records(a_dir, b_dir))

    def test_bad_min_frequency_rejected(self, tmp_path):
        counts_a, counts_b = overlapping_counts(41)
        a_dir, b_dir = build_pair(tmp_path, counts_a, counts_b)
        with pytest.raises(StoreError, match="min_frequency"):
            list(diff_records(a_dir, b_dir, min_frequency=0))
        with pytest.raises(StoreError, match="min_frequency"):
            list(intersect_records(a_dir, b_dir, min_frequency=True))


class TestAnalyticsCLI:
    def _run(self, capsys, argv):
        code = main(argv)
        captured = capsys.readouterr()
        return code, captured.out

    def test_cli_writes_stores(self, capsys, tmp_path):
        counts_a, counts_b = overlapping_counts(43)
        a_dir, b_dir = build_pair(tmp_path, counts_a, counts_b, tau=2)
        out = str(tmp_path / "diff")
        code, output = self._run(
            capsys, ["diff-stores", a_dir, b_dir, "--output", out]
        )
        assert code == 0 and "wrote diff" in output
        with NGramStore.open(out) as store:
            assert list(store.exact_items()) == brute_diff(counts_a, counts_b)
        out = str(tmp_path / "int")
        code, output = self._run(
            capsys,
            ["intersect-stores", a_dir, b_dir, "--output", out, "--min-frequency", "2"],
        )
        assert code == 0 and "wrote intersect" in output
        with NGramStore.open(out) as store:
            assert list(store.exact_items()) == brute_intersect(
                counts_a, counts_b, min_frequency=2
            )

    def test_cli_prints_counts_and_ids(self, capsys, tmp_path):
        counts_a = {(0,): 4, (0, 1): 2, (1,): 3}
        counts_b = {(0,): 2, (2,): 5}
        a_dir, b_dir = build_pair(
            tmp_path, counts_a, counts_b, vocabulary=make_vocabulary()
        )
        code, output = self._run(capsys, ["diff-stores", a_dir, b_dir])
        assert code == 0
        assert output.splitlines() == ["2\tw00 w01", "3\tw01"]
        code, output = self._run(capsys, ["diff-stores", a_dir, b_dir, "--ids"])
        assert code == 0
        assert output.splitlines() == ["2\t0 1", "3\t1"]
        code, output = self._run(capsys, ["intersect-stores", a_dir, b_dir])
        assert code == 0
        assert output.splitlines() == ["4\t2\tw00"]
        code, output = self._run(
            capsys, ["diff-stores", a_dir, b_dir, "--limit", "1"]
        )
        assert code == 0
        assert output.splitlines() == ["2\tw00 w01"]

    def test_cli_ratio_mode(self, capsys, tmp_path):
        counts_a = {(0,): 8, (0, 1): 2}
        counts_b = {(0,): 2}
        a_dir, b_dir = str(tmp_path / "a"), str(tmp_path / "b")
        build_store(
            sorted(counts_a.items()), a_dir, metadata={"unigram_total": 8}
        )
        build_store(
            sorted(counts_b.items()), b_dir, metadata={"unigram_total": 2}
        )
        code, output = self._run(
            capsys, ["intersect-stores", a_dir, b_dir, "--mode", "ratio"]
        )
        assert code == 0
        # (8/8) / (2/2) = 1.0: equal relative frequency in both corpora.
        assert output.splitlines() == ["1.000000\t0"]
        # Ratio is a report, not a count table.
        assert (
            main(
                [
                    "diff-stores",
                    a_dir,
                    b_dir,
                    "--mode",
                    "ratio",
                    "--output",
                    str(tmp_path / "no"),
                ]
            )
            == 2
        )
        capsys.readouterr()

    def test_cli_ratio_needs_corpus_sizes(self, capsys, tmp_path):
        counts_a, counts_b = overlapping_counts(47)
        a_dir, b_dir = build_pair(tmp_path, counts_a, counts_b)
        assert main(["diff-stores", a_dir, b_dir, "--mode", "ratio"]) == 2
        assert "unigram_total" in capsys.readouterr().err

    def test_cli_refusals_exit_2(self, capsys, tmp_path):
        counts_a, counts_b = overlapping_counts(53)
        a_dir, b_dir = str(tmp_path / "a"), str(tmp_path / "b")
        build_store(
            sorted((k, v) for k, v in counts_a.items() if v >= 2),
            a_dir,
            metadata={"min_frequency": 2},
        )
        build_store(sorted(counts_b.items()), b_dir)
        assert main(["diff-stores", a_dir, b_dir]) == 2
        assert "--allow-thresholded" in capsys.readouterr().err
        assert main(["diff-stores", a_dir, b_dir, "--allow-thresholded"]) == 0
        capsys.readouterr()


class TestRethresholdCLI:
    def test_rethreshold_is_exact(self, capsys, tmp_path):
        counts = make_counts(150, seed=61)
        in_dir, out_dir = str(tmp_path / "in"), str(tmp_path / "out")
        build_store(
            sorted(counts.items()),
            in_dir,
            store=StoreConfig(num_partitions=2, min_frequency=2),
        )
        assert main(["rethreshold", in_dir, "--output", out_dir, "--tau", "4"]) == 0
        assert "tau=4" in capsys.readouterr().out
        with NGramStore.open(out_dir) as store:
            # The full count table survives exactly; only the main/residual
            # split moves.
            assert list(store.exact_items()) == sorted(counts.items())
            assert list(store.items()) == sorted(
                (key, value) for key, value in counts.items() if value >= 4
            )
            assert store.min_frequency == 4

    def test_rethreshold_refuses_residual_less_input(self, capsys, tmp_path):
        in_dir = str(tmp_path / "in")
        build_store([((1,), 5)], in_dir, metadata={"min_frequency": 3})
        assert (
            main(
                ["rethreshold", in_dir, "--output", str(tmp_path / "out"), "--tau", "2"]
            )
            == 2
        )
        assert "error:" in capsys.readouterr().err


class TestCompletionSemantics:
    """One canonical ranking across model, store, engine and LSM view."""

    RECORDS = [
        ((0,), 9),
        ((0, 1), 5),
        ((0, 2), 5),
        ((0, 3), 5),
        ((0, 4), 7),
        ((0, 1, 2), 3),
        ((1,), 6),
        ((1, 2), 2),
        ((2,), 5),
    ]

    def test_tie_break_is_deterministic(self, tmp_path):
        store_dir = str(tmp_path / "store")
        build_store(self.RECORDS, store_dir)
        with NGramStore.open(store_dir) as store:
            completions = store.complete((0,), 4)
        # Value order first, then token order among the 5-count ties.
        assert [(c.token, c.value) for c in completions] == [
            (4, 7),
            (1, 5),
            (2, 5),
            (3, 5),
        ]

    def test_model_store_and_engine_agree(self, tmp_path):
        store_dir = str(tmp_path / "store")
        build_store(self.RECORDS, store_dir)
        dict_model = NGramLanguageModel(
            NGramStatistics(dict(self.RECORDS)), order=3, total_tokens=20
        )
        store_model = NGramLanguageModel.from_store(store_dir, order=3)
        with NGramStore.open(store_dir) as store:
            for prefix in ((), (0,), (0, 1), (1,), (9,)):
                expected = store.complete(prefix, 3)
                assert dict_model.complete(prefix, 3) == expected
                assert store_model.complete(prefix, 3) == expected
                response = QueryEngine(store).handle(
                    {"op": "complete", "key": list(prefix), "k": 3}
                )
                assert response["completions"] == [
                    [c.token, c.value] for c in expected
                ]
                assert response["truncated"] is False
        store_model.statistics.store.close()

    def test_generation_view_completes_across_generations(self, tmp_path):
        store = LSMStore.init(str(tmp_path / "lsm"), min_frequency=1)
        store.ingest_records([((0,), 3), ((0, 1), 2)])
        store.ingest_records([((0, 1), 1), ((0, 2), 4)])
        union_dir = str(tmp_path / "union")
        build_store([((0,), 3), ((0, 1), 3), ((0, 2), 4)], union_dir)
        with store.view() as view, NGramStore.open(union_dir) as union:
            assert view.complete((0,), 5) == union.complete((0,), 5)

    def test_engine_compare_requires_extra_store(self, tmp_path):
        store_dir = str(tmp_path / "store")
        build_store(self.RECORDS, store_dir)
        with NGramStore.open(store_dir) as store:
            with pytest.raises(StoreError, match="--extra-store"):
                QueryEngine(store).handle({"op": "compare", "key": [0]})

    def test_complete_k_validation(self, tmp_path):
        store_dir = str(tmp_path / "store")
        build_store(self.RECORDS, store_dir)
        with NGramStore.open(store_dir) as store:
            with pytest.raises(StoreError, match="k"):
                store.complete((0,), 0)
            with pytest.raises(StoreError, match="k"):
                store.complete((0,), True)
