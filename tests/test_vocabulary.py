"""Tests for the term vocabulary."""

import pytest
from hypothesis import given, strategies as st

from repro.corpus.vocabulary import Vocabulary
from repro.exceptions import VocabularyError


class TestVocabulary:
    def test_ids_assigned_by_descending_frequency(self):
        vocabulary = Vocabulary.from_term_frequencies({"rare": 1, "common": 100, "mid": 10})
        assert vocabulary.term_id("common") == 0
        assert vocabulary.term_id("mid") == 1
        assert vocabulary.term_id("rare") == 2

    def test_ties_broken_lexicographically(self):
        vocabulary = Vocabulary.from_term_frequencies({"b": 5, "a": 5, "c": 5})
        assert vocabulary.term_id("a") == 0
        assert vocabulary.term_id("b") == 1
        assert vocabulary.term_id("c") == 2

    def test_term_lookup_roundtrip(self):
        vocabulary = Vocabulary.from_term_frequencies({"x": 3, "y": 2})
        for term in ("x", "y"):
            assert vocabulary.term(vocabulary.term_id(term)) == term

    def test_unknown_term_raises(self):
        vocabulary = Vocabulary.from_term_frequencies({"a": 1})
        with pytest.raises(VocabularyError):
            vocabulary.term_id("unknown")

    def test_unknown_id_raises(self):
        vocabulary = Vocabulary.from_term_frequencies({"a": 1})
        with pytest.raises(VocabularyError):
            vocabulary.term(5)
        with pytest.raises(VocabularyError):
            vocabulary.frequency_of_id(-1)

    def test_frequencies_preserved(self):
        vocabulary = Vocabulary.from_term_frequencies({"a": 7, "b": 3})
        assert vocabulary.frequency("a") == 7
        assert vocabulary.frequency_of_id(vocabulary.term_id("b")) == 3

    def test_contains_and_len(self):
        vocabulary = Vocabulary.from_term_frequencies({"a": 1, "b": 2})
        assert "a" in vocabulary
        assert "z" not in vocabulary
        assert len(vocabulary) == 2

    def test_from_collection(self, running_example):
        vocabulary = Vocabulary.from_collection(running_example)
        assert len(vocabulary) == 3
        assert vocabulary.frequency("x") == 7
        assert vocabulary.frequency("b") == 5
        assert vocabulary.frequency("a") == 3

    def test_items_and_terms_in_id_order(self):
        vocabulary = Vocabulary.from_term_frequencies({"low": 1, "high": 9})
        assert list(vocabulary.terms()) == ["high", "low"]
        assert list(vocabulary.items()) == [("high", 0), ("low", 1)]

    def test_lines_roundtrip(self):
        vocabulary = Vocabulary.from_term_frequencies({"alpha": 10, "beta": 4, "gamma": 4})
        rebuilt = Vocabulary.from_lines(vocabulary.to_lines())
        assert len(rebuilt) == len(vocabulary)
        for term, term_id in vocabulary.items():
            assert rebuilt.term_id(term) == term_id
            assert rebuilt.frequency(term) == vocabulary.frequency(term)

    def test_from_lines_skips_blank_lines(self):
        vocabulary = Vocabulary.from_lines(["a\t3", "", "b\t1\n"])
        assert len(vocabulary) == 2

    def test_from_lines_malformed_frequency(self):
        with pytest.raises(VocabularyError):
            Vocabulary.from_lines(["a\tnot-a-number"])

    @given(
        st.dictionaries(
            st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122), min_size=1, max_size=8),
            st.integers(min_value=1, max_value=10**6),
            min_size=1,
            max_size=50,
        )
    )
    def test_ids_dense_and_frequency_monotone(self, frequencies):
        vocabulary = Vocabulary.from_term_frequencies(frequencies)
        ids = sorted(vocabulary.term_id(term) for term in frequencies)
        assert ids == list(range(len(frequencies)))
        ordered_frequencies = [vocabulary.frequency_of_id(i) for i in range(len(frequencies))]
        assert ordered_frequencies == sorted(ordered_frequencies, reverse=True)
