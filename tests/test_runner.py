"""Tests for the local MapReduce job runner."""

from typing import Any, Iterable

import pytest

from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.counters import (
    COMBINE_OUTPUT_RECORDS,
    MAP_INPUT_RECORDS,
    MAP_OUTPUT_BYTES,
    MAP_OUTPUT_RECORDS,
    REDUCE_INPUT_GROUPS,
    REDUCE_OUTPUT_RECORDS,
)
from repro.mapreduce.dataset import MemoryDataset
from repro.mapreduce.job import Combiner, JobSpec, Mapper, Partitioner, Reducer, TaskContext
from repro.mapreduce.runner import LocalJobRunner
from repro.exceptions import MapReduceError


class WordCountMapper(Mapper):
    def map(self, key: Any, value: Iterable[str], context: TaskContext) -> None:
        for word in value:
            context.emit(word, 1)


class SumReducer(Reducer):
    def reduce(self, key: Any, values: Iterable[int], context: TaskContext) -> None:
        context.emit(key, sum(values))


class SumCombiner(Combiner):
    def reduce(self, key: Any, values: Iterable[int], context: TaskContext) -> None:
        context.emit(key, sum(values))


def word_count_job(**overrides) -> JobSpec:
    spec = dict(
        name="word-count",
        mapper_factory=WordCountMapper,
        reducer_factory=SumReducer,
        num_reducers=3,
    )
    spec.update(overrides)
    return JobSpec(**spec)


WORDS_INPUT = [
    (0, ("to", "be", "or", "not", "to", "be")),
    (1, ("to", "see", "or", "not")),
    (2, ("be", "here", "now")),
]
EXPECTED_COUNTS = {
    "to": 3,
    "be": 3,
    "or": 2,
    "not": 2,
    "see": 1,
    "here": 1,
    "now": 1,
}


class TestSplitInput:
    def test_empty_input_single_split(self):
        assert MemoryDataset([]).split(4) == [[]]

    def test_split_count_capped_by_records(self):
        records = [(i, i) for i in range(3)]
        splits = MemoryDataset(records).split(10)
        assert len(splits) == 3

    def test_all_records_preserved(self):
        records = [(i, i) for i in range(17)]
        splits = MemoryDataset(records).split(4)
        assert len(splits) == 4
        assert [record for split in splits for record in split] == records

    def test_balanced_sizes(self):
        splits = MemoryDataset([(i, i) for i in range(10)]).split(3)
        sizes = sorted(len(split) for split in splits)
        assert sizes == [3, 3, 4]


class TestLocalJobRunner:
    def test_word_count(self):
        result = LocalJobRunner().run(word_count_job(), WORDS_INPUT)
        assert result.output_as_dict() == EXPECTED_COUNTS

    def test_counters(self):
        result = LocalJobRunner().run(word_count_job(), WORDS_INPUT)
        counters = result.counters
        assert counters.get(MAP_INPUT_RECORDS) == 3
        assert counters.get(MAP_OUTPUT_RECORDS) == 13
        assert counters.get(MAP_OUTPUT_BYTES) > 0
        assert counters.get(REDUCE_INPUT_GROUPS) == len(EXPECTED_COUNTS)
        assert counters.get(REDUCE_OUTPUT_RECORDS) == len(EXPECTED_COUNTS)

    def test_combiner_reduces_shuffled_records_not_map_output(self):
        with_combiner = LocalJobRunner().run(
            word_count_job(combiner_factory=SumCombiner, num_map_tasks=1), WORDS_INPUT
        )
        without_combiner = LocalJobRunner().run(
            word_count_job(num_map_tasks=1), WORDS_INPUT
        )
        assert with_combiner.output_as_dict() == without_combiner.output_as_dict()
        assert with_combiner.counters.get(MAP_OUTPUT_RECORDS) == without_combiner.counters.get(
            MAP_OUTPUT_RECORDS
        )
        assert with_combiner.counters.get(COMBINE_OUTPUT_RECORDS) < with_combiner.counters.get(
            MAP_OUTPUT_RECORDS
        )

    def test_partition_output_matches_num_reducers(self):
        result = LocalJobRunner().run(word_count_job(num_reducers=5), WORDS_INPUT)
        assert len(result.partition_output) == 5
        flattened = {key: value for partition in result.partition_output for key, value in partition}
        assert flattened == EXPECTED_COUNTS

    def test_same_key_always_in_same_partition(self):
        result = LocalJobRunner().run(word_count_job(num_reducers=4), WORDS_INPUT)
        seen = {}
        for index, partition in enumerate(result.partition_output):
            for key, _ in partition:
                assert seen.setdefault(key, index) == index

    def test_empty_input(self):
        result = LocalJobRunner().run(word_count_job(), [])
        assert result.output == []
        assert result.is_empty()

    def test_metrics_structure(self):
        result = LocalJobRunner().run(word_count_job(num_map_tasks=2), WORDS_INPUT)
        assert result.metrics.num_map_tasks == 2
        assert result.metrics.num_reduce_tasks == 3
        assert result.metrics.map_output_records == 13
        assert result.metrics.map_output_bytes == result.counters.get(MAP_OUTPUT_BYTES)
        assert result.elapsed_seconds >= 0

    def test_reducer_state_is_per_partition(self):
        class CountKeysReducer(Reducer):
            def __init__(self):
                self.keys_seen = 0

            def reduce(self, key, values, context):
                self.keys_seen += 1

            def cleanup(self, context):
                context.emit("keys-in-partition", self.keys_seen)

        class AllToOnePartitioner(Partitioner):
            def partition(self, key, num_partitions):
                return 0

        job = word_count_job(
            reducer_factory=CountKeysReducer,
            partitioner=AllToOnePartitioner(),
            num_reducers=2,
        )
        result = LocalJobRunner().run(job, WORDS_INPUT)
        by_partition = [dict(partition) for partition in result.partition_output]
        assert by_partition[0]["keys-in-partition"] == len(EXPECTED_COUNTS)
        assert by_partition[1]["keys-in-partition"] == 0

    def test_mapper_setup_and_cleanup_called_once_per_task(self):
        calls = {"setup": 0, "cleanup": 0}

        class TrackingMapper(WordCountMapper):
            def setup(self, context):
                calls["setup"] += 1

            def cleanup(self, context):
                calls["cleanup"] += 1

        job = word_count_job(mapper_factory=TrackingMapper, num_map_tasks=3)
        LocalJobRunner().run(job, WORDS_INPUT)
        assert calls == {"setup": 3, "cleanup": 3}

    def test_cache_visible_to_tasks(self):
        cache = DistributedCache()
        cache.publish("stopwords", {"to", "or", "not"})

        class FilteringMapper(Mapper):
            def setup(self, context):
                self.stopwords = context.cache.get("stopwords")

            def map(self, key, value, context):
                for word in value:
                    if word not in self.stopwords:
                        context.emit(word, 1)

        job = word_count_job(mapper_factory=FilteringMapper)
        result = LocalJobRunner(cache=cache).run(job, WORDS_INPUT)
        assert set(result.output_as_dict()) == {"be", "see", "here", "now"}

    def test_invalid_default_map_tasks(self):
        with pytest.raises(MapReduceError):
            LocalJobRunner(default_map_tasks=0)

    def test_output_keys_property(self):
        result = LocalJobRunner().run(word_count_job(), WORDS_INPUT)
        assert sorted(result.output_keys) == sorted(EXPECTED_COUNTS)
