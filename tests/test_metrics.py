"""Tests for the process-wide metrics registry and Prometheus exposition."""

import json
import math
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.util.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    merge_histogram_snapshots,
    quantile_from_buckets,
)


class TestCounter:
    def test_inc_and_total(self):
        counter = Counter("requests_total", "requests", ("op",))
        counter.inc(op="get")
        counter.inc(2, op="get")
        counter.inc(op="prefix")
        assert counter.value(op="get") == 3
        assert counter.value(op="prefix") == 1
        assert counter.value(op="absent") == 0
        assert counter.total() == 4

    def test_negative_increment_rejected(self):
        counter = Counter("c_total", "c", ())
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_unknown_label_rejected(self):
        counter = Counter("c_total", "c", ("op",))
        with pytest.raises(ValueError):
            counter.inc(shard="3")


class TestGauge:
    def test_set_and_inc(self):
        gauge = Gauge("resident", "resident", ())
        gauge.set(5)
        gauge.inc(-2)
        assert gauge.value() == 3

    def test_callback_evaluated_at_read_time(self):
        state = {"value": 1}
        gauge = Gauge("depth", "depth", ())
        gauge.set_callback(lambda: state["value"])
        assert gauge.value() == 1
        state["value"] = 7
        assert gauge.value() == 7

    def test_dead_callback_is_dropped_from_scrapes(self):
        gauge = Gauge("depth", "depth", ("source",))
        gauge.set_callback(lambda: 1 / 0, source="dead")
        gauge.set(4, source="live")
        # The scrape surfaces (snapshot/render) must survive a callback
        # whose backing object has gone away — the series is omitted.
        assert gauge.snapshot() == [{"labels": {"source": "live"}, "value": 4.0}]
        lines = []
        gauge.render(lines)
        assert lines == ['depth{source="live"} 4']


class TestHistogram:
    def test_buckets_cumulative_and_inf_total(self):
        histogram = Histogram("lat_seconds", "latency", (), buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        lines = []
        histogram.render(lines)
        rendered = "\n".join(lines)
        assert 'lat_seconds_bucket{le="0.1"} 1' in rendered
        assert 'lat_seconds_bucket{le="1"} 2' in rendered
        assert 'lat_seconds_bucket{le="+Inf"} 3' in rendered
        assert "lat_seconds_count 3" in rendered

    def test_non_ascending_buckets_rejected(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram("h", "h", (), buckets=(1.0, 0.5))

    def test_quantiles_clamped_to_observed_range(self):
        histogram = Histogram("h_seconds", "h", ())
        for _ in range(100):
            histogram.observe(0.0005)
        # Interpolation inside the containing bucket must never report an
        # estimate outside what was actually observed.
        assert histogram.quantile(0.50) == pytest.approx(0.0005)
        assert histogram.quantile(0.99) == pytest.approx(0.0005)
        assert histogram.quantile(0.50) <= histogram.quantile(0.99) <= histogram.max()

    def test_quantile_orders_across_spread_observations(self):
        histogram = Histogram("h_seconds", "h", ())
        for value in (0.0001, 0.001, 0.01, 0.1, 0.5):
            for _ in range(20):
                histogram.observe(value)
        p50 = histogram.quantile(0.50)
        p99 = histogram.quantile(0.99)
        assert p50 <= p99 <= histogram.max()
        assert p99 > 0.05  # the slow tail dominates the upper quantile

    def test_overflow_observations_reported_at_observed_max(self):
        top = DEFAULT_LATENCY_BUCKETS[-1]
        histogram = Histogram("h_seconds", "h", ())
        histogram.observe(top * 4)
        assert histogram.quantile(0.99) == pytest.approx(top * 4)

    def test_merge_snapshots_doubles_counts(self):
        histogram = Histogram("h_seconds", "h", ())
        for value in (0.001, 0.01, 0.2):
            histogram.observe(value)
        snapshot = histogram.snapshot()[0]
        merged = merge_histogram_snapshots([snapshot, snapshot])
        assert merged["count"] == 2 * snapshot["count"]
        assert merged["sum"] == pytest.approx(2 * snapshot["sum"])
        # Merging identical shards must not move the quantile estimates.
        assert quantile_from_buckets(
            merged["bounds"], merged["buckets"], 0.5
        ) == pytest.approx(
            quantile_from_buckets(snapshot["bounds"], snapshot["buckets"], 0.5)
        )


class TestRegistry:
    def test_get_or_create_returns_same_metric(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "x", labels=("op",))
        second = registry.counter("x_total", "x", labels=("op",))
        assert first is second

    def test_type_clash_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "x")
        with pytest.raises(ValueError):
            registry.gauge("x_total", "x")

    def test_label_clash_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "x", labels=("op",))
        with pytest.raises(ValueError):
            registry.counter("x_total", "x", labels=("shard",))

    def test_render_is_valid_prometheus_text(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "requests", labels=("op",)).inc(op='we"ird\n')
        registry.gauge("depth", "queue depth").set(3)
        registry.histogram("lat_seconds", "latency").observe(0.01)
        text = registry.render_prometheus()
        assert text.endswith("\n")
        assert "# TYPE req_total counter" in text
        # Label values escape backslash, quote and newline per the format.
        assert 'op="we\\"ird\\n"' in text
        for line in text.splitlines():
            assert "\n" not in line

    def test_default_registry_is_singleton(self):
        assert default_registry() is default_registry()


class TestConcurrency:
    """The registry is hammered from a pool; totals must be exact."""

    def test_concurrent_counter_increments_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "hits", labels=("worker",))
        increments, workers = 2000, 8

        def hammer(worker):
            for _ in range(increments):
                counter.inc(worker=str(worker % 4))

        with ThreadPoolExecutor(max_workers=workers) as pool:
            list(pool.map(hammer, range(workers)))
        assert counter.total() == increments * workers

    def test_concurrent_histogram_observations_are_exact(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_seconds", "latency", labels=("op",))
        observations, workers = 2000, 8

        def hammer(worker):
            for index in range(observations):
                histogram.observe(1e-5 * (1 + index % 50), op="get")

        with ThreadPoolExecutor(max_workers=workers) as pool:
            list(pool.map(hammer, range(workers)))
        series = histogram.snapshot()[0]
        assert series["count"] == observations * workers
        assert sum(series["buckets"]) + 0 == observations * workers

    def test_snapshot_during_writes_is_consistent(self):
        """A snapshot taken mid-write is internally consistent.

        bucket counts must sum to the series count and the sum must be
        bounded by count * max — i.e. never a torn read.
        """
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_seconds", "latency")
        stop = threading.Event()

        def writer():
            value = 0
            while not stop.is_set():
                histogram.observe(1e-5 * (1 + value % 100))
                value += 1

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(200):
                for series in histogram.snapshot():
                    assert sum(series["buckets"]) == series["count"]
                    if series["count"]:
                        assert series["sum"] <= series["count"] * series["max"] * 1.001
                        assert series["min"] <= series["max"]
        finally:
            stop.set()
            for thread in threads:
                thread.join()

    def test_concurrent_get_or_create_yields_one_metric(self):
        registry = MetricsRegistry()
        results = []

        def create():
            results.append(registry.counter("shared_total", "shared"))

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(lambda _: create(), range(32)))
        assert all(metric is results[0] for metric in results)

    def test_snapshot_is_json_serialisable(self):
        registry = MetricsRegistry()
        registry.histogram("lat_seconds", "latency").observe(0.02)
        registry.gauge("g", "g").set(math.pi)
        json.dumps(registry.snapshot())
