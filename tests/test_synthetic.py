"""Tests for the synthetic corpus generators."""

import pytest

from repro.corpus.phrases import NEWSWIRE_PHRASES, WEB_PHRASES, all_phrases, pick_phrase
from repro.corpus.stats import compute_statistics
from repro.corpus.synthetic import (
    NewswireCorpusGenerator,
    SyntheticCorpusConfig,
    WebCorpusGenerator,
    ZipfVocabularyModel,
    make_newswire_sample,
    make_web_sample,
)
from repro.exceptions import CorpusError
from repro.ngrams.sequence import is_subsequence


class TestZipfModel:
    def test_terms_named_by_rank(self):
        model = ZipfVocabularyModel(size=10)
        assert model.term(0) == "t0"
        assert model.term(9) == "t9"

    def test_cumulative_weights_monotone(self):
        weights = ZipfVocabularyModel(size=100).cumulative_weights()
        assert len(weights) == 100
        assert all(b > a for a, b in zip(weights, weights[1:]))

    def test_invalid_parameters(self):
        with pytest.raises(CorpusError):
            ZipfVocabularyModel(size=0)
        with pytest.raises(CorpusError):
            ZipfVocabularyModel(size=10, exponent=0)


class TestPhraseBanks:
    def test_banks_non_empty(self):
        assert NEWSWIRE_PHRASES
        assert WEB_PHRASES
        assert len(all_phrases()) == len(NEWSWIRE_PHRASES) + len(WEB_PHRASES)

    def test_phrases_are_long(self):
        # The paper's point is that these fragments exceed 5 terms.
        assert all(len(phrase) > 5 for phrase in all_phrases())

    def test_pick_phrase_deterministic(self):
        import random

        assert pick_phrase(random.Random(1)) == pick_phrase(random.Random(1))


class TestGenerators:
    def test_determinism(self):
        first = NewswireCorpusGenerator(num_documents=20, seed=5).generate()
        second = NewswireCorpusGenerator(num_documents=20, seed=5).generate()
        assert [d.sentences for d in first] == [d.sentences for d in second]

    def test_different_seeds_differ(self):
        first = NewswireCorpusGenerator(num_documents=20, seed=5).generate()
        second = NewswireCorpusGenerator(num_documents=20, seed=6).generate()
        assert [d.sentences for d in first] != [d.sentences for d in second]

    def test_document_count(self):
        collection = NewswireCorpusGenerator(num_documents=35, seed=1).generate()
        assert len(collection) == 35

    def test_newswire_sentence_length_close_to_nyt(self):
        collection = NewswireCorpusGenerator(num_documents=150, seed=11).generate()
        statistics = compute_statistics(collection)
        assert 15.0 < statistics.sentence_length_mean < 23.0
        assert statistics.sentence_length_stddev > 8.0

    def test_newswire_timestamps_in_range(self):
        collection = NewswireCorpusGenerator(num_documents=30, seed=2).generate()
        for document in collection:
            assert 1987 <= document.timestamp <= 2007

    def test_web_timestamps_are_2009(self):
        collection = WebCorpusGenerator(num_documents=10, seed=2).generate()
        assert all(document.timestamp == 2009 for document in collection)

    def test_web_has_larger_vocabulary_than_newswire(self):
        newswire = NewswireCorpusGenerator(num_documents=80, seed=3).generate()
        web = WebCorpusGenerator(num_documents=80, seed=3).generate()
        assert len(web.distinct_terms()) > len(newswire.distinct_terms())

    def test_long_phrases_injected(self):
        collection = NewswireCorpusGenerator(
            num_documents=80, seed=9, phrase_probability=0.2
        ).generate()
        sentences = [sentence for document in collection for sentence in document.sentences]
        assert any(
            is_subsequence(phrase, sentence)
            for phrase in NEWSWIRE_PHRASES
            for sentence in sentences
        )

    def test_web_boilerplate_duplicated_across_documents(self):
        collection = WebCorpusGenerator(num_documents=60, seed=4).generate()
        first_sentences = [document.sentences[0] for document in collection]
        from repro.corpus.phrases import BOILERPLATE_SNIPPETS

        boilerplate_count = sum(
            1 for sentence in first_sentences if sentence in BOILERPLATE_SNIPPETS
        )
        assert boilerplate_count > len(collection) // 4

    def test_config_overrides_via_kwargs(self):
        generator = NewswireCorpusGenerator(num_documents=5, vocabulary_size=50, seed=1)
        assert generator.config.num_documents == 5
        assert generator.config.vocabulary_size == 50

    def test_invalid_config(self):
        with pytest.raises(CorpusError):
            SyntheticCorpusConfig(num_documents=0)
        with pytest.raises(CorpusError):
            SyntheticCorpusConfig(phrase_probability=1.5)

    def test_convenience_constructors(self):
        assert len(make_newswire_sample(num_documents=12)) == 12
        assert len(make_web_sample(num_documents=9)) == 9
