"""Tests for the spill-to-disk external shuffle."""

import io
import os

import pytest

from repro.exceptions import MapReduceError
from repro.mapreduce.counters import SHUFFLE_SPILLS, SPILLED_BYTES, SPILLED_RECORDS
from repro.mapreduce.job import Partitioner, SortComparator
from repro.mapreduce.runner import LocalJobRunner
from repro.mapreduce.serialization import read_framed_records, write_framed_record
from repro.mapreduce.shuffle import ExternalShuffle, sort_partition
from repro.ngrams.ordering import ReverseLexicographicOrder

from tests.test_runner import WORDS_INPUT, word_count_job


RECORDS = [(("t%d" % (index % 7),), index) for index in range(200)]


class TestFramedRecords:
    def test_roundtrip(self):
        buffer = io.BytesIO()
        records = [(("a", "b"), 1), (("c",), [2, 3]), ("text", {"k": 4})]
        written = sum(write_framed_record(buffer, key, value) for key, value in records)
        assert written == buffer.tell()
        buffer.seek(0)
        assert list(read_framed_records(buffer)) == records

    def test_empty_stream(self):
        assert list(read_framed_records(io.BytesIO(b""))) == []

    def test_truncated_frame_is_detected(self):
        buffer = io.BytesIO()
        write_framed_record(buffer, ("a",), 1)
        data = buffer.getvalue()
        from repro.exceptions import SerializationError

        with pytest.raises(SerializationError):
            list(read_framed_records(io.BytesIO(data[:-1])))


class TestExternalShuffle:
    def _shuffle(self, threshold, comparator=None):
        return ExternalShuffle(
            Partitioner(),
            comparator if comparator is not None else SortComparator(),
            num_partitions=3,
            spill_threshold_bytes=threshold,
        )

    def _expected_partitions(self, records, comparator=None):
        comparator = comparator if comparator is not None else SortComparator()
        partitions = [[], [], []]
        partitioner = Partitioner()
        for key, value in records:
            partitions[partitioner.partition(key, 3)].append((key, value))
        return [sort_partition(partition, comparator) for partition in partitions]

    def test_no_threshold_never_spills(self):
        with self._shuffle(None) as shuffle:
            shuffle.add_records(RECORDS)
            shuffle.finalize()
            assert not shuffle.spilled
            merged = [
                list(shuffle.partition_input(index).sorted_records(SortComparator()))
                for index in range(3)
            ]
        assert merged == self._expected_partitions(RECORDS)

    def test_tiny_threshold_spills_multiple_runs(self):
        """A threshold far below the shuffle volume forces >= 2 merged runs."""
        with self._shuffle(64) as shuffle:
            shuffle.add_records(RECORDS)
            shuffle.finalize()
            assert shuffle.spilled
            assert shuffle.stats.num_spills >= 2
            assert shuffle.stats.spilled_records == len(RECORDS)
            inputs = shuffle.partition_inputs()
            # After a spill the remainder is flushed too: everything on disk.
            assert all(not partition.records for partition in inputs)
            assert any(len(partition.run_paths) >= 2 for partition in inputs)
            merged = [
                list(partition.sorted_records(SortComparator())) for partition in inputs
            ]
            assert merged == self._expected_partitions(RECORDS)

    def test_spilled_merge_matches_in_memory_sort_with_custom_comparator(self):
        comparator = ReverseLexicographicOrder()
        records = [((term, "x"), index) for index, term in enumerate("edcbaabcde")]
        with self._shuffle(16, comparator) as shuffle:
            shuffle.add_records(records)
            shuffle.finalize()
            assert shuffle.spilled
            merged = [
                list(partition.sorted_records(comparator))
                for partition in shuffle.partition_inputs()
            ]
        assert merged == self._expected_partitions(records, comparator)

    def test_fan_in_capped_merge_matches_direct_merge(self, monkeypatch):
        """With more runs than MERGE_FAN_IN, intermediate passes keep the result identical."""
        import repro.mapreduce.shuffle as shuffle_module

        monkeypatch.setattr(shuffle_module, "MERGE_FAN_IN", 3)
        with self._shuffle(16) as shuffle:
            shuffle.add_records(RECORDS)
            shuffle.finalize()
            assert any(
                len(partition.run_paths) > 3 for partition in shuffle.partition_inputs()
            )
            merged = [
                list(partition.sorted_records(SortComparator()))
                for partition in shuffle.partition_inputs()
            ]
        assert merged == self._expected_partitions(RECORDS)

    def test_merge_falls_back_when_fast_key_rejects_keys(self):
        """String keys with an integer-oriented fast key use the comparator path."""

        class IntegerOnlyComparator(SortComparator):
            def sort_key_function(self):
                return lambda key: key + 0  # TypeError for the string keys below

        comparator = IntegerOnlyComparator()
        with self._shuffle(16, comparator) as shuffle:
            shuffle.add_records(RECORDS)
            shuffle.finalize()
            assert shuffle.spilled
            merged = [
                list(partition.sorted_records(comparator))
                for partition in shuffle.partition_inputs()
            ]
        assert merged == self._expected_partitions(RECORDS, comparator)

    def test_merge_is_stable_for_equal_keys(self):
        records = [(("dup",), index) for index in range(50)]
        with self._shuffle(32) as shuffle:
            shuffle.add_records(records)
            shuffle.finalize()
            assert shuffle.stats.num_spills >= 2
            partitioner_index = Partitioner().partition(("dup",), 3)
            merged = list(
                shuffle.partition_input(partitioner_index).sorted_records(SortComparator())
            )
        # Equal keys keep their emission order across spilled runs.
        assert [value for _, value in merged] == list(range(50))

    def test_cleanup_removes_run_files(self):
        shuffle = self._shuffle(32)
        shuffle.add_records(RECORDS)
        shuffle.finalize()
        paths = [path for partition in shuffle.partition_inputs() for path in partition.run_paths]
        assert paths and all(os.path.exists(path) for path in paths)
        shuffle.cleanup()
        assert not any(os.path.exists(path) for path in paths)

    def test_cleanup_removes_run_files_in_explicit_spill_dir(self, tmp_path):
        spill_dir = str(tmp_path / "spills")
        first = ExternalShuffle(
            Partitioner(), SortComparator(), 3, spill_threshold_bytes=32, spill_dir=spill_dir
        )
        second = ExternalShuffle(
            Partitioner(), SortComparator(), 3, spill_threshold_bytes=32, spill_dir=spill_dir
        )
        for shuffle in (first, second):
            shuffle.add_records(RECORDS)
            shuffle.finalize()
        first_paths = [
            path for partition in first.partition_inputs() for path in partition.run_paths
        ]
        second_paths = [
            path for partition in second.partition_inputs() for path in partition.run_paths
        ]
        # Concurrent shuffles sharing one spill_dir must not clobber each other.
        assert not set(first_paths) & set(second_paths)
        assert all(os.path.exists(path) for path in first_paths + second_paths)
        first.cleanup()
        assert not any(os.path.exists(path) for path in first_paths)
        assert all(os.path.exists(path) for path in second_paths)
        second.cleanup()
        assert not any(os.path.exists(path) for path in second_paths)

    def test_add_after_finalize_fails(self):
        shuffle = self._shuffle(None)
        shuffle.finalize()
        with pytest.raises(MapReduceError):
            shuffle.add(("a",), 1)

    def test_invalid_arguments(self):
        with pytest.raises(MapReduceError):
            ExternalShuffle(Partitioner(), SortComparator(), 0)
        with pytest.raises(MapReduceError):
            ExternalShuffle(Partitioner(), SortComparator(), 2, spill_threshold_bytes=0)


class TestSpillingRunner:
    def test_local_runner_spill_matches_default(self):
        baseline = LocalJobRunner().run(word_count_job(), WORDS_INPUT)
        spilling = LocalJobRunner(spill_threshold_bytes=8).run(word_count_job(), WORDS_INPUT)
        assert spilling.output == baseline.output
        assert spilling.partition_output == baseline.partition_output
        assert spilling.counters.get(SHUFFLE_SPILLS) >= 2
        assert spilling.counters.get(SPILLED_RECORDS) > 0
        assert spilling.counters.get(SPILLED_BYTES) > 8

    def test_no_spill_keeps_counters_unchanged(self):
        baseline = LocalJobRunner().run(word_count_job(), WORDS_INPUT)
        high_threshold = LocalJobRunner(spill_threshold_bytes=10_000_000).run(
            word_count_job(), WORDS_INPUT
        )
        assert high_threshold.counters.as_dict() == baseline.counters.as_dict()
        assert baseline.counters.get(SHUFFLE_SPILLS) == 0


class TestRecordCountSpillBudget:
    def test_record_budget_triggers_spills(self):
        shuffle = ExternalShuffle(
            Partitioner(),
            SortComparator(),
            num_partitions=3,
            spill_threshold_records=10,
        )
        with shuffle:
            shuffle.add_records(RECORDS)
            shuffle.finalize()
            assert shuffle.spilled
            assert shuffle.stats.num_spills >= len(RECORDS) // 11
            assert shuffle.stats.spilled_records == len(RECORDS)
            assert shuffle.stats.spilled_bytes > 0
            merged = [
                list(partition.sorted_records(SortComparator()))
                for partition in shuffle.partition_inputs()
            ]
        expected = TestExternalShuffle()._expected_partitions(RECORDS)
        assert merged == expected

    def test_record_budget_output_identical_to_byte_budget(self):
        results = []
        for kwargs in (
            {"spill_threshold_bytes": 64},
            {"spill_threshold_records": 7},
            {},
        ):
            shuffle = ExternalShuffle(
                Partitioner(), SortComparator(), num_partitions=3, **kwargs
            )
            with shuffle:
                shuffle.add_records(RECORDS)
                shuffle.finalize()
                results.append(
                    [
                        list(partition.sorted_records(SortComparator()))
                        for partition in shuffle.partition_inputs()
                    ]
                )
        assert results[0] == results[1] == results[2]

    def test_invalid_record_budget(self):
        with pytest.raises(MapReduceError):
            ExternalShuffle(
                Partitioner(), SortComparator(), 2, spill_threshold_records=0
            )


class TestSpillCodec:
    def test_gzip_spills_merge_byte_identically(self):
        plain_shuffle = ExternalShuffle(
            Partitioner(), SortComparator(), 3, spill_threshold_bytes=64
        )
        gzip_shuffle = ExternalShuffle(
            Partitioner(), SortComparator(), 3, spill_threshold_bytes=64, codec="gzip"
        )
        outputs = []
        for shuffle in (plain_shuffle, gzip_shuffle):
            with shuffle:
                shuffle.add_records(RECORDS)
                shuffle.finalize()
                assert shuffle.spilled
                outputs.append(
                    [
                        list(partition.sorted_records(SortComparator()))
                        for partition in shuffle.partition_inputs()
                    ]
                )
        assert outputs[0] == outputs[1]

    def test_partition_input_carries_codec(self):
        shuffle = ExternalShuffle(
            Partitioner(), SortComparator(), 2, spill_threshold_bytes=64, codec="gzip"
        )
        with shuffle:
            shuffle.add_records(RECORDS)
            shuffle.finalize()
            for partition in shuffle.partition_inputs():
                assert partition.codec == "gzip"
