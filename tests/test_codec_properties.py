"""Property tests for the spill/shard record codec on adversarial records.

The varint-framed record codec (plus optional stream compression) carries
every byte the engine puts on disk: shuffle spill runs, dataset shards and
worker-side map spills.  These tests drive it with the records most likely
to break framing or ordering — empty tuples, zero-length and
multi-kilobyte keys, non-ASCII tokens, single-record runs, and records
straddling shard/spill boundaries — across every available codec.
"""

import io
import random

import pytest

from repro.mapreduce.dataset import FileDataset
from repro.mapreduce.job import Partitioner, SortComparator
from repro.mapreduce.serialization import (
    read_framed_records,
    record_size,
    write_framed_record,
)
from repro.mapreduce.shuffle import ExternalShuffle, shuffle, sort_partition
from repro.util.codecs import available_codecs

CODECS = available_codecs()

#: Records chosen to stress the framing, not the sort (values only).
ADVERSARIAL_VALUES = [
    (),  # empty tuple
    "",  # zero-length string
    "y" * 4096,  # multi-kilobyte payload
    ("ngram", "with", "αβγ", "→", "名詞"),  # non-ASCII tokens
    tuple(range(1500)),  # long integer sequence
    b"\x00\xffraw bytes\n",
    None,
    {"nested": [1, (2, "π")]},
]

#: Sortable adversarial keys (homogeneous type so comparators apply).
ADVERSARIAL_KEYS = [
    "",
    "k",
    "key-αβγ-→",
    "k" * 3000,
    "newline\nand\ttab",
    "\x00leading-nul",
]


def _adversarial_records():
    records = []
    for index, key in enumerate(ADVERSARIAL_KEYS):
        records.append((key, ADVERSARIAL_VALUES[index % len(ADVERSARIAL_VALUES)]))
    # Duplicate keys with distinct values exercise grouping/stability.
    records += [("", 1), ("", 2), ("k" * 3000, ("dup",))]
    return records


class TestFramedRoundtrip:
    @pytest.mark.parametrize("value", ADVERSARIAL_VALUES)
    def test_single_record_roundtrip(self, value):
        buffer = io.BytesIO()
        write_framed_record(buffer, ("key", ""), value)
        buffer.seek(0)
        assert list(read_framed_records(buffer)) == [(("key", ""), value)]

    def test_record_size_defined_for_adversarial_keys(self):
        for key in ADVERSARIAL_KEYS:
            assert record_size(key, ()) > 0

    def test_batch_roundtrip(self):
        records = _adversarial_records()
        buffer = io.BytesIO()
        for key, value in records:
            write_framed_record(buffer, key, value)
        buffer.seek(0)
        assert list(read_framed_records(buffer)) == records


class TestShardCodecProperties:
    @pytest.mark.parametrize("codec", CODECS)
    @pytest.mark.parametrize("records_per_shard", (1, 2, 7))
    def test_dataset_roundtrip_across_shard_boundaries(
        self, codec, records_per_shard, tmp_path
    ):
        """Records straddling shard boundaries survive every codec."""
        records = _adversarial_records()
        dataset = FileDataset.write(
            records,
            directory=str(tmp_path / f"{codec}-{records_per_shard}"),
            records_per_shard=records_per_shard,
            codec=codec,
        )
        assert dataset.to_list() == records
        assert dataset.num_records == len(records)
        # Split boundaries fall inside shards; reassembly is lossless.
        for num_splits in (1, 2, len(records), len(records) * 3):
            splits = dataset.split(num_splits)
            assert [record for split in splits for record in split] == records

    @pytest.mark.parametrize("codec", CODECS)
    def test_seeded_random_records_roundtrip(self, codec, tmp_path):
        rng = random.Random(20260729)
        alphabet = "abαβ→\x00\n名"
        records = []
        for _ in range(200):
            key = "".join(rng.choice(alphabet) for _ in range(rng.randint(0, 40)))
            value = tuple(rng.randrange(1 << 30) for _ in range(rng.randint(0, 20)))
            records.append((key, value))
        dataset = FileDataset.write(
            records,
            directory=str(tmp_path / codec),
            records_per_shard=rng.randint(1, 9),
            codec=codec,
        )
        assert dataset.to_list() == records


class TestSpillCodecProperties:
    def _external(self, records, codec, spill_threshold_records, tmp_path):
        external = ExternalShuffle(
            Partitioner(),
            SortComparator(),
            num_partitions=3,
            spill_threshold_records=spill_threshold_records,
            spill_dir=str(tmp_path),
            codec=codec,
        )
        for key, value in records:
            external.add(key, value)
        external.finalize()
        return external

    @pytest.mark.parametrize("codec", CODECS)
    def test_single_record_runs_merge_to_in_memory_order(self, codec, tmp_path):
        """A budget of one record makes every run one or two records long."""
        records = _adversarial_records()
        expected = shuffle(records, Partitioner(), SortComparator(), 3)
        with self._external(records, codec, 1, tmp_path) as external:
            assert external.stats.num_spills >= len(records) // 2
            assert any(
                len(external.partition_input(index).run_paths) > 1 for index in range(3)
            )
            for index in range(3):
                partition = external.partition_input(index)
                assert (
                    list(partition.sorted_records(SortComparator())) == expected[index]
                ), index

    @pytest.mark.parametrize("codec", CODECS)
    def test_spilled_equals_unspilled_on_random_streams(self, codec, tmp_path):
        rng = random.Random(424242)
        keys = ADVERSARIAL_KEYS + ["t%d" % index for index in range(10)]
        records = [
            (rng.choice(keys), tuple(rng.randrange(100) for _ in range(rng.randint(0, 6))))
            for _ in range(300)
        ]
        expected = shuffle(records, Partitioner(), SortComparator(), 3)
        with self._external(records, codec, rng.randint(2, 25), tmp_path) as external:
            assert external.spilled
            for index in range(3):
                partition = external.partition_input(index)
                assert (
                    list(partition.sorted_records(SortComparator())) == expected[index]
                ), index

    def test_sort_stability_on_duplicate_adversarial_keys(self):
        """Equal keys keep insertion order through sort and grouping."""
        records = [("", index) for index in range(50)] + [("k" * 2000, -1)]
        ordered = sort_partition(records, SortComparator())
        assert [value for key, value in ordered if key == ""] == list(range(50))
