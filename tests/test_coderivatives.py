"""Tests for co-derivative document detection."""

import pytest

from repro.applications.coderivatives import CoderivativePair, find_coderivative_pairs
from repro.corpus.collection import DocumentCollection
from repro.corpus.document import Document
from repro.exceptions import ConfigurationError


def _collection_with_copy():
    shared = "it was the best of times it was the worst of times".split()
    unique_a = "completely unrelated text about gardening and tomatoes".split()
    unique_b = "another unrelated report about football results yesterday".split()
    unique_c = "a third piece covering local weather and traffic updates".split()
    documents = [
        Document.from_sentences(0, [shared, unique_a]),
        Document.from_sentences(1, [unique_b]),
        Document.from_sentences(2, [shared, unique_c]),
    ]
    return DocumentCollection(documents)


class TestFindCoderivativePairs:
    def test_detects_planted_copy(self):
        pairs = find_coderivative_pairs(_collection_with_copy(), min_shared_length=6)
        assert pairs
        top = pairs[0]
        assert top.pair == (0, 2)
        assert top.longest_shared_length >= 12

    def test_unrelated_documents_not_reported(self):
        pairs = find_coderivative_pairs(_collection_with_copy(), min_shared_length=6)
        reported = {pair.pair for pair in pairs}
        assert (0, 1) not in reported
        assert (1, 2) not in reported

    def test_min_shared_length_filters(self):
        collection = DocumentCollection.from_token_lists(
            [
                "a b c d e".split(),
                "a b c x y".split(),
            ]
        )
        # Shared run "a b c" has length 3.
        assert find_coderivative_pairs(collection, min_shared_length=4) == []
        pairs = find_coderivative_pairs(collection, min_shared_length=3)
        assert pairs and pairs[0].longest_shared_length == 3

    def test_max_pairs_truncates(self):
        collection = DocumentCollection.from_token_lists(
            [
                "one two three four five six".split(),
                "one two three four five six".split(),
                "one two three four five six".split(),
            ]
        )
        pairs = find_coderivative_pairs(collection, min_shared_length=4, max_pairs=2)
        assert len(pairs) == 2

    def test_sorted_by_evidence(self):
        long_shared = "alpha beta gamma delta epsilon zeta eta theta".split()
        short_shared = "one two three four".split()
        collection = DocumentCollection(
            [
                Document.from_sentences(0, [long_shared]),
                Document.from_sentences(1, [long_shared]),
                Document.from_sentences(2, [short_shared]),
                Document.from_sentences(3, [short_shared]),
            ]
        )
        pairs = find_coderivative_pairs(collection, min_shared_length=4)
        assert pairs[0].pair == (0, 1)
        assert pairs[0].longest_shared_length > pairs[-1].longest_shared_length

    def test_invalid_parameters(self):
        collection = _collection_with_copy()
        with pytest.raises(ConfigurationError):
            find_coderivative_pairs(collection, min_shared_length=0)
        with pytest.raises(ConfigurationError):
            find_coderivative_pairs(collection, min_documents=1)

    def test_pair_dataclass_properties(self):
        pair = CoderivativePair(
            left_doc_id=3, right_doc_id=9, longest_shared_length=10, shared_ngrams=2, shared_tokens=19
        )
        assert pair.pair == (3, 9)
