"""Tests for the MapReduce job contract objects."""

import pytest

from repro.exceptions import MapReduceError
from repro.mapreduce.context import TaskContext
from repro.mapreduce.job import (
    Combiner,
    IdentityMapper,
    IdentityReducer,
    JobSpec,
    Mapper,
    Partitioner,
    Reducer,
    SortComparator,
)


class _EmitMapper(Mapper):
    def map(self, key, value, context):
        context.emit(key, value)


class _SumReducer(Reducer):
    def reduce(self, key, values, context):
        context.emit(key, sum(values))


class TestJobSpec:
    def test_valid_spec(self):
        spec = JobSpec(
            name="test",
            mapper_factory=_EmitMapper,
            reducer_factory=_SumReducer,
            num_reducers=3,
        )
        assert isinstance(spec.make_mapper(), Mapper)
        assert isinstance(spec.make_reducer(), Reducer)
        assert spec.make_combiner() is None

    def test_rejects_zero_reducers(self):
        with pytest.raises(MapReduceError):
            JobSpec(
                name="bad",
                mapper_factory=_EmitMapper,
                reducer_factory=_SumReducer,
                num_reducers=0,
            )

    def test_rejects_zero_map_tasks(self):
        with pytest.raises(MapReduceError):
            JobSpec(
                name="bad",
                mapper_factory=_EmitMapper,
                reducer_factory=_SumReducer,
                num_map_tasks=0,
            )

    def test_factory_type_checks(self):
        spec = JobSpec(
            name="bad-factories",
            mapper_factory=lambda: object(),  # type: ignore[return-value]
            reducer_factory=lambda: object(),  # type: ignore[return-value]
            combiner_factory=lambda: object(),  # type: ignore[return-value]
        )
        with pytest.raises(MapReduceError):
            spec.make_mapper()
        with pytest.raises(MapReduceError):
            spec.make_reducer()
        with pytest.raises(MapReduceError):
            spec.make_combiner()

    def test_combiner_factory(self):
        class _SumCombiner(Combiner):
            def reduce(self, key, values, context):
                context.emit(key, sum(values))

        spec = JobSpec(
            name="with-combiner",
            mapper_factory=_EmitMapper,
            reducer_factory=_SumReducer,
            combiner_factory=_SumCombiner,
        )
        assert isinstance(spec.make_combiner(), Combiner)


class TestDefaults:
    def test_identity_mapper(self):
        context = TaskContext()
        IdentityMapper().map("k", "v", context)
        assert context.output == [("k", "v")]

    def test_identity_reducer(self):
        context = TaskContext()
        IdentityReducer().reduce("k", [1, 2, 3], context)
        assert context.output == [("k", 1), ("k", 2), ("k", 3)]

    def test_default_partitioner_in_range(self):
        partitioner = Partitioner()
        for key in (("a",), ("b", "c"), 5, "word"):
            assert 0 <= partitioner.partition(key, 4) < 4

    def test_default_comparator_natural_order(self):
        comparator = SortComparator()
        assert comparator.compare((1, 2), (1, 3)) < 0
        assert comparator.compare((2,), (1, 9)) > 0
        assert comparator.compare("a", "a") == 0

    def test_default_comparator_exposes_identity_key(self):
        key_function = SortComparator().sort_key_function()
        assert key_function is not None
        assert key_function((3, 1)) == (3, 1)

    def test_subclass_without_key_function_falls_back(self):
        class Reversed(SortComparator):
            def compare(self, left, right):
                return -super().compare(left, right)

        assert Reversed().sort_key_function() is None

    def test_mapper_reducer_base_raise(self):
        with pytest.raises(NotImplementedError):
            Mapper().map(1, 2, TaskContext())
        with pytest.raises(NotImplementedError):
            Reducer().reduce(1, [2], TaskContext())


class TestTaskContext:
    def test_emit_and_drain(self):
        context = TaskContext()
        context.emit("a", 1)
        context.emit("b", 2)
        drained = context.drain()
        assert drained == [("a", 1), ("b", 2)]
        assert context.output == []

    def test_increment_counter(self):
        context = TaskContext()
        context.increment("custom", 3)
        assert context.counters.get("custom") == 3
