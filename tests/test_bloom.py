"""Tests for the per-block Bloom filter: guarantees, rates, persistence."""

import random

import pytest

from repro.exceptions import StoreError
from repro.util.bloom import BloomFilter, optimal_num_hashes


def sample_keys(count, seed, tag):
    rng = random.Random(seed)
    return [
        (tag, tuple(rng.randint(0, 10_000) for _ in range(rng.randint(1, 4))))
        for _ in range(count)
    ]


class TestBloomFilter:
    def test_no_false_negatives_ever(self):
        """The hard guarantee: every added key answers might_contain."""
        for count in (1, 7, 64, 1000):
            keys = sample_keys(count, seed=count, tag="in")
            bloom = BloomFilter.build(keys)
            assert all(bloom.might_contain(key) for key in keys)
            assert all(key in bloom for key in keys)

    def test_false_positive_rate_near_budget(self):
        """10 bits/key targets ~1%; allow generous slack, reject garbage."""
        keys = sample_keys(2000, seed=3, tag="member")
        bloom = BloomFilter.build(keys, bits_per_key=10)
        probes = sample_keys(4000, seed=99, tag="absent")
        false_positives = sum(1 for key in probes if bloom.might_contain(key))
        assert false_positives / len(probes) < 0.05

    def test_fewer_bits_more_false_positives(self):
        keys = sample_keys(1000, seed=5, tag="member")
        probes = sample_keys(3000, seed=55, tag="absent")

        def rate(bits_per_key):
            bloom = BloomFilter.build(keys, bits_per_key=bits_per_key)
            return sum(1 for key in probes if bloom.might_contain(key))

        assert rate(2) > rate(10) >= rate(18)

    def test_mixed_key_types(self):
        """Any stable_hash-able key works: the store hashes ngram tuples."""
        keys = [(1, 2, 3), ("the", "quick", "fox"), "single", 42, ("mixed", 7)]
        bloom = BloomFilter.build(keys)
        assert all(bloom.might_contain(key) for key in keys)

    def test_empty_key_set_rejects_everything_or_nothing_safely(self):
        bloom = BloomFilter.build([])
        assert not bloom.might_contain((1, 2))

    def test_deterministic_across_builds(self):
        """Persisted filters must be reproducible: stable_hash, no salt."""
        keys = sample_keys(500, seed=17, tag="d")
        assert BloomFilter.build(keys).to_spec() == BloomFilter.build(keys).to_spec()

    def test_spec_round_trip(self):
        keys = sample_keys(300, seed=23, tag="rt")
        bloom = BloomFilter.build(keys)
        restored = BloomFilter.from_spec(bloom.to_spec())
        assert restored.num_bits == bloom.num_bits
        assert restored.num_hashes == bloom.num_hashes
        probes = keys + sample_keys(300, seed=24, tag="probe")
        assert [restored.might_contain(key) for key in probes] == [
            bloom.might_contain(key) for key in probes
        ]

    def test_from_spec_none_passes_through(self):
        """Legacy block indexes carry no filter; readers get None, not an error."""
        assert BloomFilter.from_spec(None) is None

    def test_malformed_spec_is_a_clean_error(self):
        with pytest.raises(StoreError, match="malformed bloom filter spec"):
            BloomFilter.from_spec((8,))
        with pytest.raises(StoreError, match="malformed bloom filter spec"):
            BloomFilter.from_spec("junk")

    def test_constructor_validation(self):
        with pytest.raises(StoreError, match="num_bits"):
            BloomFilter(0, 1, b"")
        with pytest.raises(StoreError, match="num_hashes"):
            BloomFilter(8, 0, b"\x00")
        with pytest.raises(StoreError, match="bit array"):
            BloomFilter(16, 2, b"\x00")  # 16 bits need 2 bytes

    def test_build_validation(self):
        with pytest.raises(StoreError, match="bits_per_key"):
            BloomFilter.build([(1,)], bits_per_key=0)

    def test_optimal_num_hashes_clamped(self):
        assert optimal_num_hashes(1) == 1
        assert optimal_num_hashes(10) == 7  # ln2 * 10
        assert optimal_num_hashes(1000) == 16
