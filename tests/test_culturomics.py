"""Tests for the culturomics (time-series analysis) application."""

import pytest

from repro.applications.culturomics import (
    TrendReport,
    normalise_series,
    peak_bucket,
    trend_report,
    yearly_token_totals,
)
from repro.algorithms.extensions import SuffixSigmaTimeSeriesCounter
from repro.config import NGramJobConfig
from repro.corpus.collection import DocumentCollection
from repro.exceptions import ConfigurationError
from repro.ngrams.timeseries import NGramTimeSeriesCollection, TimeSeries


class TestNormalisation:
    def test_normalise_series(self):
        series = TimeSeries.from_mapping({1990: 2, 1991: 4})
        totals = {1990: 10, 1991: 10}
        assert normalise_series(series, totals) == {1990: 0.2, 1991: 0.4}

    def test_missing_totals_omitted(self):
        series = TimeSeries.from_mapping({1990: 2, 1991: 4})
        assert normalise_series(series, {1990: 10}) == {1990: 0.2}

    def test_zero_total_omitted(self):
        series = TimeSeries.from_mapping({1990: 2})
        assert normalise_series(series, {1990: 0}) == {}


class TestPeak:
    def test_peak_bucket(self):
        series = TimeSeries.from_mapping({1990: 2, 1995: 9, 2000: 3})
        assert peak_bucket(series) == 1995

    def test_peak_tie_earliest_wins(self):
        series = TimeSeries.from_mapping({1990: 5, 2000: 5})
        assert peak_bucket(series) == 1990

    def test_peak_of_empty_series(self):
        assert peak_bucket(TimeSeries()) is None


class TestTrendReport:
    def _collection(self):
        collection = NGramTimeSeriesCollection()
        collection.set(("rising",), TimeSeries.from_mapping({1990: 1, 1995: 5, 2000: 9}))
        collection.set(("falling",), TimeSeries.from_mapping({1990: 9, 1995: 5, 2000: 1}))
        collection.set(("flat",), TimeSeries.from_mapping({1990: 3, 1995: 3, 2000: 3}))
        collection.set(("rare",), TimeSeries.from_mapping({1990: 1}))
        return collection

    def test_slope_signs(self):
        reports = {report.ngram: report for report in trend_report(self._collection())}
        assert reports[("rising",)].rising
        assert reports[("falling",)].declining
        assert not reports[("flat",)].rising and not reports[("flat",)].declining

    def test_sorted_by_slope_descending(self):
        reports = trend_report(self._collection())
        slopes = [report.slope for report in reports]
        assert slopes == sorted(slopes, reverse=True)

    def test_min_total_filter(self):
        reports = trend_report(self._collection(), min_total=5)
        assert ("rare",) not in {report.ngram for report in reports}

    def test_invalid_min_total(self):
        with pytest.raises(ConfigurationError):
            trend_report(self._collection(), min_total=0)

    def test_report_fields(self):
        reports = {report.ngram: report for report in trend_report(self._collection())}
        rising = reports[("rising",)]
        assert isinstance(rising, TrendReport)
        assert rising.total == 15
        assert rising.peak == 2000
        assert rising.first_bucket == 1990
        assert rising.last_bucket == 2000

    def test_normalised_slopes_ignore_corpus_growth(self):
        collection = NGramTimeSeriesCollection()
        # The phrase doubles because the corpus doubles: relative use is flat.
        collection.set(("phrase",), TimeSeries.from_mapping({1990: 10, 2000: 20}))
        totals = {1990: 1000, 2000: 2000}
        normalised = trend_report(collection, yearly_totals=totals)
        raw = trend_report(collection)
        assert raw[0].slope > 0
        assert normalised[0].slope == pytest.approx(0.0)


class TestEndToEnd:
    def test_with_suffix_sigma_time_series(self):
        collection = DocumentCollection.from_token_lists(
            [
                "hope and change".split(),
                "hope and change".split(),
                "fear and doubt".split(),
                "hope and change".split(),
            ],
            timestamps=[2000, 2004, 2000, 2008],
        )
        counter = SuffixSigmaTimeSeriesCounter(NGramJobConfig(min_frequency=2, max_length=3))
        counter.run(collection)
        totals = yearly_token_totals(collection)
        assert totals == {2000: 6, 2004: 3, 2008: 3}
        reports = trend_report(counter.time_series, yearly_totals=totals, min_total=2)
        by_ngram = {report.ngram: report for report in reports}
        assert ("hope", "and", "change") in by_ngram

    def test_yearly_totals_skip_missing_timestamps(self):
        collection = DocumentCollection.from_token_lists(
            [["a", "b"], ["c"]], timestamps=[1999, None]
        )
        assert yearly_token_totals(collection) == {1999: 2}
