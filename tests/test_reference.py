"""Tests for the brute-force reference implementations."""

from repro.ngrams.reference import (
    reference_closed,
    reference_document_frequencies,
    reference_maximal,
    reference_ngram_statistics,
    reference_time_series,
)
from repro.ngrams.statistics import NGramStatistics


class TestReferenceCounting:
    def test_running_example(self, running_example, running_example_expected):
        statistics = reference_ngram_statistics(
            running_example.records(), min_frequency=3, max_length=3
        )
        assert statistics.as_dict() == running_example_expected

    def test_unfiltered_counts(self, running_example):
        statistics = reference_ngram_statistics(running_example.records())
        assert statistics.frequency(("x", "x")) == 1
        assert statistics.frequency(("b", "a", "x", "b")) == 2

    def test_document_frequencies(self, running_example):
        df = reference_document_frequencies(running_example.records(), min_frequency=1)
        assert df.frequency(("x",)) == 3      # x occurs in all three documents
        assert df.frequency(("x", "x")) == 1  # only d1
        assert df.frequency(("a", "x", "b")) == 3

    def test_df_never_exceeds_cf(self, small_newswire):
        records = list(small_newswire.records())
        cf = reference_ngram_statistics(records, max_length=3)
        df = reference_document_frequencies(records, max_length=3)
        for ngram, frequency in df.items():
            assert frequency <= cf.frequency(ngram)


class TestMaximalClosed:
    def test_running_example_maximal(self, running_example):
        frequent = reference_ngram_statistics(
            running_example.records(), min_frequency=3, max_length=3
        )
        maximal = reference_maximal(frequent)
        assert maximal.as_dict() == {("a", "x", "b"): 3}

    def test_running_example_closed(self, running_example):
        frequent = reference_ngram_statistics(
            running_example.records(), min_frequency=3, max_length=3
        )
        closed = reference_closed(frequent)
        assert closed.as_dict() == {
            ("a", "x", "b"): 3,
            ("x", "b"): 4,
            ("b",): 5,
            ("x",): 7,
        }

    def test_maximal_subset_of_closed(self, small_newswire):
        frequent = reference_ngram_statistics(
            small_newswire.records(), min_frequency=3, max_length=4
        )
        maximal = set(reference_maximal(frequent))
        closed = set(reference_closed(frequent))
        assert maximal <= closed
        assert closed <= set(frequent)

    def test_single_ngram_is_maximal(self):
        statistics = NGramStatistics({("a", "b"): 5})
        assert reference_maximal(statistics).as_dict() == {("a", "b"): 5}
        assert reference_closed(statistics).as_dict() == {("a", "b"): 5}


class TestTimeSeries:
    def test_counts_per_timestamp(self):
        records = [(0, ("a", "b")), (1, ("a",)), (2, ("a", "a"))]
        timestamps = {0: 1990, 1: 1991, 2: 1990}
        series = reference_time_series(records, timestamps, min_frequency=2)
        assert series[("a",)] == {1990: 3, 1991: 1}

    def test_documents_without_timestamp_count_towards_total(self):
        records = [(0, ("a",)), (1, ("a",))]
        timestamps = {0: 2000, 1: None}
        series = reference_time_series(records, timestamps, min_frequency=2)
        # total cf is 2 (>= tau) but only the timestamped document contributes.
        assert series[("a",)] == {2000: 1}

    def test_infrequent_ngrams_dropped(self):
        records = [(0, ("a", "b"))]
        series = reference_time_series(records, {0: 2000}, min_frequency=2)
        assert series == {}
