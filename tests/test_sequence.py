"""Tests for sequence predicates and n-gram enumeration (Section II)."""

from hypothesis import given, strategies as st

from repro.ngrams.sequence import (
    concatenate,
    count_occurrences,
    enumerate_ngrams,
    is_prefix,
    is_subsequence,
    is_suffix,
    longest_common_prefix,
    suffixes,
)

terms = st.integers(min_value=0, max_value=5)
sequences = st.lists(terms, max_size=12).map(tuple)


class TestPredicates:
    def test_prefix(self):
        assert is_prefix((1, 2), (1, 2, 3))
        assert is_prefix((), (1, 2))
        assert is_prefix((1, 2, 3), (1, 2, 3))
        assert not is_prefix((2,), (1, 2))
        assert not is_prefix((1, 2, 3, 4), (1, 2, 3))

    def test_suffix(self):
        assert is_suffix((2, 3), (1, 2, 3))
        assert is_suffix((), (1,))
        assert is_suffix((1, 2, 3), (1, 2, 3))
        assert not is_suffix((1,), (1, 2))
        assert not is_suffix((0, 1, 2, 3), (1, 2, 3))

    def test_subsequence_is_contiguous(self):
        assert is_subsequence((2, 3), (1, 2, 3, 4))
        assert not is_subsequence((1, 3), (1, 2, 3))  # scattered does not count
        assert is_subsequence((), (1, 2))
        assert is_subsequence((1, 2), (1, 2))

    def test_count_occurrences(self):
        assert count_occurrences(("x",), ("a", "x", "b", "x", "x")) == 3
        assert count_occurrences(("x", "x"), ("x", "x", "x")) == 2  # overlapping
        assert count_occurrences(("a", "b"), ("a", "b", "a", "b")) == 2
        assert count_occurrences((), (1, 2)) == 0
        assert count_occurrences((1, 2, 3), (1, 2)) == 0

    def test_longest_common_prefix(self):
        assert longest_common_prefix((1, 2, 3), (1, 2, 4)) == 2
        assert longest_common_prefix((1, 2), (1, 2, 3)) == 2
        assert longest_common_prefix((5,), (1,)) == 0
        assert longest_common_prefix((), (1, 2)) == 0

    def test_concatenate(self):
        assert concatenate((1, 2), (3,)) == (1, 2, 3)
        assert concatenate((), ()) == ()

    @given(sequences, sequences)
    def test_prefix_implies_subsequence(self, r, s):
        if is_prefix(r, s):
            assert is_subsequence(r, s)

    @given(sequences, sequences)
    def test_suffix_implies_subsequence(self, r, s):
        if is_suffix(r, s):
            assert is_subsequence(r, s)

    @given(sequences, sequences)
    def test_subsequence_iff_positive_occurrences(self, r, s):
        if len(r) > 0:
            assert is_subsequence(r, s) == (count_occurrences(r, s) > 0)

    @given(sequences, sequences)
    def test_lcp_is_a_common_prefix(self, r, s):
        length = longest_common_prefix(r, s)
        assert r[:length] == s[:length]
        if length < min(len(r), len(s)):
            assert r[length] != s[length]


class TestEnumeration:
    def test_enumerate_all_ngrams(self):
        assert set(enumerate_ngrams((1, 2, 3))) == {
            (1,), (2,), (3,), (1, 2), (2, 3), (1, 2, 3),
        }

    def test_enumerate_with_max_length(self):
        assert set(enumerate_ngrams((1, 2, 3), max_length=2)) == {
            (1,), (2,), (3,), (1, 2), (2, 3),
        }

    def test_enumerate_empty(self):
        assert list(enumerate_ngrams(())) == []

    def test_enumerate_counts_duplicates(self):
        ngrams = list(enumerate_ngrams(("x", "x")))
        assert ngrams.count(("x",)) == 2

    def test_suffixes_untruncated(self):
        assert list(suffixes((1, 2, 3))) == [(1, 2, 3), (2, 3), (3,)]

    def test_suffixes_truncated(self):
        assert list(suffixes((1, 2, 3, 4), max_length=2)) == [(1, 2), (2, 3), (3, 4), (4,)]

    @given(sequences, st.integers(min_value=1, max_value=5))
    def test_ngram_count_formula(self, sequence, max_length):
        ngrams = list(enumerate_ngrams(sequence, max_length))
        n = len(sequence)
        expected = sum(min(max_length, n - b) for b in range(n))
        assert len(ngrams) == expected
        assert all(1 <= len(ngram) <= max_length for ngram in ngrams)

    @given(sequences, st.integers(min_value=1, max_value=5))
    def test_every_suffix_is_emitted_once_per_position(self, sequence, max_length):
        emitted = list(suffixes(sequence, max_length))
        assert len(emitted) == len(sequence)
        for begin, suffix in enumerate(emitted):
            assert suffix == tuple(sequence[begin : begin + max_length])

    @given(sequences)
    def test_ngrams_are_subsequences(self, sequence):
        for ngram in enumerate_ngrams(sequence, max_length=3):
            assert is_subsequence(ngram, sequence)
