"""Tests for APRIORI-SCAN (Algorithm 2)."""


from repro.algorithms.apriori_scan import AprioriScanCounter
from repro.algorithms.naive import NaiveCounter
from repro.config import NGramJobConfig
from repro.ngrams.reference import (
    reference_document_frequencies,
    reference_ngram_statistics,
)


class TestAprioriScanCounter:
    def test_running_example(self, running_example, running_example_expected):
        config = NGramJobConfig(min_frequency=3, max_length=3)
        result = AprioriScanCounter(config).run(running_example)
        assert result.statistics.as_dict() == running_example_expected
        assert result.algorithm == "APRIORI-SCAN"

    def test_one_job_per_length(self, running_example):
        config = NGramJobConfig(min_frequency=3, max_length=3)
        result = AprioriScanCounter(config).run(running_example)
        # sigma = 3 and frequent 3-grams exist, so exactly 3 scans are needed.
        assert result.num_jobs == 3

    def test_terminates_early_when_no_output(self, running_example):
        # With tau=4 no 2-gram is frequent (max cf of a bigram is 4 for "x b")
        # ... actually "x b" has cf 4, so 3-grams are checked and none pass;
        # the run stops after the empty third scan even though sigma is 10.
        config = NGramJobConfig(min_frequency=4, max_length=10)
        result = AprioriScanCounter(config).run(running_example)
        assert result.num_jobs <= 4
        assert result.statistics.as_dict() == {("x",): 7, ("b",): 5, ("x", "b"): 4}

    def test_emits_fewer_records_than_naive(self, small_newswire):
        config = NGramJobConfig(min_frequency=5, max_length=4)
        scan_result = AprioriScanCounter(config).run(small_newswire)
        naive_result = NaiveCounter(config).run(small_newswire)
        assert scan_result.statistics == naive_result.statistics
        assert scan_result.map_output_records <= naive_result.map_output_records

    def test_matches_reference_on_synthetic_corpus(self, small_web):
        config = NGramJobConfig(min_frequency=4, max_length=4)
        result = AprioriScanCounter(config).run(small_web)
        expected = reference_ngram_statistics(
            small_web.records(), min_frequency=4, max_length=4
        )
        assert result.statistics == expected

    def test_document_frequency_mode(self, running_example):
        config = NGramJobConfig(min_frequency=2, max_length=3, count_document_frequency=True)
        result = AprioriScanCounter(config).run(running_example)
        expected = reference_document_frequencies(
            running_example.records(), min_frequency=2, max_length=3
        )
        assert result.statistics == expected

    def test_without_combiner(self, running_example, running_example_expected):
        config = NGramJobConfig(min_frequency=3, max_length=3, use_combiner=False)
        result = AprioriScanCounter(config).run(running_example)
        assert result.statistics.as_dict() == running_example_expected

    def test_with_kvstore_dictionary(self, running_example, running_example_expected):
        config = NGramJobConfig(min_frequency=3, max_length=3)
        counter = AprioriScanCounter(config, dictionary_memory_budget=2)
        result = counter.run(running_example)
        assert result.statistics.as_dict() == running_example_expected

    def test_unbounded_sigma_terminates(self, running_example):
        config = NGramJobConfig(min_frequency=3, max_length=None)
        result = AprioriScanCounter(config).run(running_example)
        expected = reference_ngram_statistics(running_example.records(), min_frequency=3)
        assert result.statistics == expected

    def test_with_document_splitting(self, small_newswire):
        config = NGramJobConfig(min_frequency=5, max_length=3, split_documents=True)
        result = AprioriScanCounter(config).run(small_newswire)
        expected = reference_ngram_statistics(
            small_newswire.records(), min_frequency=5, max_length=3
        )
        assert result.statistics == expected

    def test_empty_collection(self):
        from repro.corpus.collection import DocumentCollection

        config = NGramJobConfig(min_frequency=1, max_length=3)
        result = AprioriScanCounter(config).run(DocumentCollection())
        assert len(result.statistics) == 0
        assert result.num_jobs == 1
