"""Tests for the store query server, its client, and reader thread-safety."""

import json
import os
import random
import signal
import socket
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.cli import main
from repro.config import ServerConfig, StoreConfig
from repro.exceptions import StoreConnectionError, StoreError
from repro.ngramstore import (
    BlockCache,
    NGramStore,
    NGramStoreServer,
    StoreClient,
    build_store,
)
from repro.ngramstore.server import ServerMetrics, percentile


def make_records(count=600, seed=13, max_term=50, max_len=4):
    rng = random.Random(seed)
    keys = set()
    while len(keys) < count:
        keys.add(tuple(rng.randint(0, max_term) for _ in range(rng.randint(1, max_len))))
    return [(key, rng.randint(1, 400)) for key in sorted(keys)]


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("server-store") / "store")
    build_store(
        make_records(),
        directory,
        store=StoreConfig(num_partitions=3, records_per_block=32),
        metadata={"origin": "test_store_server"},
    )
    return directory


@pytest.fixture()
def server(store_dir):
    with NGramStoreServer(
        store_dir, config=ServerConfig(port=0, cache_blocks=16, max_clients=8)
    ) as running:
        yield running


@pytest.fixture()
def expected():
    return dict(make_records())


class TestProtocol:
    def test_get_prefix_top_k_match_direct_store(self, server, store_dir, expected):
        with NGramStore.open(store_dir) as direct, StoreClient(server.host, server.port) as client:
            for key in list(expected)[::19]:
                assert client.get(key) == direct.get(key)
            assert client.get((9999,)) is None
            assert client.get((9999,), default=-1) == -1
            first_terms = sorted({key[0] for key in expected})
            for term in first_terms[:5]:
                assert client.prefix((term,)) == list(direct.prefix((term,)))
            assert client.top_k(10) == direct.top_k(10)
            assert client.top_k(10, order="key") == direct.top_k(10, order="key")

    def test_prefix_limit_truncates(self, server, store_dir, expected):
        term = sorted({key[0] for key in expected})[0]
        with NGramStore.open(store_dir) as direct, StoreClient(server.host, server.port) as client:
            full = list(direct.prefix((term,)))
            assert len(full) > 2
            limited = client.prefix((term,), limit=2)
            assert limited == full[:2]

    def test_stats_reports_manifest(self, server, expected):
        with StoreClient(server.host, server.port) as client:
            stats = client.stats()
            assert stats["num_records"] == len(expected)
            assert stats["num_partitions"] == 3
            assert stats["metadata"]["origin"] == "test_store_server"

    def test_ping_and_server_stats(self, server):
        with StoreClient(server.host, server.port) as client:
            assert client.ping()
            client.top_k(3)
            stats = client.server_stats()
            assert stats["requests"] >= 2
            assert stats["operations"]["ping"]["count"] >= 1
            assert "p50_us" in stats["operations"]["ping"]
            assert stats["cache"]["capacity_blocks"] == 16
            assert stats["cache"]["misses"] > 0

    def test_bad_requests_answered_not_fatal(self, server):
        with StoreClient(server.host, server.port) as client:
            with pytest.raises(StoreError, match="unknown op"):
                client._call({"op": "frobnicate"})
            with pytest.raises(StoreError, match="JSON array"):
                client._call({"op": "get", "ngram": "not-a-list"})
            with pytest.raises(StoreError, match="k must be"):
                client.top_k(0)
            with pytest.raises(StoreError, match="order"):
                client.top_k(3, order="bogus")
            with pytest.raises(StoreError, match="limit"):
                client._call({"op": "prefix", "tokens": [1], "limit": -4})
            # The connection survived every error above.
            assert client.ping()

    def test_malformed_json_is_an_error_response(self, server):
        with socket.create_connection((server.host, server.port), timeout=10) as raw:
            raw.sendall(b"this is not json\n")
            response = json.loads(raw.makefile("rb").readline())
            assert response["ok"] is False

    def test_errors_counted_in_metrics(self, server):
        with StoreClient(server.host, server.port) as client:
            before = client.server_stats()["errors"]
            with pytest.raises(StoreError):
                client._call({"op": "nope"})
            assert client.server_stats()["errors"] == before + 1

    def test_unknown_ops_share_one_metrics_bucket(self, server):
        """Client-chosen op strings must not grow the metrics dict unboundedly."""
        with StoreClient(server.host, server.port) as client:
            for index in range(5):
                with pytest.raises(StoreError):
                    client._call({"op": f"evil-{index}"})
            operations = client.server_stats()["operations"]
            assert operations["invalid"]["count"] >= 5
            assert not any(name.startswith("evil-") for name in operations)

    def test_prefix_server_cap(self, server, store_dir, expected, monkeypatch):
        """Uncapped prefix responses are bounded server-side, loudly."""
        import repro.ngramstore.api as api_module

        term = sorted({key[0] for key in expected})[0]
        full = [record for record in sorted(expected.items()) if record[0][0] == term]
        assert len(full) > 2
        # The cap is enforced by the shared QueryEngine (repro.ngramstore.api).
        monkeypatch.setattr(api_module, "MAX_PREFIX_RECORDS", 2)
        with StoreClient(server.host, server.port) as client:
            # Explicit limits within the cap still work...
            assert client.prefix((term,), limit=2) == full[:2]
            # ...but an uncapped request that got truncated raises rather
            # than silently returning a partial answer...
            with pytest.raises(StoreError, match="truncated"):
                client.prefix((term,))
            # ...and so does an explicit limit above the server cap.
            with pytest.raises(StoreError, match="truncated"):
                client.prefix((term,), limit=len(full) + 5)

    def test_top_k_k_capped(self, server):
        from repro.ngramstore.server import MAX_TOP_K

        with StoreClient(server.host, server.port) as client:
            with pytest.raises(StoreError, match="must be <="):
                client.top_k(MAX_TOP_K + 1)


class TestConcurrency:
    def test_concurrent_clients_byte_identical(self, server, store_dir, expected):
        """Many threads, own connections each: responses == direct reads."""
        with NGramStore.open(store_dir) as direct:
            reference_top = direct.top_k(10)
            keys = sorted(expected)

            def hammer(seed):
                rng = random.Random(seed)
                with StoreClient(server.host, server.port) as client:
                    for _ in range(40):
                        key = rng.choice(keys)
                        assert client.get(key) == expected[key]
                    missing = (10_000, seed)
                    assert client.get(missing) is None
                    term = rng.choice(keys)[0]
                    assert client.prefix((term,)) == [
                        record for record in sorted(expected.items()) if record[0][0] == term
                    ]
                    assert client.top_k(10) == reference_top
                    return True

            with ThreadPoolExecutor(max_workers=8) as pool:
                assert all(pool.map(hammer, range(12)))

    def test_max_clients_backpressure(self, store_dir, expected):
        """More concurrent clients than handler slots: all still served."""
        with NGramStoreServer(
            store_dir, config=ServerConfig(port=0, cache_blocks=8, max_clients=2)
        ) as server:
            sample = sorted(expected)[::37]

            def query(seed):
                with StoreClient(server.host, server.port) as client:
                    time.sleep(0.01)
                    return [client.get(key) for key in sample]

            reference = [expected[key] for key in sample]
            with ThreadPoolExecutor(max_workers=6) as pool:
                results = list(pool.map(query, range(6)))
            assert all(result == reference for result in results)
            assert server.metrics.snapshot()["connections_accepted"] == 6

    def test_graceful_shutdown(self, store_dir):
        server = NGramStoreServer(store_dir, config=ServerConfig(port=0))
        host, port = server.start()
        client = StoreClient(host, port)
        assert client.ping()
        server.close()
        # The open connection is dropped; a fresh connect must not reach a
        # live handler either (loopback self-connect may let the TCP dial
        # itself succeed, so assert at the protocol level, not connect()).
        with pytest.raises((StoreError, OSError, ValueError)):
            client.ping()
        client.close()
        with pytest.raises((StoreError, OSError, ValueError)):
            with StoreClient(
                host, port, connect_timeout=2, read_timeout=2, max_retries=0
            ) as late:
                late.ping()
        # Idempotent close, and the underlying store is closed too.
        server.close()
        with pytest.raises(StoreError, match="closed"):
            server.store.get((1,))

    def test_double_start_rejected(self, store_dir):
        with NGramStoreServer(store_dir, config=ServerConfig(port=0)) as server:
            with pytest.raises(StoreError, match="already started"):
                server.start()

    def test_caller_managed_store_reports_real_cache_stats(self, store_dir, expected):
        """A store with private per-table caches must not report zeros."""
        store = NGramStore.open(store_dir, cache_blocks=8)
        with NGramStoreServer(store, config=ServerConfig(port=0)) as server:
            with StoreClient(server.host, server.port) as client:
                for key in sorted(expected)[::31]:
                    assert client.get(key) == expected[key]
                stats = client.server_stats()
            assert stats["cache"]["misses"] > 0  # per-table aggregate, not an orphan cache
            assert "capacity_blocks" not in stats["cache"]  # no single shared cache exists


class TestReaderThreadSafety:
    """The satellite regression: lazy init + cache under a thread pool."""

    def test_hammered_store_opens_each_table_once(self, store_dir, expected, monkeypatch):
        import repro.ngramstore.reader as reader_module

        opens = []
        real_table = reader_module.Table

        class CountingTable(real_table):
            def __init__(self, path, **kwargs):
                opens.append(path)
                super().__init__(path, **kwargs)

        monkeypatch.setattr(reader_module, "Table", CountingTable)
        keys = sorted(expected)
        num_threads = 8
        barrier = threading.Barrier(num_threads)
        store = NGramStore.open(store_dir, cache=BlockCache(16))

        def hammer(seed):
            rng = random.Random(seed)
            barrier.wait()  # maximise contention on first-touch lazy opens
            for _ in range(150):
                key = rng.choice(keys)
                assert store.get(key) == expected[key]
            return 150

        with store:
            with ThreadPoolExecutor(max_workers=num_threads) as pool:
                total = sum(pool.map(hammer, range(num_threads)))
            # Guarded lazy init: one Table per partition, ever.
            assert len(opens) == store.num_partitions
            assert len(set(opens)) == store.num_partitions
            # Guarded cache counters: every get touches exactly one block,
            # so lookups account for each of the 1200 gets exactly once.
            stats = store.cache_stats()
            assert stats.hits + stats.misses == total

    def test_shared_cache_capacity_is_global(self, store_dir, expected):
        cache = BlockCache(2)
        with NGramStore.open(store_dir, cache=cache) as store:
            for key in sorted(expected)[::11]:
                assert store.get(key) == expected[key]
            assert len(cache) <= 2
            stats = store.cache_stats()
            assert stats.evictions > 0

    def test_concurrent_scans_and_top_k(self, store_dir, expected):
        """Range scans share table handles with point lookups safely."""
        with NGramStore.open(store_dir, cache=BlockCache(8)) as store:
            reference_items = sorted(expected.items())
            reference_top = store.top_k(5)

            def scan_worker(_):
                assert list(store.items()) == reference_items
                return True

            def point_worker(seed):
                rng = random.Random(seed)
                for _ in range(50):
                    key = rng.choice(reference_items)[0]
                    assert store.get(key) == expected[key]
                assert store.top_k(5) == reference_top
                return True

            with ThreadPoolExecutor(max_workers=8) as pool:
                futures = [
                    pool.submit(scan_worker if index % 2 else point_worker, index)
                    for index in range(8)
                ]
                assert all(future.result() for future in futures)


class TestServeCLI:
    def test_serve_subprocess_end_to_end(self, store_dir, expected, tmp_path):
        """The real CLI: ready-file handshake, queries, SIGTERM, metrics."""
        ready = str(tmp_path / "ready.txt")
        metrics_path = str(tmp_path / "metrics.json")
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            "src" + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        )
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                store_dir,
                "--port",
                "0",
                "--cache-blocks",
                "32",
                "--max-clients",
                "4",
                "--ready-file",
                ready,
                "--metrics-file",
                metrics_path,
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.time() + 30
            while not os.path.exists(ready):
                assert process.poll() is None, process.stderr.read()
                assert time.time() < deadline, "server did not become ready"
                time.sleep(0.05)
            host, port = open(ready, encoding="utf-8").read().split()
            with StoreClient(host, int(port)) as client:
                top = client.top_k(5)
                assert [tuple(k) for k, _ in top] == [k for k, _ in top]
                assert client.stats()["num_records"] == len(expected)
            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, stderr
        assert "serving" in stdout
        metrics = json.load(open(metrics_path, encoding="utf-8"))
        assert metrics["operations"]["top_k"]["count"] == 1
        assert metrics["cache"]["misses"] > 0

    def test_serve_missing_store_exits_2(self, tmp_path, capsys):
        assert main(["serve", str(tmp_path / "nope")]) == 2
        assert "manifest" in capsys.readouterr().err

    def test_serve_metrics_interval_requires_file(self, store_dir, capsys):
        assert main(["serve", store_dir, "--metrics-interval", "1"]) == 2
        assert "--metrics-file" in capsys.readouterr().err

    def test_serve_periodic_metrics_and_sigterm_during_load(self, store_dir, tmp_path):
        """Periodic snapshots land while serving, the slow-query log fills,
        and a SIGTERM arriving mid-load still produces the final snapshot
        — with both files in directories that did not exist beforehand."""
        ready = str(tmp_path / "ready.txt")
        metrics_path = tmp_path / "obs" / "nested" / "metrics.json"
        slow_path = tmp_path / "obs" / "logs" / "slow.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            "src" + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        )
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                store_dir,
                "--port",
                "0",
                "--ready-file",
                ready,
                "--metrics-file",
                str(metrics_path),
                "--metrics-interval",
                "0.1",
                "--slow-query-ms",
                "0",
                "--slow-query-log",
                str(slow_path),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        stop_load = threading.Event()

        def load(host, port):
            try:
                with StoreClient(host, int(port)) as client:
                    while not stop_load.is_set():
                        client.get((1, 2))
            except (StoreError, StoreConnectionError, OSError):
                pass  # the server going away mid-load is the point

        loader = None
        try:
            deadline = time.time() + 30
            while not os.path.exists(ready):
                assert process.poll() is None, process.stderr.read()
                assert time.time() < deadline, "server did not become ready"
                time.sleep(0.05)
            host, port = open(ready, encoding="utf-8").read().split()
            loader = threading.Thread(target=load, args=(host, port))
            loader.start()
            # A periodic snapshot must appear while requests are in flight.
            while not metrics_path.exists():
                assert process.poll() is None
                assert time.time() < deadline, "no periodic metrics snapshot"
                time.sleep(0.05)
            periodic = json.loads(metrics_path.read_text(encoding="utf-8"))
            assert "operations" in periodic
            # SIGTERM lands while the loader is still hammering the server.
            process.send_signal(signal.SIGTERM)
            _, stderr = process.communicate(timeout=30)
        finally:
            stop_load.set()
            if loader is not None:
                loader.join(timeout=10)
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, stderr
        final = json.loads(metrics_path.read_text(encoding="utf-8"))
        assert final["operations"]["get"]["count"] >= 1
        entries = [
            json.loads(line)
            for line in slow_path.read_text(encoding="utf-8").splitlines()
        ]
        assert any(entry["op"] == "get" and entry["trace_id"] for entry in entries)

    def test_serve_smoke_driver(self, store_dir, tmp_path):
        """The CI serve-smoke script passes against a freshly built store."""
        from benchmarks import serve_smoke

        report_path = str(tmp_path / "latency.json")
        assert (
            serve_smoke.main(
                [
                    "--store",
                    store_dir,
                    "--clients",
                    "3",
                    "--requests",
                    "10",
                    "--report",
                    report_path,
                    "--baseline",
                    store_dir,
                    "--scale",
                    "1",
                ]
            )
            == 0
        )
        report = json.load(open(report_path, encoding="utf-8"))
        for operation in ("get", "prefix", "top_k"):
            assert report["operations"][operation]["p50_us"] > 0
        assert report["server"]["cache"]["hits"] > 0


class TestCompatShims:
    """The pre-redesign surfaces still work — with a warning, not a break."""

    def test_legacy_request_fields_served_with_note(self, server, expected):
        key = sorted(expected)[0]
        with StoreClient(server.host, server.port) as client:
            response = client._call({"op": "get", "ngram": list(key)})
            assert response["value"] == expected[key]
            assert "'ngram' is deprecated" in response["deprecated"]
            response = client._call({"op": "prefix", "tokens": list(key[:1]), "limit": 1})
            assert len(response["records"]) == 1
            assert "'tokens' is deprecated" in response["deprecated"]
            # Canonical spellings carry no note.
            assert "deprecated" not in client._call({"op": "get", "key": list(key)})

    def test_timeout_kwarg_deprecated_but_honoured(self, server):
        with pytest.warns(DeprecationWarning, match="connect_timeout"):
            client = StoreClient(server.host, server.port, timeout=7.5)
        with client:
            assert client.connect_timeout == 7.5
            assert client.read_timeout == 7.5
            assert client.ping()

    def test_records_unpack_like_plain_tuples(self, server, store_dir):
        """Old callers that unpack (key, value) tuples keep working."""
        with NGramStore.open(store_dir) as direct, StoreClient(server.host, server.port) as client:
            for source in (direct, client):
                (record,) = source.top_k(1)
                key, value = record
                assert record == (key, value)

    def test_term_ops_without_vocabulary_are_clean_errors(self, server):
        """This module's store has no dictionary: term ops must say so."""
        with StoreClient(server.host, server.port) as client:
            with pytest.raises(StoreError, match="vocabulary"):
                client.get_terms(["anything"])
            # ...and the connection survives the error.
            assert client.ping()


class TestClientResilience:
    def test_reconnects_after_server_drops_connection(self, server, expected):
        """A dropped socket triggers a transparent reconnect, not a failure."""
        key = sorted(expected)[0]
        with StoreClient(server.host, server.port) as client:
            assert client.get(key) == expected[key]
            # Kill every server-side connection out from under the client.
            with server._connections_lock:
                connections = list(server._connections)
            assert connections
            for connection in connections:
                connection.shutdown(socket.SHUT_RDWR)
            # The idempotent read is retried on a fresh connection.
            assert client.get(key) == expected[key]

    def test_refused_connection_is_bounded_and_typed(self):
        from repro.exceptions import StoreConnectionError

        # A port nothing listens on: bind-then-close to find one.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        started = time.perf_counter()
        with pytest.raises(StoreConnectionError, match="cannot connect"):
            StoreClient("127.0.0.1", port, max_retries=2, backoff=0.01)
        # Bounded: 3 attempts with tiny backoff, not an unbounded loop.
        assert time.perf_counter() - started < 5.0

    def test_failed_replica_falls_over_to_survivor(self, store_dir, expected):
        """Live failover: kill one of two replicas mid-stream."""
        from repro.ngramstore import ReplicaPool

        victim = NGramStoreServer(store_dir, config=ServerConfig(port=0))
        victim.start()
        survivor = NGramStoreServer(store_dir, config=ServerConfig(port=0))
        survivor.start()
        try:
            pool = ReplicaPool(
                [
                    StoreClient(victim.host, victim.port, max_retries=0),
                    StoreClient(survivor.host, survivor.port, max_retries=0),
                ]
            )
            keys = sorted(expected)[::101]
            for key in keys:
                assert pool.get(key) == expected[key]
            victim.close()
            # Every key still answered, regardless of rotation position.
            for key in keys:
                assert pool.get(key) == expected[key]
            pool.close()
        finally:
            victim.close()
            survivor.close()


class TestBinaryProtocol:
    """Negotiation, the protocol matrix, and hostile binary frames."""

    @pytest.mark.parametrize("protocol", ["auto", "binary", "json"])
    def test_protocol_matrix_answers_identically(self, server, store_dir, expected, protocol):
        """The acceptance bar: results byte-identical across protocols."""
        with NGramStore.open(store_dir) as direct:
            with StoreClient(server.host, server.port, protocol=protocol) as client:
                assert client.negotiated_protocol == (
                    "json" if protocol == "json" else "binary"
                )
                keys = sorted(expected)[::23] + [(9999,)]
                assert [client.get(key) for key in keys] == [
                    direct.get(key) for key in keys
                ]
                assert client.multi_get(keys) == [direct.get(key) for key in keys]
                terms = sorted({key[0] for key in expected})[:3]
                prefixes = [(term,) for term in terms]
                assert client.multi_prefix(prefixes) == [
                    list(direct.prefix(prefix)) for prefix in prefixes
                ]
                assert client.prefix(prefixes[0]) == list(direct.prefix(prefixes[0]))
                assert client.top_k(10) == direct.top_k(10)
                assert client.top_k(10, order="key") == direct.top_k(10, order="key")
                assert client.stats() == direct.stats()
                assert client.ping()

    def test_auto_client_falls_back_on_json_only_server(self, store_dir, expected):
        """Old deployments pin binary=False; new clients must still work."""
        with NGramStoreServer(
            store_dir, config=ServerConfig(port=0, binary=False)
        ) as legacy:
            key = sorted(expected)[0]
            with StoreClient(legacy.host, legacy.port) as client:
                assert client.negotiated_protocol == "json"
                assert client.get(key) == expected[key]
                assert client.ping()
            with pytest.raises(StoreConnectionError, match="binary protocol"):
                StoreClient(legacy.host, legacy.port, protocol="binary")

    def test_binary_errors_answered_in_stream(self, server):
        """Decodable-but-invalid requests keep the connection alive."""
        with StoreClient(server.host, server.port, protocol="binary") as client:
            with pytest.raises(StoreError, match="unknown op"):
                client._call({"op": "frobnicate"})
            with pytest.raises(StoreError, match="k must be"):
                client.top_k(0)
            assert client.ping()  # the connection survived both errors

    def test_truncated_frame_closes_connection_not_server(self, server, expected):
        """A chopped frame is answered with an error, then the stream dies."""
        from repro.ngramstore.wire import WIRE_MAGIC, encode_message, read_message

        with socket.create_connection((server.host, server.port), timeout=10) as raw:
            reader = raw.makefile("rb")
            raw.sendall(WIRE_MAGIC + b"\n")
            assert read_message(reader)["protocol"] == "binary"
            # A frame that claims more bytes than will ever arrive.
            raw.sendall(encode_message({"op": "ping"})[:-2])
            raw.shutdown(socket.SHUT_WR)
            error = read_message(reader)
            assert error["ok"] is False
            assert reader.read() == b""  # server closed the stream after it
        # The server itself survived and serves fresh connections.
        with StoreClient(server.host, server.port) as client:
            key = sorted(expected)[0]
            assert client.get(key) == expected[key]

    def test_oversized_frame_rejected(self, server):
        from repro.ngramstore.server import MAX_REQUEST_BYTES
        from repro.ngramstore.wire import WIRE_MAGIC, read_message
        from repro.util.varint import encode_varint

        with socket.create_connection((server.host, server.port), timeout=10) as raw:
            reader = raw.makefile("rb")
            raw.sendall(WIRE_MAGIC + b"\n")
            assert read_message(reader)["protocol"] == "binary"
            raw.sendall(encode_varint(MAX_REQUEST_BYTES + 1))
            error = read_message(reader)
            assert error["ok"] is False
            assert "exceeds" in error["error"]

    def test_binary_client_reconnects_after_drop(self, server, expected):
        """The resilience path re-negotiates the protocol on reconnect."""
        key = sorted(expected)[0]
        with StoreClient(server.host, server.port, protocol="binary") as client:
            assert client.get(key) == expected[key]
            with server._connections_lock:
                connections = list(server._connections)
            for connection in connections:
                connection.shutdown(socket.SHUT_RDWR)
            assert client.get(key) == expected[key]
            assert client.negotiated_protocol == "binary"

    def test_multi_prefix_validation(self, server):
        with StoreClient(server.host, server.port) as client:
            assert client.multi_prefix([]) == []
            with pytest.raises(StoreError, match="JSON array"):
                client._call({"op": "multi_prefix", "keys": "nope"})
            with pytest.raises(StoreError, match="limit"):
                client._call({"op": "multi_prefix", "keys": [[1]], "limit": -2})

    def test_invalid_protocol_argument(self, server):
        with pytest.raises(StoreError, match="protocol"):
            StoreClient(server.host, server.port, protocol="carrier-pigeon")


class TestMetricsHelpers:
    def test_percentile_nearest_rank(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert percentile(samples, 0.50) == 2.0
        assert percentile(samples, 0.90) == 4.0
        assert percentile(samples, 0.99) == 4.0
        assert percentile([7.0], 0.50) == 7.0

    def test_metrics_aggregate_and_snapshot(self):
        metrics = ServerMetrics()
        for index in range(10):
            metrics.record("get", 0.001 * (index + 1), ok=True)
        metrics.record("get", 0.5, ok=False)
        snapshot = metrics.snapshot()
        entry = snapshot["operations"]["get"]
        assert entry["count"] == 11
        assert entry["errors"] == 1
        assert snapshot["errors"] == 1
        assert entry["p50_us"] <= entry["p99_us"] <= entry["max_us"]

    def test_percentiles_weigh_every_observation(self):
        """Regression: the old implementation kept only the *first* N
        latency samples per operation, so a server that warmed up fast and
        degraded later reported its warm-up percentiles forever.  The
        histogram-backed metrics must see the degradation."""
        metrics = ServerMetrics()
        for _ in range(1500):
            metrics.record("get", 0.001, ok=True)
        for _ in range(1500):
            metrics.record("get", 0.2, ok=True)
        entry = metrics.snapshot()["operations"]["get"]
        assert entry["count"] == 3000
        # Half the observations sit at 200 ms: p90 and p99 must be up
        # there, not at the 1 ms the first arrivals showed.
        assert entry["p90_us"] > 50_000
        assert entry["p99_us"] > 50_000
        assert entry["p50_us"] <= entry["p99_us"] <= entry["max_us"]

    def test_stage_histograms_in_snapshot(self):
        metrics = ServerMetrics()
        metrics.record_stage("route", 0.0001)
        metrics.record_stage("block_read", 0.002)
        metrics.record_stage("block_read", 0.004)
        stages = metrics.snapshot()["stages"]
        assert stages["block_read"]["count"] == 2
        assert stages["route"]["count"] == 1
        assert stages["block_read"]["p50_us"] <= stages["block_read"]["p99_us"]


class TestObservability:
    """/metrics exposition and the trace-carrying slow-query log."""

    @pytest.mark.parametrize("protocol", ["binary", "json"])
    def test_metrics_op_returns_prometheus_text(self, server, protocol):
        with StoreClient(server.host, server.port, protocol=protocol) as client:
            client.top_k(3)
            client.get((1, 2))
            text = client.metrics_text()
        assert "# TYPE ngramstore_requests_total counter" in text
        assert 'ngramstore_requests_total{op="top_k"}' in text
        assert "ngramstore_request_seconds_bucket" in text
        assert 'ngramstore_io_events{event="blocks_decoded"}' in text
        assert 'ngramstore_block_cache_events{event="hits"}' in text
        assert "ngramstore_active_connections" in text

    @pytest.mark.parametrize("protocol", ["binary", "json"])
    def test_slow_log_trace_id_matches_client(self, store_dir, tmp_path, protocol):
        """The acceptance path: a slow query's log line carries the same
        trace ID the client minted, over both wire protocols."""
        log_path = tmp_path / "logs" / f"slow-{protocol}.jsonl"
        config = ServerConfig(
            port=0,
            cache_blocks=8,
            slow_query_ms=0.0,  # log everything
            slow_query_log=str(log_path),
        )
        with NGramStoreServer(store_dir, config=config) as running:
            with StoreClient(
                running.host, running.port, protocol=protocol
            ) as client:
                assert client.negotiated_protocol == protocol
                client.get((1, 2))
                trace_id = client.last_trace_id
        assert trace_id
        entries = [
            json.loads(line)
            for line in log_path.read_text(encoding="utf-8").splitlines()
        ]
        gets = [entry for entry in entries if entry["op"] == "get"]
        assert gets, f"no get entries in slow log: {entries}"
        entry = gets[-1]
        assert entry["trace_id"] == trace_id
        assert entry["ok"] is True
        assert entry["key_count"] == 1
        assert entry["duration_ms"] >= 0
        assert "route" in entry["stages_ms"]
        assert "blocks_decoded" in entry["io"]
        assert "cache_hits" in entry["io"]

    def test_forwarded_trace_id_is_preserved(self, server):
        """A request that already carries a trace keeps it end to end —
        what makes a gateway's log line joinable with the shard's."""
        with StoreClient(server.host, server.port) as client:
            response = client._call(
                {"op": "ping", "trace": {"id": "feedfacefeedface"}}
            )
            assert response["ok"]
            assert client.last_trace_id == "feedfacefeedface"

    def test_server_stats_includes_stage_timings(self, server):
        with StoreClient(server.host, server.port) as client:
            client.get((1, 2))
            stats = client.server_stats()
        assert "route" in stats["stages"]
        assert stats["stages"]["route"]["count"] >= 1

    def test_slow_log_threshold_filters(self, store_dir, tmp_path):
        log_path = tmp_path / "slow.jsonl"
        config = ServerConfig(
            port=0,
            slow_query_ms=60_000.0,  # nothing in this test is that slow
            slow_query_log=str(log_path),
        )
        with NGramStoreServer(store_dir, config=config) as running:
            with StoreClient(running.host, running.port) as client:
                client.get((1, 2))
                client.top_k(3)
        assert not log_path.exists() or log_path.read_text() == ""
