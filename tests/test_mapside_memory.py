"""Peak-memory acceptance: the map side is genuinely out-of-core.

Two bounds close the loop on the combine buffer and the streaming corpus:

* a NAIVE run with a combiner under a small combine-buffer budget must
  peak strictly (and substantially) below the combine-per-task baseline —
  the budget, not the task's emission volume, caps the buffer;
* reading a corpus from its on-disk shard layout must not materialise the
  documents: streaming a full pass over the lazy collection peaks far
  below the eager decode of the same directory.

Peaks are tracemalloc-traced Python allocations
(:class:`~repro.util.memory.PeakMemoryTracker`), the same measure the
benchmark harness reports.
"""

import random

from repro.algorithms.naive import NaiveCounter
from repro.config import ExecutionConfig, NGramJobConfig
from repro.corpus.collection import DocumentCollection
from repro.corpus.io import (
    ShardedEncodedCollection,
    read_encoded_collection,
    write_encoded_collection,
)
from repro.mapreduce.counters import SHUFFLE_SPILLS
from repro.util.memory import PeakMemoryTracker


def _fanout_collection(num_documents=120, tokens_per_document=25, vocabulary=30):
    """A corpus whose NAIVE map output dwarfs its input (n·σ records)."""
    rng = random.Random(1337)
    token_lists = [
        [f"w{rng.randrange(vocabulary)}" for _ in range(tokens_per_document)]
        for _ in range(num_documents)
    ]
    return DocumentCollection.from_token_lists(token_lists)


class TestCombineBufferBound:
    def test_budgeted_combiner_peak_strictly_below_combine_per_task(self):
        collection = _fanout_collection()
        config = NGramJobConfig(min_frequency=2, max_length=4, use_combiner=True)

        baseline = NaiveCounter(config, num_map_tasks=2).run(
            collection, track_memory=True
        )
        budgeted_execution = ExecutionConfig(spill_threshold_records=512)
        budgeted = NaiveCounter(
            config, num_map_tasks=2, execution=budgeted_execution
        ).run(collection, track_memory=True)

        # Identical computation: the budget moves memory, not results.
        assert budgeted.statistics.as_dict() == baseline.statistics.as_dict()
        assert budgeted.map_output_records == baseline.map_output_records
        # The budget engaged (both combine rounds and shuffle spills).
        assert budgeted.counters.get(SHUFFLE_SPILLS) > 0
        assert budgeted.counters.get("COMBINE_OUTPUT_RECORDS") > baseline.counters.get(
            "COMBINE_OUTPUT_RECORDS"
        )

        assert budgeted.peak_memory_bytes is not None
        assert baseline.peak_memory_bytes is not None
        assert budgeted.peak_memory_bytes < baseline.peak_memory_bytes

    def test_budgeted_peak_insensitive_to_task_size(self):
        """Halving the task count (doubling per-task emissions) must not
        move a budgeted run's peak the way it moves the unbudgeted one —
        the budget caps the buffer, not the task boundary."""
        collection = _fanout_collection()
        config = NGramJobConfig(min_frequency=2, max_length=4, use_combiner=True)
        execution = ExecutionConfig(spill_threshold_records=256)

        peaks = {}
        for num_map_tasks in (1, 8):
            result = NaiveCounter(
                config, num_map_tasks=num_map_tasks, execution=execution
            ).run(collection, track_memory=True)
            peaks[num_map_tasks] = result.peak_memory_bytes

        unbudgeted_single_task = NaiveCounter(config, num_map_tasks=1).run(
            collection, track_memory=True
        )
        # One giant budgeted task stays well under the one giant
        # combine-per-task task...
        assert peaks[1] < unbudgeted_single_task.peak_memory_bytes * 0.8
        # ...and close to the eight-small-tasks budgeted run.
        assert peaks[1] < peaks[8] * 1.5


class TestStreamedCorpusBound:
    def test_streamed_corpus_never_materialises_documents(self, tmp_path):
        rng = random.Random(2026)
        token_lists = [
            [f"w{rng.randrange(40)}" for _ in range(600)] for _ in range(300)
        ]
        encoded = DocumentCollection.from_token_lists(token_lists).encode()
        directory = str(tmp_path / "corpus")
        write_encoded_collection(encoded, directory, num_shards=6)

        with PeakMemoryTracker() as eager_tracker:
            eager = read_encoded_collection(directory, materialize=True)
            num_eager = sum(1 for _ in eager.records())

        with PeakMemoryTracker() as open_tracker:
            lazy = read_encoded_collection(directory)
        with PeakMemoryTracker() as stream_tracker:
            num_lazy = sum(1 for _ in lazy.records())

        assert isinstance(lazy, ShardedEncodedCollection)
        assert num_lazy == num_eager == 300
        # Opening holds the index plus one scan chunk; a full streaming
        # pass holds one document at a time.  Both must stay far below the
        # fully decoded collection.
        assert open_tracker.peak_bytes < eager_tracker.peak_bytes / 2
        assert stream_tracker.peak_bytes < eager_tracker.peak_bytes / 4

    def test_lazy_dataset_split_plans_without_decoding(self, tmp_path):
        """Planning splits touches only the index: its footprint is tiny
        relative to what decoding the documents would cost."""
        rng = random.Random(99)
        token_lists = [
            [f"w{rng.randrange(40)}" for _ in range(150)] for _ in range(300)
        ]
        encoded = DocumentCollection.from_token_lists(token_lists).encode()
        directory = str(tmp_path / "corpus")
        write_encoded_collection(encoded, directory, num_shards=6)

        lazy = read_encoded_collection(directory)
        with PeakMemoryTracker() as plan_tracker:
            splits = lazy.dataset().split(8)
        with PeakMemoryTracker() as decode_tracker:
            documents = lazy.documents
        assert len(splits) == 8
        assert len(documents) == 300
        assert plan_tracker.peak_bytes < decode_tracker.peak_bytes / 2
