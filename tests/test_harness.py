"""Tests for the experiment harness (datasets, runner, measurements, reports)."""

import pytest

from repro.config import ClusterConfig
from repro.exceptions import ExperimentError
from repro.harness.datasets import clueweb_like, default_datasets, nytimes_like
from repro.harness.experiment import DEFAULT_METHODS, ExperimentRunner
from repro.harness.measurement import RunMeasurement
from repro.harness.report import (
    format_histogram,
    format_measurements,
    format_sweep,
    format_table,
)


@pytest.fixture(scope="module")
def tiny_nyt():
    return nytimes_like(num_documents=20, seed=1)


@pytest.fixture(scope="module")
def tiny_collection(tiny_nyt):
    return tiny_nyt.build()


class TestDatasets:
    def test_specs_have_paper_style_parameters(self):
        nyt = nytimes_like()
        clueweb = clueweb_like()
        assert nyt.name == "NYT-like"
        assert clueweb.name == "CW-like"
        # CW uses higher taus than NYT, as in the paper.
        assert clueweb.language_model_tau > nyt.language_model_tau
        assert clueweb.default_tau > nyt.default_tau
        assert 5 in nyt.sweep_sigma and 100 in nyt.sweep_sigma

    def test_build_encodes_collection(self, tiny_nyt):
        collection = tiny_nyt.build()
        assert len(collection) == 20
        assert collection.vocabulary is not None

    def test_build_fraction_samples_documents(self, tiny_nyt):
        full = tiny_nyt.build()
        half = tiny_nyt.build(fraction=0.5)
        assert 0 < len(half) < len(full)

    def test_build_is_deterministic(self, tiny_nyt):
        first = tiny_nyt.build()
        second = tiny_nyt.build()
        assert list(first.records()) == list(second.records())

    def test_default_datasets_scaling(self):
        scaled = default_datasets(scale=0.1)
        assert len(scaled) == 2
        assert scaled[0].num_documents < nytimes_like().num_documents


class TestExperimentRunner:
    def test_run_once_produces_measurement(self, tiny_nyt, tiny_collection):
        runner = ExperimentRunner()
        measurement, result = runner.run_once(
            "SUFFIX-SIGMA", tiny_collection, tiny_nyt.name, min_frequency=3, max_length=3
        )
        assert measurement.algorithm == "SUFFIX-SIGMA"
        assert measurement.dataset == "NYT-like"
        assert measurement.map_output_records == result.map_output_records
        assert measurement.num_ngrams == len(result.statistics)
        assert measurement.simulated_wallclock_seconds > 0

    def test_unknown_algorithm_rejected(self, tiny_nyt, tiny_collection):
        runner = ExperimentRunner()
        with pytest.raises(ExperimentError):
            runner.run_once("BOGUS", tiny_collection, tiny_nyt.name, 3, 3)

    def test_compare_methods_runs_all(self, tiny_nyt, tiny_collection):
        runner = ExperimentRunner()
        measurements = runner.compare_methods(tiny_collection, tiny_nyt.name, 3, 3)
        assert [m.algorithm for m in measurements] == list(DEFAULT_METHODS)
        # All methods agree on the number of result n-grams.
        assert len({m.num_ngrams for m in measurements}) == 1

    def test_compare_methods_skip(self, tiny_nyt, tiny_collection):
        runner = ExperimentRunner()
        measurements = runner.compare_methods(
            tiny_collection, tiny_nyt.name, 3, 3, skip=("NAIVE",)
        )
        assert "NAIVE" not in {m.algorithm for m in measurements}

    def test_sweep_parameter_tau(self, tiny_nyt, tiny_collection):
        runner = ExperimentRunner()
        sweep = runner.sweep_parameter(
            tiny_collection,
            tiny_nyt.name,
            parameter="tau",
            values=(2, 4),
            fixed_tau=3,
            fixed_sigma=3,
            methods=("SUFFIX-SIGMA",),
        )
        assert set(sweep) == {2, 4}
        assert sweep[2][0].min_frequency == 2
        assert sweep[4][0].min_frequency == 4

    def test_sweep_parameter_invalid_name(self, tiny_nyt, tiny_collection):
        runner = ExperimentRunner()
        with pytest.raises(ExperimentError):
            runner.sweep_parameter(
                tiny_collection, tiny_nyt.name, "bogus", (1,), fixed_tau=1, fixed_sigma=1
            )

    def test_custom_cluster_changes_simulated_wallclock(self, tiny_nyt, tiny_collection):
        runner_slow = ExperimentRunner(cluster=ClusterConfig.with_slots(1))
        runner_fast = ExperimentRunner(cluster=ClusterConfig.with_slots(64))
        slow, _ = runner_slow.run_once("NAIVE", tiny_collection, tiny_nyt.name, 3, 3)
        fast, _ = runner_fast.run_once("NAIVE", tiny_collection, tiny_nyt.name, 3, 3)
        assert fast.simulated_wallclock_seconds <= slow.simulated_wallclock_seconds


class TestMeasurement:
    def _measurement(self, **overrides):
        values = dict(
            algorithm="SUFFIX-SIGMA",
            dataset="NYT-like",
            min_frequency=5,
            max_length=None,
            wallclock_seconds=1.5,
            simulated_wallclock_seconds=2.5,
            map_output_records=100,
            map_output_bytes=1000,
            num_jobs=1,
            num_ngrams=42,
        )
        values.update(overrides)
        return RunMeasurement(**values)

    def test_sigma_label(self):
        assert self._measurement().sigma_label == "inf"
        assert self._measurement(max_length=5).sigma_label == "5"

    def test_as_row(self):
        row = self._measurement(extra={"speedup": 3.14159}).as_row()
        assert row["algorithm"] == "SUFFIX-SIGMA"
        assert row["sigma"] == "inf"
        assert row["records"] == 100
        assert row["speedup"] == pytest.approx(3.1416)


class TestReportFormatting:
    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "bb": "xy"}, {"a": 222, "bb": "z"}])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert all(len(line) == len(lines[0]) or True for line in lines)

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_measurements_contains_columns(self):
        measurement = TestMeasurement()._measurement()
        text = format_measurements([measurement])
        assert "SUFFIX-SIGMA" in text
        assert "records" in text

    def test_format_sweep_rows_are_methods(self):
        m1 = TestMeasurement()._measurement(algorithm="NAIVE")
        m2 = TestMeasurement()._measurement(algorithm="SUFFIX-SIGMA")
        sweep = {10: [m1, m2], 100: [m1, m2]}
        text = format_sweep(sweep, metric="records", parameter_label="method")
        lines = text.splitlines()
        assert lines[0].split()[0] == "method"
        assert any(line.startswith("NAIVE") for line in lines)
        assert any(line.startswith("SUFFIX-SIGMA") for line in lines)

    def test_format_histogram(self):
        text = format_histogram({(0, 0): 10, (1, 2): 3})
        assert "len 10^0" in text
        assert "len 10^1" in text
        assert "10^2" in text

    def test_format_histogram_empty(self):
        assert format_histogram({}) == "(empty histogram)"
