"""Tests for the configuration objects."""

import pytest

from repro.config import ClusterConfig, NGramJobConfig, UNBOUNDED
from repro.exceptions import ConfigurationError


class TestNGramJobConfig:
    def test_defaults(self):
        config = NGramJobConfig()
        assert config.min_frequency == 1
        assert config.max_length is UNBOUNDED
        assert config.num_reducers >= 1

    def test_paper_symbol_aliases(self):
        config = NGramJobConfig(min_frequency=7, max_length=3)
        assert config.tau == 7
        assert config.sigma == 3

    def test_rejects_non_positive_tau(self):
        with pytest.raises(ConfigurationError):
            NGramJobConfig(min_frequency=0)

    def test_rejects_negative_tau(self):
        with pytest.raises(ConfigurationError):
            NGramJobConfig(min_frequency=-5)

    def test_rejects_non_positive_sigma(self):
        with pytest.raises(ConfigurationError):
            NGramJobConfig(max_length=0)

    def test_none_sigma_means_unbounded(self):
        config = NGramJobConfig(max_length=None)
        assert config.effective_max_length(42) == 42

    def test_effective_max_length_clamps_to_document(self):
        config = NGramJobConfig(max_length=5)
        assert config.effective_max_length(3) == 3
        assert config.effective_max_length(10) == 5

    def test_rejects_invalid_num_reducers(self):
        with pytest.raises(ConfigurationError):
            NGramJobConfig(num_reducers=0)

    def test_rejects_invalid_apriori_index_k(self):
        with pytest.raises(ConfigurationError):
            NGramJobConfig(apriori_index_k=0)

    def test_with_updates_returns_new_instance(self):
        config = NGramJobConfig(min_frequency=2)
        updated = config.with_updates(min_frequency=9)
        assert updated.min_frequency == 9
        assert config.min_frequency == 2

    def test_with_updates_validates(self):
        config = NGramJobConfig()
        with pytest.raises(ConfigurationError):
            config.with_updates(min_frequency=0)

    def test_frozen(self):
        config = NGramJobConfig()
        with pytest.raises(Exception):
            config.min_frequency = 10  # type: ignore[misc]


class TestClusterConfig:
    def test_defaults_are_valid(self):
        config = ClusterConfig()
        assert config.map_slots >= 1
        assert config.reduce_slots >= 1

    def test_with_slots(self):
        config = ClusterConfig.with_slots(32)
        assert config.map_slots == 32
        assert config.reduce_slots == 32

    def test_rejects_zero_slots(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(map_slots=0)

    def test_rejects_negative_overhead(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(job_overhead=-1.0)
