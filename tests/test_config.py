"""Tests for the configuration objects."""

import pytest

from repro.config import ClusterConfig, NGramJobConfig, UNBOUNDED
from repro.exceptions import ConfigurationError


class TestNGramJobConfig:
    def test_defaults(self):
        config = NGramJobConfig()
        assert config.min_frequency == 1
        assert config.max_length is UNBOUNDED
        assert config.num_reducers >= 1

    def test_paper_symbol_aliases(self):
        config = NGramJobConfig(min_frequency=7, max_length=3)
        assert config.tau == 7
        assert config.sigma == 3

    def test_rejects_non_positive_tau(self):
        with pytest.raises(ConfigurationError):
            NGramJobConfig(min_frequency=0)

    def test_rejects_negative_tau(self):
        with pytest.raises(ConfigurationError):
            NGramJobConfig(min_frequency=-5)

    def test_rejects_non_positive_sigma(self):
        with pytest.raises(ConfigurationError):
            NGramJobConfig(max_length=0)

    def test_none_sigma_means_unbounded(self):
        config = NGramJobConfig(max_length=None)
        assert config.effective_max_length(42) == 42

    def test_effective_max_length_clamps_to_document(self):
        config = NGramJobConfig(max_length=5)
        assert config.effective_max_length(3) == 3
        assert config.effective_max_length(10) == 5

    def test_rejects_invalid_num_reducers(self):
        with pytest.raises(ConfigurationError):
            NGramJobConfig(num_reducers=0)

    def test_rejects_invalid_apriori_index_k(self):
        with pytest.raises(ConfigurationError):
            NGramJobConfig(apriori_index_k=0)

    def test_with_updates_returns_new_instance(self):
        config = NGramJobConfig(min_frequency=2)
        updated = config.with_updates(min_frequency=9)
        assert updated.min_frequency == 9
        assert config.min_frequency == 2

    def test_with_updates_validates(self):
        config = NGramJobConfig()
        with pytest.raises(ConfigurationError):
            config.with_updates(min_frequency=0)

    def test_frozen(self):
        config = NGramJobConfig()
        with pytest.raises(Exception):
            config.min_frequency = 10  # type: ignore[misc]


class TestClusterConfig:
    def test_defaults_are_valid(self):
        config = ClusterConfig()
        assert config.map_slots >= 1
        assert config.reduce_slots >= 1

    def test_with_slots(self):
        config = ClusterConfig.with_slots(32)
        assert config.map_slots == 32
        assert config.reduce_slots == 32

    def test_rejects_zero_slots(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(map_slots=0)

    def test_rejects_negative_overhead(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(job_overhead=-1.0)


class TestParseSpillThreshold:
    def test_bare_number_is_bytes(self):
        from repro.config import parse_spill_threshold

        assert parse_spill_threshold("65536") == (65536, None)

    def test_byte_suffixes(self):
        from repro.config import parse_spill_threshold

        assert parse_spill_threshold("64kb") == (64 * 1024, None)
        assert parse_spill_threshold("8MB") == (8 * 1024 * 1024, None)
        assert parse_spill_threshold("512b") == (512, None)
        assert parse_spill_threshold("1gb") == (1024**3, None)

    def test_record_counts(self):
        from repro.config import parse_spill_threshold

        assert parse_spill_threshold("100k") == (None, 100_000)
        assert parse_spill_threshold("2m") == (None, 2_000_000)
        assert parse_spill_threshold("5000r") == (None, 5000)
        assert parse_spill_threshold("5000rec") == (None, 5000)
        assert parse_spill_threshold("250records") == (None, 250)
        assert parse_spill_threshold(" 42 k ") == (None, 42_000)

    def test_invalid_values_rejected(self):
        from repro.config import parse_spill_threshold

        for bad in ("", "abc", "10x", "-5", "1.5k", "0"):
            with pytest.raises(ConfigurationError):
                parse_spill_threshold(bad)


class TestExecutionConfigNewFields:
    def test_spill_threshold_records_validation(self):
        from repro.config import ExecutionConfig

        assert ExecutionConfig(spill_threshold_records=100).spill_threshold_records == 100
        with pytest.raises(ConfigurationError):
            ExecutionConfig(spill_threshold_records=0)

    def test_shard_codec_validation(self):
        from repro.config import ExecutionConfig

        assert ExecutionConfig(shard_codec="gzip").shard_codec == "gzip"
        with pytest.raises(ConfigurationError):
            ExecutionConfig(shard_codec="lz77")


class TestStoreConfig:
    def test_defaults_are_valid(self):
        from repro.config import StoreConfig

        config = StoreConfig()
        assert config.num_partitions >= 1
        assert config.codec == "none"

    def test_validation(self):
        from repro.config import StoreConfig

        with pytest.raises(ConfigurationError):
            StoreConfig(num_partitions=0)
        with pytest.raises(ConfigurationError):
            StoreConfig(codec="bogus")
        with pytest.raises(ConfigurationError):
            StoreConfig(records_per_block=0)
        with pytest.raises(ConfigurationError):
            StoreConfig(sample_size=0)


class TestServerConfig:
    def test_defaults_are_valid(self):
        from repro.config import ServerConfig

        config = ServerConfig()
        assert config.host == "127.0.0.1"
        assert config.port == 0  # ephemeral by default
        assert config.cache_blocks >= 1
        assert config.max_clients >= 1

    def test_validation(self):
        from repro.config import ServerConfig

        with pytest.raises(ConfigurationError):
            ServerConfig(port=-1)
        with pytest.raises(ConfigurationError):
            ServerConfig(port=70_000)
        with pytest.raises(ConfigurationError):
            ServerConfig(cache_blocks=0)
        with pytest.raises(ConfigurationError):
            ServerConfig(max_clients=0)

    def test_serving_topology_fields(self):
        from repro.config import ServerConfig

        config = ServerConfig(protocol="http", num_shards=3, shard_index=2)
        assert (config.protocol, config.num_shards, config.shard_index) == ("http", 3, 2)
        assert ServerConfig().protocol == "socket"  # the pre-redesign default
        with pytest.raises(ConfigurationError):
            ServerConfig(protocol="gopher")
        with pytest.raises(ConfigurationError):
            ServerConfig(num_shards=0)
        with pytest.raises(ConfigurationError):
            ServerConfig(num_shards=2, shard_index=2)
        with pytest.raises(ConfigurationError):
            ServerConfig(shard_index=-1)
