"""Smoke tests for the per-figure experiment drivers (tiny datasets)."""

import pytest

from repro.harness import figures
from repro.harness.datasets import clueweb_like, nytimes_like
from repro.harness.experiment import ExperimentRunner


@pytest.fixture(scope="module")
def tiny_datasets():
    return [nytimes_like(num_documents=15, seed=2), clueweb_like(num_documents=15, seed=3)]


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(num_map_tasks=4, num_reducers=2)


class TestFigureDrivers:
    def test_table1(self, tiny_datasets):
        statistics = figures.table1_dataset_characteristics(tiny_datasets)
        assert set(statistics) == {"NYT-like", "CW-like"}
        assert statistics["NYT-like"].num_documents == 15

    def test_figure2(self, tiny_datasets):
        histograms = figures.figure2_output_characteristics(tiny_datasets, min_frequency=3)
        assert set(histograms) == {"NYT-like", "CW-like"}
        assert all(histogram for histogram in histograms.values())

    def test_figure3(self, tiny_datasets, runner):
        result = figures.figure3_use_cases(tiny_datasets, runner)
        assert set(result.language_model) == {"NYT-like", "CW-like"}
        assert {m.algorithm for m in result.analytics["CW-like"]} == {
            "APRIORI-SCAN",
            "APRIORI-INDEX",
            "SUFFIX-SIGMA",
        }

    def test_figure4(self, tiny_datasets, runner):
        sweeps = figures.figure4_vary_tau(tiny_datasets, runner)
        nyt_sweep = sweeps["NYT-like"]
        assert set(nyt_sweep) == set(nytimes_like().sweep_tau)
        for measurements in nyt_sweep.values():
            assert len(measurements) == 4

    def test_figure5(self, tiny_datasets, runner):
        sweeps = figures.figure5_vary_sigma(tiny_datasets, runner)
        cw_sweep = sweeps["CW-like"]
        for sigma, measurements in cw_sweep.items():
            algorithms = {m.algorithm for m in measurements}
            if sigma is not None and sigma > 5:
                assert "NAIVE" not in algorithms

    def test_figure6(self, tiny_datasets, runner):
        sweeps = figures.figure6_scale_datasets(tiny_datasets, runner, fractions=(0.5, 1.0))
        assert set(sweeps["NYT-like"]) == {50, 100}

    def test_figure7(self, tiny_datasets):
        sweeps = figures.figure7_scale_slots(tiny_datasets, slot_counts=(4, 16))
        sweep = sweeps["NYT-like"]
        assert set(sweep) == {4, 16}
        for slots, measurements in sweep.items():
            assert len(measurements) == 4

    def test_extensions_overview(self, tiny_datasets):
        result = figures.extensions_overview(tiny_datasets, min_frequency=3, max_length=4)
        for name in ("NYT-like", "CW-like"):
            assert result.maximal_ngrams[name] <= result.closed_ngrams[name]
            assert result.closed_ngrams[name] <= result.all_ngrams[name]

    def test_ablations(self, tiny_datasets):
        measurements = figures.ablation_implementation_choices(
            tiny_datasets[0], min_frequency=3, max_length=3
        )
        labels = {m.algorithm for m in measurements}
        assert "NAIVE+combiner" in labels
        assert "SUFFIX-SIGMA+split" in labels
