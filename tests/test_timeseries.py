"""Tests for n-gram time series containers."""

from repro.ngrams.timeseries import NGramTimeSeriesCollection, TimeSeries


class TestTimeSeries:
    def test_record_and_total(self):
        series = TimeSeries()
        series.record(1990, 2)
        series.record(1991)
        assert series.total == 3
        assert series.value(1990) == 2
        assert series.value(1992) == 0

    def test_record_none_bucket_ignored(self):
        series = TimeSeries()
        series.record(None, 5)
        assert series.total == 0

    def test_merge(self):
        left = TimeSeries.from_mapping({1990: 1, 1991: 2})
        right = TimeSeries.from_mapping({1991: 3, 1995: 1})
        merged = left.merge(right)
        assert merged.as_dict() == {1990: 1, 1991: 5, 1995: 1}
        # merge does not mutate its operands
        assert left.as_dict() == {1990: 1, 1991: 2}

    def test_buckets_sorted(self):
        series = TimeSeries.from_mapping({2001: 1, 1999: 2})
        assert series.buckets() == [1999, 2001]

    def test_dense_fills_zeros(self):
        series = TimeSeries.from_mapping({1990: 2, 1992: 1})
        assert series.dense(1989, 1993) == [0, 2, 0, 1, 0]

    def test_equality(self):
        assert TimeSeries.from_mapping({1: 2}) == TimeSeries.from_mapping({1: 2})
        assert TimeSeries.from_mapping({1: 2}) != TimeSeries.from_mapping({1: 3})
        assert TimeSeries() != "not a series"


class TestNGramTimeSeriesCollection:
    def test_set_and_get(self):
        collection = NGramTimeSeriesCollection()
        collection.set(("a", "b"), TimeSeries.from_mapping({2000: 3}))
        assert ("a", "b") in collection
        assert collection.series(("a", "b")).value(2000) == 3

    def test_missing_ngram_returns_empty_series(self):
        collection = NGramTimeSeriesCollection()
        assert collection.series(("missing",)).total == 0

    def test_len_items_asdict(self):
        collection = NGramTimeSeriesCollection()
        collection.set(("a",), TimeSeries.from_mapping({1: 1}))
        collection.set(("b",), TimeSeries.from_mapping({2: 2}))
        assert len(collection) == 2
        assert dict(collection.items())[("a",)].as_dict() == {1: 1}
        assert collection.as_dict() == {("a",): {1: 1}, ("b",): {2: 2}}
