"""Tests for variable-byte integer encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import SerializationError
from repro.util.varint import (
    decode_sequence,
    decode_varint,
    encode_sequence,
    encode_varint,
    encoded_length,
    sequence_encoded_length,
)


class TestEncodeDecode:
    def test_zero(self):
        assert encode_varint(0) == b"\x00"
        assert decode_varint(b"\x00") == (0, 1)

    def test_small_values_use_one_byte(self):
        for value in (1, 17, 127):
            assert len(encode_varint(value)) == 1

    def test_boundary_at_128(self):
        assert len(encode_varint(127)) == 1
        assert len(encode_varint(128)) == 2

    def test_known_encoding(self):
        # 300 = 0b100101100 -> groups 0101100 (0x2C) then 10 (0x02).
        assert encode_varint(300) == bytes([0xAC, 0x02])

    def test_negative_rejected(self):
        with pytest.raises(SerializationError):
            encode_varint(-1)

    def test_decode_with_offset(self):
        data = encode_varint(5) + encode_varint(1000)
        value, offset = decode_varint(data, 0)
        assert value == 5
        value, offset = decode_varint(data, offset)
        assert value == 1000
        assert offset == len(data)

    def test_truncated_raises(self):
        data = encode_varint(12345)[:-1]
        with pytest.raises(SerializationError):
            decode_varint(data)

    def test_decode_empty_raises(self):
        with pytest.raises(SerializationError):
            decode_varint(b"")

    @given(st.integers(min_value=0, max_value=2**63 - 1))
    def test_roundtrip(self, value):
        encoded = encode_varint(value)
        decoded, offset = decode_varint(encoded)
        assert decoded == value
        assert offset == len(encoded)

    @given(st.integers(min_value=0, max_value=2**63 - 1))
    def test_encoded_length_matches_encoding(self, value):
        assert encoded_length(value) == len(encode_varint(value))

    def test_encoded_length_rejects_negative(self):
        with pytest.raises(SerializationError):
            encoded_length(-3)


class TestSequences:
    def test_empty_sequence(self):
        encoded = encode_sequence([])
        values, offset = decode_sequence(encoded)
        assert values == []
        assert offset == len(encoded)

    def test_roundtrip_simple(self):
        values = [0, 1, 127, 128, 300, 2**30]
        encoded = encode_sequence(values)
        decoded, offset = decode_sequence(encoded)
        assert decoded == values
        assert offset == len(encoded)

    @given(st.lists(st.integers(min_value=0, max_value=2**40), max_size=50))
    def test_roundtrip_property(self, values):
        encoded = encode_sequence(values)
        decoded, _ = decode_sequence(encoded)
        assert decoded == values

    @given(st.lists(st.integers(min_value=0, max_value=2**40), max_size=50))
    def test_sequence_encoded_length_matches(self, values):
        assert sequence_encoded_length(values) == len(encode_sequence(values))

    def test_two_sequences_back_to_back(self):
        data = encode_sequence([1, 2]) + encode_sequence([3])
        first, offset = decode_sequence(data)
        second, offset = decode_sequence(data, offset)
        assert first == [1, 2]
        assert second == [3]
        assert offset == len(data)
