"""StoreAPI conformance suite: every implementation answers identically.

One shared fixture store (with a persisted vocabulary), five
implementations of :class:`repro.ngramstore.api.StoreAPI` — the local
:class:`NGramStore`, the socket :class:`StoreClient`, a two-server
:class:`ReplicaPool`, a three-shard :class:`ShardRouter`, and the
:class:`HttpStoreClient` — and one parametrized set of assertions
comparing each against reference answers computed directly from the local
store.  A topology that drifts from the local semantics (a shard router
mis-merging top-k, a transport mangling a value) fails here by name.

Also home to the ``repro query --server/--url`` end-to-end tests: the CLI
must render byte-identical output whether it opens the store directory or
talks to a remote server.
"""

import random

import pytest

from repro.cli import main
from repro.config import ServerConfig, StoreConfig
from repro.corpus.vocabulary import Vocabulary
from repro.ngramstore import (
    BlockCache,
    HttpStoreClient,
    NGramRecord,
    NGramStore,
    NGramStoreHTTPServer,
    NGramStoreServer,
    QueryEngine,
    ReplicaPool,
    ShardRouter,
    ShardView,
    StoreClient,
    build_store,
)

MAX_TERM = 50

IMPLEMENTATIONS = ("local", "socket", "replicas", "sharded", "http")


def make_records(count=600, seed=13, max_term=MAX_TERM, max_len=4):
    rng = random.Random(seed)
    keys = set()
    while len(keys) < count:
        keys.add(tuple(rng.randint(0, max_term) for _ in range(rng.randint(1, max_len))))
    return [(key, rng.randint(1, 400)) for key in sorted(keys)]


def term_for(term_id):
    return f"w{term_id:02d}"


def _test_vocabulary():
    # Descending frequency with lexicographic tie-break assigns w00 -> id 0,
    # w01 -> id 1, ... — a bijection the term-op assertions rely on.
    return Vocabulary.from_term_frequencies(
        {term_for(index): 1000 - index for index in range(MAX_TERM + 1)}
    )


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("api-store") / "store")
    build_store(
        make_records(),
        directory,
        store=StoreConfig(num_partitions=5, records_per_block=32),
        vocabulary=_test_vocabulary(),
        metadata={"origin": "test_store_api"},
    )
    return directory


@pytest.fixture(scope="module")
def extra_store_dir(tmp_path_factory):
    """The comparison store every server mounts: same vocabulary, partially
    overlapping records, so ``compare`` sees all four found/missing shapes."""
    directory = str(tmp_path_factory.mktemp("api-extra") / "store")
    build_store(
        make_records(count=400, seed=29),
        directory,
        store=StoreConfig(num_partitions=3, records_per_block=32),
        vocabulary=_test_vocabulary(),
        metadata={"origin": "test_store_api_extra"},
    )
    return directory


@pytest.fixture(scope="module")
def reference(store_dir, extra_store_dir):
    """Ground truth computed once from the local store."""
    expected = dict(make_records())
    with NGramStore.open(store_dir) as store:
        first_terms = sorted({key[0] for key in expected})[:4]
        complete_prefixes = [(), (first_terms[0],)] + [
            key for key in sorted(expected) if len(key) == 2
        ][:3]
        with NGramStore.open(extra_store_dir) as extra:
            engine = QueryEngine(store, extra_store=extra)
            compare_keys = sorted(
                set(expected) | set(dict(make_records(count=400, seed=29)))
            )[::37] + [(MAX_TERM + 1000,)]
            compares = {
                key: engine.handle({"op": "compare", "key": list(key)})
                for key in compare_keys
            }
        return {
            "expected": expected,
            "top_frequency": store.top_k(12),
            "top_key": store.top_k(12, order="key"),
            "prefixes": {
                term: list(store.prefix((term,))) for term in first_terms
            },
            "stats": store.stats(),
            "top_terms": store.top_k_terms(8),
            "completions": {
                prefix: store.complete(prefix, 6) for prefix in complete_prefixes
            },
            "compares": compares,
        }


@pytest.fixture(scope="module")
def topology(store_dir, extra_store_dir):
    """All the servers the remote implementations talk to, started once."""
    servers = []

    def start(server):
        server.start()
        servers.append(server)
        return server

    socket_a = start(
        NGramStoreServer(
            store_dir,
            config=ServerConfig(port=0, cache_blocks=32, extra_store=extra_store_dir),
        )
    )
    socket_b = start(
        NGramStoreServer(
            store_dir,
            config=ServerConfig(port=0, cache_blocks=32, extra_store=extra_store_dir),
        )
    )
    shards = [
        start(
            NGramStoreServer(
                ShardView(NGramStore.open(store_dir, cache=BlockCache(16)), index, 3),
                config=ServerConfig(port=0, extra_store=extra_store_dir),
            )
        )
        for index in range(3)
    ]
    http = start(
        NGramStoreHTTPServer(
            store_dir,
            config=ServerConfig(port=0, protocol="http", extra_store=extra_store_dir),
        )
    )
    yield {
        "socket": (socket_a.host, socket_a.port),
        "replica": (socket_b.host, socket_b.port),
        "shards": [(server.host, server.port) for server in shards],
        "http_url": f"http://{http.host}:{http.port}",
    }
    for server in servers:
        server.close()


@pytest.fixture(params=IMPLEMENTATIONS)
def api(request, store_dir, topology):
    name = request.param
    if name == "local":
        instance = NGramStore.open(store_dir)
    elif name == "socket":
        instance = StoreClient(*topology["socket"])
    elif name == "replicas":
        instance = ReplicaPool(
            [StoreClient(*topology["socket"]), StoreClient(*topology["replica"])]
        )
    elif name == "sharded":
        instance = ShardRouter(
            [StoreClient(host, port) for host, port in topology["shards"]]
        )
    else:
        instance = HttpStoreClient(topology["http_url"])
    with instance:
        yield instance


class TestConformance:
    """Identical answers from every implementation, by construction."""

    def test_get(self, api, reference):
        expected = reference["expected"]
        for key in sorted(expected)[::23]:
            assert api.get(key) == expected[key]
        assert api.get((MAX_TERM + 1000,)) is None
        assert api.get((MAX_TERM + 1000,), default=-7) == -7

    def test_multi_get(self, api, reference):
        expected = reference["expected"]
        keys = sorted(expected)[::41] + [(MAX_TERM + 1000,)]
        assert api.multi_get(keys) == [expected.get(key) for key in keys]
        assert api.multi_get([(MAX_TERM + 1000,)], default=0) == [0]

    def test_prefix(self, api, reference):
        for term, records in reference["prefixes"].items():
            assert list(api.prefix((term,))) == records
            assert list(api.prefix((term,), limit=3)) == records[:3]
        assert list(api.prefix((MAX_TERM + 1000,))) == []

    def test_multi_prefix(self, api, reference):
        prefixes = [(term,) for term in reference["prefixes"]]
        expected = [records for records in reference["prefixes"].values()]
        assert api.multi_prefix(prefixes) == expected
        assert api.multi_prefix(prefixes, limit=2) == [
            records[:2] for records in expected
        ]
        assert api.multi_prefix([]) == []
        assert api.multi_prefix([(MAX_TERM + 1000,)]) == [[]]

    def test_top_k_frequency_and_key_order(self, api, reference):
        assert api.top_k(12) == reference["top_frequency"]
        assert api.top_k(12, order="key") == reference["top_key"]

    def test_stats_core_fields(self, api, reference):
        stats = api.stats()
        for field in ("store_dir", "num_records", "codec", "has_vocabulary", "metadata"):
            assert stats[field] == reference["stats"][field]

    def test_ping(self, api):
        assert api.ping() is True

    def test_get_terms(self, api, reference):
        expected = reference["expected"]
        key = sorted(expected)[29]
        terms = [term_for(term_id) for term_id in key]
        assert api.get_terms(terms) == expected[key]
        assert api.get_terms(["not-a-term"]) is None
        assert api.get_terms(["not-a-term"], default=-1) == -1

    def test_multi_get_terms(self, api, reference):
        expected = reference["expected"]
        keys = sorted(expected)[::97]
        items = [[term_for(term_id) for term_id in key] for key in keys]
        items.insert(1, ["no-such-term"])
        answers = api.multi_get_terms(items)
        expected_answers = [expected[key] for key in keys]
        expected_answers.insert(1, None)
        assert answers == expected_answers

    def test_prefix_terms(self, api, reference):
        term, records = next(iter(reference["prefixes"].items()))
        rendered = [
            NGramRecord(tuple(term_for(term_id) for term_id in key), value)
            for key, value in records
        ]
        assert api.prefix_terms([term_for(term)]) == rendered
        assert api.prefix_terms([term_for(term)], limit=2) == rendered[:2]
        assert api.prefix_terms(["no-such-term"]) == []

    def test_top_k_terms(self, api, reference):
        assert api.top_k_terms(8) == reference["top_terms"]

    def test_records_are_tuple_compatible(self, api, reference):
        """The canonical record unpacks and compares like a plain tuple."""
        (record,) = api.top_k(1)
        ngram, value = record
        assert record == (ngram, value)
        assert isinstance(record, tuple)

    def test_complete(self, api, reference):
        for prefix, completions in reference["completions"].items():
            assert api.complete(prefix, 6) == completions
        assert api.complete((MAX_TERM + 1000,), 6) == []

    def test_complete_terms(self, api, reference):
        for prefix, completions in reference["completions"].items():
            terms = [term_for(term_id) for term_id in prefix]
            rendered = [
                (term_for(completion.token), completion.value)
                for completion in completions
            ]
            assert api.complete_terms(terms, 6) == rendered
        assert api.complete_terms(["no-such-term"], 6) == []

    def _comparer(self, api, extra_store_dir):
        """``compare``/``compare_terms`` callables for this implementation.

        Remote implementations carry the operations natively (the servers
        mount the extra store); the local store is compared through a
        :class:`QueryEngine` over both stores — the reference semantics the
        transports must match byte for byte.
        """
        if hasattr(api, "compare"):
            return api.compare, api.compare_terms, None
        extra = NGramStore.open(extra_store_dir)
        engine = QueryEngine(api, extra_store=extra)

        def compare(key):
            return engine.handle({"op": "compare", "key": list(key)})

        def compare_terms(terms):
            return engine.handle({"op": "compare", "terms": list(terms)})

        return compare, compare_terms, extra

    def test_compare(self, api, reference, extra_store_dir):
        compare, _, extra = self._comparer(api, extra_store_dir)
        try:
            for key, expected in reference["compares"].items():
                assert compare(key) == expected
        finally:
            if extra is not None:
                extra.close()

    def test_compare_terms(self, api, reference, extra_store_dir):
        _, compare_terms, extra = self._comparer(api, extra_store_dir)
        missing = {
            "found_a": False,
            "value_a": None,
            "found_b": False,
            "value_b": None,
        }
        try:
            for key, expected in list(reference["compares"].items())[:5]:
                terms = [term_for(term_id) for term_id in key]
                if all(term_id <= MAX_TERM for term_id in key):
                    assert compare_terms(terms) == expected
            assert compare_terms(["no-such-term"]) == missing
        finally:
            if extra is not None:
                extra.close()


class TestQueryCLIRemote:
    """`repro query --server/--url` renders exactly like the direct store."""

    def _output(self, capsys, argv):
        code = main(argv)
        return code, capsys.readouterr().out

    @pytest.mark.parametrize(
        "argv_tail",
        [
            ["--top-k", "6"],
            ["--top-k", "6", "--order", "key"],
            ["--get", "w03 w07"],
            ["--prefix", "w03", "--limit", "5"],
            ["--top-k", "4", "--ids"],
            ["--stats"],
        ],
    )
    def test_remote_matches_direct(self, capsys, store_dir, topology, argv_tail):
        direct_code, direct_out = self._output(capsys, ["query", store_dir] + argv_tail)
        host, port = topology["socket"]
        socket_code, socket_out = self._output(
            capsys, ["query", "--server", f"{host}:{port}"] + argv_tail
        )
        http_code, http_out = self._output(
            capsys, ["query", "--url", topology["http_url"]] + argv_tail
        )
        assert socket_code == direct_code
        assert http_code == direct_code
        assert socket_out == direct_out
        assert http_out == direct_out

    def test_not_found_exit_code_matches(self, capsys, store_dir, topology):
        direct_code, direct_out = self._output(
            capsys, ["query", store_dir, "--get", "no-such-term"]
        )
        host, port = topology["socket"]
        remote_code, remote_out = self._output(
            capsys, ["query", "--server", f"{host}:{port}", "--get", "no-such-term"]
        )
        assert direct_code == remote_code == 1
        assert direct_out == remote_out

    def test_source_validation(self, capsys, store_dir, topology):
        host, port = topology["socket"]
        assert main(["query", store_dir, "--server", f"{host}:{port}", "--top-k", "3"]) == 2
        assert main(["query", "--top-k", "3"]) == 2
        assert main(["query", "--server", "not-a-hostport", "--top-k", "3"]) == 2
        capsys.readouterr()

    def test_dead_server_is_a_clean_error(self, capsys, store_dir):
        assert main(["query", "--server", "127.0.0.1:1", "--get", "w00"]) == 2
        error = capsys.readouterr().err
        assert "error:" in error
