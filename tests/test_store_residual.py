"""Residual sidecar tables: exact store merges at any τ.

The core claim under test: a store built with ``StoreConfig(min_frequency=τ)``
keeps its sub-τ counts in a residual sidecar, so k-way merging such stores
(summing main+residual per input and re-splitting at τ) produces *exactly*
what a from-scratch recount of the union corpus would — records, metadata,
vocabulary and top-k alike — without recounting anything.  Fuzzed over
random document-shard splits, τ ∈ {2, 3, 5} and 2/3/5-way merges.

Also home to the merge guard rails: legacy residual-less τ>1 stores refuse
to merge exactly (``allow_lower_bound`` keeps the old behaviour and stamps
``counts: lower_bound``, which poisons downstream exact merges), and
``_merged_metadata`` rejects boolean ``unigram_total`` values and warns
when inputs disagree on carrying one.
"""

import random
import warnings

import pytest

from repro.algorithms import make_counter
from repro.config import ConfigurationError, NGramJobConfig, StoreConfig
from repro.corpus.collection import EncodedCollection
from repro.exceptions import StoreError
from repro.harness.datasets import nytimes_like
from repro.ngramstore import NGramStore, build_store, merge_stores
from repro.ngramstore.build import RESIDUAL_DIRNAME


def counted_store(collection, store_dir, tau, num_partitions=2):
    """Count ``collection`` at τ=1 and persist with the store-side threshold.

    This is the exact path ``repro count --tau 1 --store-tau τ`` takes, so
    the resulting manifest metadata (algorithm, num_ngrams, unigram_total,
    vocabulary_size) is what a real counting run records.
    """
    counter = make_counter(
        "SUFFIX-SIGMA", NGramJobConfig(min_frequency=1, max_length=3)
    )
    counter.run(
        collection,
        store_dir=store_dir,
        store=StoreConfig(
            num_partitions=num_partitions,
            records_per_block=32,
            min_frequency=tau,
        ),
    )
    return store_dir


def random_shards(collection, num_shards, rng):
    """Split the collection's documents into ``num_shards`` random slices."""
    documents = list(collection.documents)
    assert len(documents) >= num_shards
    cuts = sorted(rng.sample(range(1, len(documents)), num_shards - 1))
    bounds = [0] + cuts + [len(documents)]
    return [
        EncodedCollection(documents[low:high], collection.vocabulary)
        for low, high in zip(bounds, bounds[1:])
    ]


class TestResidualBuild:
    def test_build_splits_at_threshold(self, tmp_path):
        records = [((index,), count) for index, count in enumerate([1, 2, 3, 4, 5, 9])]
        store_dir = str(tmp_path / "store")
        build_store(records, store_dir, store=StoreConfig(min_frequency=3))
        with NGramStore.open(store_dir) as store:
            assert store.min_frequency == 3
            assert store.has_residual
            assert list(store.items()) == [(key, count) for key, count in records if count >= 3]
            residual = store.residual
            assert list(residual.items()) == [
                (key, count) for key, count in records if count < 3
            ]
            assert residual.metadata["residual"] is True
            assert residual.metadata["residual_below"] == 3
            # Main + residual recover the full τ=1 count table, in key order.
            assert list(store.exact_items()) == records
            entry = store.manifest["residual"]
            assert entry["directory"] == RESIDUAL_DIRNAME
            assert entry["below"] == 3
            assert entry["num_records"] == 2
            assert store.stats()["residual"]["num_records"] == 2

    def test_tau_one_build_has_no_residual(self, tmp_path):
        store_dir = str(tmp_path / "store")
        build_store([((1,), 1), ((2,), 7)], store_dir)
        with NGramStore.open(store_dir) as store:
            assert not store.has_residual
            assert store.residual is None
            assert store.min_frequency == 1
            assert "residual" not in store.stats()
            assert list(store.exact_items()) == list(store.items())

    def test_residual_build_rejects_non_integer_counts(self, tmp_path):
        for bad in [True, 2.5, "3"]:
            with pytest.raises(StoreError, match="integer counts"):
                build_store(
                    [((1,), bad)],
                    str(tmp_path / "bad"),
                    store=StoreConfig(min_frequency=2),
                )

    def test_residual_build_rejects_prefiltered_counts(self, tmp_path):
        with pytest.raises(StoreError, match="already frequency-filtered"):
            build_store(
                [((1,), 0)], str(tmp_path / "bad"), store=StoreConfig(min_frequency=2)
            )

    def test_store_config_rejects_bad_threshold(self):
        with pytest.raises(ConfigurationError, match="min_frequency"):
            StoreConfig(min_frequency=0)

    def test_counting_run_must_be_unfiltered(self):
        """τ>1 counting prunes at emit — the residual would be incomplete."""
        collection = nytimes_like(num_documents=6, seed=3).build()
        counter = make_counter(
            "SUFFIX-SIGMA", NGramJobConfig(min_frequency=2, max_length=2)
        )
        with pytest.raises(ConfigurationError, match="raw τ=1"):
            counter.run(
                collection, store_dir="unused", store=StoreConfig(min_frequency=2)
            )

    def test_rebuild_clears_stale_residual(self, tmp_path):
        store_dir = str(tmp_path / "store")
        build_store([((1,), 1), ((2,), 9)], store_dir, store=StoreConfig(min_frequency=5))
        build_store([((3,), 4)], store_dir)  # τ=1 rebuild over the same dir
        with NGramStore.open(store_dir) as store:
            assert not store.has_residual
            assert list(store.items()) == [((3,), 4)]


class TestExactMergeFuzz:
    """Merged residual stores are indistinguishable from a union recount."""

    @pytest.mark.parametrize(
        ("tau", "num_shards", "seed"),
        [(2, 2, 11), (3, 3, 22), (5, 5, 33), (3, 5, 44), (5, 2, 55)],
    )
    def test_merge_equals_union_recount(self, tmp_path, tau, num_shards, seed):
        rng = random.Random(seed)
        collection = nytimes_like(
            num_documents=rng.randint(18, 30), seed=seed
        ).build()

        shard_dirs = [
            counted_store(shard, str(tmp_path / f"shard-{index}"), tau)
            for index, shard in enumerate(
                random_shards(collection, num_shards, rng)
            )
        ]
        merged_dir = str(tmp_path / "merged")
        merge_stores(
            shard_dirs,
            merged_dir,
            store=StoreConfig(num_partitions=3, records_per_block=32),
        )
        union_dir = counted_store(
            collection, str(tmp_path / "union"), tau, num_partitions=3
        )

        with NGramStore.open(merged_dir) as merged, NGramStore.open(union_dir) as scratch:
            # Records: main and residual streams both identical.
            assert list(merged.items()) == list(scratch.items())
            assert list(merged.residual.items()) == list(scratch.residual.items())
            assert list(merged.exact_items()) == list(scratch.exact_items())
            # Metadata: identical once the merge's provenance keys are set
            # aside — τ, num_ngrams, unigram_total, vocabulary_size are all
            # recomputed exactly from the merged stream.
            metadata = dict(merged.metadata)
            assert metadata.pop("merged_num_inputs") == num_shards
            metadata.pop("merged_inputs")
            assert metadata == scratch.metadata
            assert merged.manifest["residual"]["below"] == tau
            assert (
                merged.manifest["residual"]["num_records"]
                == scratch.manifest["residual"]["num_records"]
            )
            # Vocabulary and queries.
            assert list(merged.vocabulary.terms()) == list(scratch.vocabulary.terms())
            assert merged.top_k(15) == scratch.top_k(15)
            assert merged.top_k(15, order="key") == scratch.top_k(15, order="key")
            for key, _ in list(scratch.items())[::17]:
                assert merged.get(key) == scratch.get(key)

    def test_promotion_across_shards(self, tmp_path):
        """A key under τ in *every* shard surfaces once its union count crosses τ."""
        left_dir, right_dir = str(tmp_path / "left"), str(tmp_path / "right")
        build_store([((7,), 2)], left_dir, store=StoreConfig(min_frequency=3))
        build_store([((7,), 2)], right_dir, store=StoreConfig(min_frequency=3))
        merged_dir = str(tmp_path / "merged")
        merge_stores([left_dir, right_dir], merged_dir)
        with NGramStore.open(merged_dir) as merged:
            assert merged.get((7,)) == 4  # promoted: 2 + 2 >= 3
            assert list(merged.residual.items()) == []

    def test_rethreshold_single_store(self, tmp_path):
        """Re-applying a higher τ to one residual store demotes exactly."""
        records = [((index,), count) for index, count in enumerate([1, 2, 3, 4, 5, 9])]
        store_dir = str(tmp_path / "store")
        build_store(records, store_dir, store=StoreConfig(min_frequency=2))
        out_dir = str(tmp_path / "rethresholded")
        merge_stores([store_dir], out_dir, min_frequency=5)
        with NGramStore.open(out_dir) as store:
            assert store.min_frequency == 5
            assert list(store.items()) == [(key, count) for key, count in records if count >= 5]
            assert list(store.exact_items()) == records


class TestMergeGuards:
    def legacy_store(self, tmp_path, name, records=None):
        """A τ>1 store without a residual — what pre-residual builds produced."""
        store_dir = str(tmp_path / name)
        build_store(
            records if records is not None else [((1,), 5), ((2,), 9)],
            store_dir,
            metadata={"min_frequency": 3},
        )
        return store_dir

    def test_legacy_pair_refuses_without_flag(self, tmp_path):
        first = self.legacy_store(tmp_path, "a")
        second = self.legacy_store(tmp_path, "b")
        with pytest.raises(StoreError, match="no residual table"):
            merge_stores([first, second], str(tmp_path / "out"))

    def test_allow_lower_bound_stamps_output(self, tmp_path):
        first = self.legacy_store(tmp_path, "a", [((1,), 5)])
        second = self.legacy_store(tmp_path, "b", [((1,), 4)])
        out_dir = str(tmp_path / "out")
        merge_stores([first, second], out_dir, allow_lower_bound=True)
        with NGramStore.open(out_dir) as merged:
            assert merged.metadata["counts"] == "lower_bound"
            assert merged.get((1,)) == 9

    def test_lower_bound_stamp_poisons_downstream_merges(self, tmp_path):
        first = self.legacy_store(tmp_path, "a")
        second = self.legacy_store(tmp_path, "b")
        stamped = str(tmp_path / "stamped")
        merge_stores([first, second], stamped, allow_lower_bound=True)
        clean = str(tmp_path / "clean")
        build_store([((5,), 2)], clean)  # τ=1, residual-exact on its own
        with pytest.raises(StoreError, match="no residual table"):
            merge_stores([stamped, clean], str(tmp_path / "out2"))

    def test_single_legacy_input_repartitions_without_flag(self, tmp_path):
        """k=1 is a pure repartition — nothing is summed, nothing undercounts."""
        records = [((index,), 5 + index) for index in range(40)]
        legacy = self.legacy_store(tmp_path, "solo", records)
        out_dir = str(tmp_path / "out")
        merge_stores([legacy], out_dir, store=StoreConfig(num_partitions=3))
        with NGramStore.open(out_dir) as merged:
            assert list(merged.items()) == records
            assert "counts" not in merged.metadata
            assert not merged.has_residual
            assert merged.metadata["min_frequency"] == 3  # carried, not stamped

    def test_min_frequency_needs_residuals(self, tmp_path):
        legacy = self.legacy_store(tmp_path, "solo")
        with pytest.raises(StoreError, match="without residual tables"):
            merge_stores([legacy], str(tmp_path / "out"), min_frequency=5)

    def test_merge_rejects_invalid_min_frequency(self, tmp_path):
        store_dir = str(tmp_path / "store")
        build_store([((1,), 2)], store_dir)
        with pytest.raises(StoreError, match="min_frequency must be >= 1"):
            merge_stores([store_dir], str(tmp_path / "out"), min_frequency=0)

    def test_exact_merge_rejects_filtered_counts(self, tmp_path):
        """A zero count smuggled into a residual-exact merge fails loudly."""
        store_dir = str(tmp_path / "store")
        build_store([((1,), 0), ((2,), 8)], store_dir)  # τ=1 build accepts any value
        with pytest.raises(StoreError, match="frequency-filtered"):
            merge_stores([store_dir], str(tmp_path / "out"), min_frequency=2)


class TestMergedMetadataUnigramTotal:
    def build_pair(self, tmp_path, first_metadata, second_metadata):
        dirs = []
        for name, metadata in (("a", first_metadata), ("b", second_metadata)):
            store_dir = str(tmp_path / name)
            build_store([((1,), 4), ((2,), 6)], store_dir, metadata=metadata)
            dirs.append(store_dir)
        return dirs

    def test_boolean_total_rejected_with_warning(self, tmp_path):
        dirs = self.build_pair(
            tmp_path, {"unigram_total": True}, {"unigram_total": 10}
        )
        out_dir = str(tmp_path / "out")
        with pytest.warns(UserWarning, match="unigram_total"):
            merge_stores(dirs, out_dir)
        with NGramStore.open(out_dir) as merged:
            assert "unigram_total" not in merged.metadata

    def test_missing_total_warns_and_drops(self, tmp_path):
        dirs = self.build_pair(tmp_path, {"unigram_total": 10}, {})
        out_dir = str(tmp_path / "out")
        with pytest.warns(UserWarning, match="carry no usable total"):
            merge_stores(dirs, out_dir)
        with NGramStore.open(out_dir) as merged:
            assert "unigram_total" not in merged.metadata

    def test_absent_everywhere_is_silent(self, tmp_path):
        dirs = self.build_pair(tmp_path, {}, {})
        out_dir = str(tmp_path / "out")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            merge_stores(dirs, out_dir)
        with NGramStore.open(out_dir) as merged:
            assert "unigram_total" not in merged.metadata

    def test_usable_totals_sum(self, tmp_path):
        dirs = self.build_pair(
            tmp_path, {"unigram_total": 10}, {"unigram_total": 7}
        )
        out_dir = str(tmp_path / "out")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            merge_stores(dirs, out_dir)
        with NGramStore.open(out_dir) as merged:
            assert merged.metadata["unigram_total"] == 17
