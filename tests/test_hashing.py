"""Tests for the deterministic hashing helpers."""

import subprocess
import sys

import pytest
from hypothesis import given, strategies as st

from repro.util.hashing import stable_hash


class TestStableHash:
    def test_supported_types(self):
        for key in (0, 123456, -5, "term", b"bytes", ("a", 1), (1, (2, 3)), True, False):
            value = stable_hash(key)
            assert isinstance(value, int)
            assert value >= 0

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            stable_hash(3.14)  # type: ignore[arg-type]
        with pytest.raises(TypeError):
            stable_hash(["list"])  # type: ignore[arg-type]

    def test_deterministic_within_process(self):
        assert stable_hash(("a", "b", 3)) == stable_hash(("a", "b", 3))

    def test_deterministic_across_processes(self):
        # str hashing must not depend on PYTHONHASHSEED.
        code = "from repro.util.hashing import stable_hash; print(stable_hash(('hello', 42)))"
        outputs = set()
        for seed in ("0", "12345"):
            result = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
                check=False,
            )
            if result.returncode != 0:
                pytest.skip("subprocess could not import repro (environment-specific)")
            outputs.add(result.stdout.strip())
        assert len(outputs) == 1
        assert outputs == {str(stable_hash(("hello", 42)))}

    def test_order_sensitivity_for_tuples(self):
        assert stable_hash((1, 2)) != stable_hash((2, 1))

    def test_bool_differs_from_int_semantics(self):
        # Bools are normalised explicitly; both variants must be stable ints.
        assert isinstance(stable_hash(True), int)
        assert isinstance(stable_hash(False), int)
        assert stable_hash(True) != stable_hash(False)

    @given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=8))
    def test_distribution_over_partitions(self, terms):
        # Hash values modulo a small partition count cover the full range
        # reasonably: at minimum, they are valid partition indexes.
        partitions = 7
        index = stable_hash(tuple(terms)) % partitions
        assert 0 <= index < partitions

    @given(st.text(max_size=30), st.text(max_size=30))
    def test_equal_inputs_equal_hashes(self, left, right):
        if left == right:
            assert stable_hash(left) == stable_hash(right)
        # (Different inputs are allowed to collide, so no assertion otherwise.)

    def test_spread_of_consecutive_integers(self):
        # splitmix-style mixing should spread consecutive ints across buckets.
        buckets = {stable_hash(value) % 16 for value in range(256)}
        assert len(buckets) == 16
