"""Cross-algorithm agreement: the heart of the correctness argument.

All four methods compute the same well-defined quantity (Section III's
problem statement), so on any input and any parameter setting their outputs
must coincide with each other and with the brute-force reference.  These
property-based tests generate random document collections and parameters and
check exactly that, including under the implementation variations of
Section V (combiner, document splitting) and for document frequencies.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algorithms import ALGORITHMS, count_ngrams
from repro.algorithms.apriori_index import AprioriIndexCounter
from repro.algorithms.apriori_scan import AprioriScanCounter
from repro.algorithms.naive import NaiveCounter
from repro.algorithms.suffix_sigma import SuffixSigmaCounter
from repro.config import NGramJobConfig
from repro.corpus.collection import DocumentCollection
from repro.ngrams.reference import (
    reference_document_frequencies,
    reference_ngram_statistics,
)

ALL_COUNTERS = [NaiveCounter, AprioriScanCounter, AprioriIndexCounter, SuffixSigmaCounter]

# Small vocabularies force many repeated n-grams, which is the interesting case.
documents_strategy = st.lists(
    st.lists(st.sampled_from("abcxyz"), min_size=1, max_size=10),
    min_size=1,
    max_size=8,
)
tau_strategy = st.integers(min_value=1, max_value=5)
sigma_strategy = st.one_of(st.none(), st.integers(min_value=1, max_value=5))

relaxed = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _collection(documents) -> DocumentCollection:
    return DocumentCollection.from_token_lists(documents)


class TestAgreementWithReference:
    @relaxed
    @given(documents_strategy, tau_strategy, sigma_strategy)
    def test_all_algorithms_match_reference(self, documents, tau, sigma):
        collection = _collection(documents)
        expected = reference_ngram_statistics(
            collection.records(), min_frequency=tau, max_length=sigma
        )
        config = NGramJobConfig(
            min_frequency=tau, max_length=sigma, num_reducers=3, apriori_index_k=2
        )
        for counter_class in ALL_COUNTERS:
            result = counter_class(config).run(collection)
            assert result.statistics == expected, counter_class.name

    @relaxed
    @given(documents_strategy, tau_strategy, sigma_strategy)
    def test_document_splitting_preserves_results(self, documents, tau, sigma):
        collection = _collection(documents)
        expected = reference_ngram_statistics(
            collection.records(), min_frequency=tau, max_length=sigma
        )
        config = NGramJobConfig(
            min_frequency=tau,
            max_length=sigma,
            split_documents=True,
            num_reducers=2,
            apriori_index_k=2,
        )
        for counter_class in (NaiveCounter, SuffixSigmaCounter, AprioriScanCounter):
            result = counter_class(config).run(collection)
            assert result.statistics == expected, counter_class.name

    @relaxed
    @given(documents_strategy, st.integers(min_value=1, max_value=3), sigma_strategy)
    def test_document_frequency_agreement(self, documents, tau, sigma):
        collection = _collection(documents)
        expected = reference_document_frequencies(
            collection.records(), min_frequency=tau, max_length=sigma
        )
        config = NGramJobConfig(
            min_frequency=tau,
            max_length=sigma,
            count_document_frequency=True,
            num_reducers=2,
            apriori_index_k=2,
        )
        for counter_class in ALL_COUNTERS:
            result = counter_class(config).run(collection)
            assert result.statistics == expected, counter_class.name

    @relaxed
    @given(documents_strategy, tau_strategy)
    def test_no_combiner_agreement(self, documents, tau):
        collection = _collection(documents)
        expected = reference_ngram_statistics(
            collection.records(), min_frequency=tau, max_length=3
        )
        config = NGramJobConfig(
            min_frequency=tau, max_length=3, use_combiner=False, num_reducers=2
        )
        for counter_class in (NaiveCounter, AprioriScanCounter):
            result = counter_class(config).run(collection)
            assert result.statistics == expected, counter_class.name


class TestAgreementOnMultiSentenceDocuments:
    @relaxed
    @given(
        st.lists(
            st.lists(
                st.lists(st.sampled_from("abx"), min_size=1, max_size=6),
                min_size=1,
                max_size=3,
            ),
            min_size=1,
            max_size=5,
        ),
        tau_strategy,
    )
    def test_sentence_barriers_respected_by_all_algorithms(self, documents, tau):
        """n-grams never span sentences, for every algorithm."""
        from repro.corpus.document import Document

        collection = DocumentCollection(
            [Document.from_sentences(index, sentences) for index, sentences in enumerate(documents)]
        )
        expected = reference_ngram_statistics(
            collection.records(), min_frequency=tau, max_length=4
        )
        config = NGramJobConfig(
            min_frequency=tau, max_length=4, num_reducers=2, apriori_index_k=2
        )
        for counter_class in ALL_COUNTERS:
            result = counter_class(config).run(collection)
            assert result.statistics == expected, counter_class.name


class TestFacade:
    def test_count_ngrams_by_name(self, running_example, running_example_expected):
        for name in ALGORITHMS:
            result = count_ngrams(
                running_example,
                min_frequency=3,
                max_length=3,
                algorithm=name,
                apriori_index_k=2,
            )
            assert result.statistics.as_dict() == running_example_expected

    def test_count_ngrams_by_class(self, running_example, running_example_expected):
        result = count_ngrams(
            running_example, min_frequency=3, max_length=3, algorithm=SuffixSigmaCounter
        )
        assert result.statistics.as_dict() == running_example_expected

    def test_count_ngrams_aliases(self, running_example):
        for alias in ("suffix-sigma", "Suffix_Sigma", "SUFFIX"):
            result = count_ngrams(running_example, min_frequency=3, max_length=3, algorithm=alias)
            assert result.algorithm == "SUFFIX-SIGMA"

    def test_unknown_algorithm(self, running_example):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            count_ngrams(running_example, algorithm="UNKNOWN")


class TestResultMetadata:
    def test_counting_result_fields(self, running_example):
        result = count_ngrams(running_example, min_frequency=3, max_length=3)
        assert result.elapsed_seconds >= 0
        assert result.map_output_records > 0
        assert result.map_output_bytes > 0
        assert result.num_jobs >= 1
        assert result.config.min_frequency == 3

    def test_simulated_wallclock_positive(self, running_example):
        from repro.config import ClusterConfig

        result = count_ngrams(running_example, min_frequency=3, max_length=3)
        assert result.simulated_wallclock(ClusterConfig()) > 0

    def test_more_slots_not_slower(self, small_newswire):
        from repro.config import ClusterConfig

        result = count_ngrams(small_newswire, min_frequency=5, max_length=3)
        slow = result.simulated_wallclock(ClusterConfig.with_slots(2))
        fast = result.simulated_wallclock(ClusterConfig.with_slots(32))
        assert fast <= slow + 1e-9
