"""Tests for the distributed cache emulation."""

import pytest

from repro.exceptions import MapReduceError
from repro.mapreduce.cache import DistributedCache


class TestDistributedCache:
    def test_publish_and_get(self):
        cache = DistributedCache()
        cache.publish("dict", {("a",), ("b",)})
        assert cache.get("dict") == {("a",), ("b",)}

    def test_missing_entry_raises(self):
        cache = DistributedCache()
        with pytest.raises(MapReduceError):
            cache.get("missing")

    def test_contains_and_in(self):
        cache = DistributedCache()
        cache.publish("x", 1)
        assert cache.contains("x")
        assert "x" in cache
        assert "y" not in cache

    def test_replace_entry(self):
        cache = DistributedCache()
        cache.publish("x", 1)
        cache.publish("x", 2)
        assert cache.get("x") == 2
        assert len(cache) == 1

    def test_remove(self):
        cache = DistributedCache()
        cache.publish("x", 1)
        cache.remove("x")
        assert "x" not in cache
        cache.remove("x")  # removing twice is a no-op

    def test_size_accounting(self):
        cache = DistributedCache()
        cache.publish("small", (1,))
        cache.publish("large", tuple(range(1000)))
        assert cache.size_bytes("large") > cache.size_bytes("small")
        assert cache.total_bytes() == cache.size_bytes("small") + cache.size_bytes("large")

    def test_size_of_missing_entry_raises(self):
        cache = DistributedCache()
        with pytest.raises(MapReduceError):
            cache.size_bytes("missing")

    def test_unsizeable_values_count_as_zero(self):
        cache = DistributedCache()
        cache.publish("opaque", object())
        assert cache.size_bytes("opaque") == 0

    def test_names_sorted(self):
        cache = DistributedCache()
        cache.publish("b", 1)
        cache.publish("a", 2)
        assert list(cache.names()) == ["a", "b"]
