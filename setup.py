"""Setuptools shim.

The project is configured through ``pyproject.toml``; this file exists so
that legacy editable installs (``pip install -e . --no-use-pep517`` or
``python setup.py develop``) work in offline environments where the ``wheel``
package is unavailable and PEP 660 editable wheels cannot be built.
"""

from setuptools import setup

setup()
