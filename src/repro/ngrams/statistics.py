"""Containers for computed n-gram statistics.

An :class:`NGramStatistics` maps n-grams (tuples of terms) to their
collection frequency (or document frequency, depending on how it was
computed).  It offers the operations the experiments need: filtering by the
paper's τ/σ parameters, bucketing into the 2-dimensional exponential
histogram of Figure 2, and conversions for reporting.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.exceptions import ReproError

NGram = Tuple
Histogram = Dict[Tuple[int, int], int]


class NGramStatistics:
    """A mapping from n-gram to frequency with analysis helpers."""

    def __init__(self, counts: Optional[Mapping[NGram, int]] = None) -> None:
        self._counts: Dict[NGram, int] = {}
        if counts:
            for ngram, count in counts.items():
                self.add(ngram, count)

    # ----------------------------------------------------------- mutation
    def add(self, ngram: Iterable, count: int) -> None:
        """Add ``count`` occurrences of ``ngram`` (accumulating)."""
        key = tuple(ngram)
        if not key:
            raise ReproError("cannot record statistics for the empty n-gram")
        if count < 0:
            raise ReproError(f"negative count {count} for n-gram {key!r}")
        self._counts[key] = self._counts.get(key, 0) + count

    def set(self, ngram: Iterable, count: int) -> None:
        """Set the frequency of ``ngram`` (overwriting)."""
        key = tuple(ngram)
        if not key:
            raise ReproError("cannot record statistics for the empty n-gram")
        self._counts[key] = count

    # ------------------------------------------------------------- access
    def frequency(self, ngram: Iterable) -> int:
        """Frequency of ``ngram`` (0 when absent)."""
        return self._counts.get(tuple(ngram), 0)

    def __getitem__(self, ngram: Iterable) -> int:
        key = tuple(ngram)
        if key not in self._counts:
            raise KeyError(key)
        return self._counts[key]

    def __contains__(self, ngram: object) -> bool:
        if not isinstance(ngram, tuple):
            return False
        return ngram in self._counts

    def __len__(self) -> int:
        return len(self._counts)

    def __iter__(self) -> Iterator[NGram]:
        return iter(self._counts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NGramStatistics):
            return NotImplemented
        return self._counts == other._counts

    def items(self) -> Iterator[Tuple[NGram, int]]:
        """Iterate over ``(ngram, frequency)`` pairs."""
        return iter(self._counts.items())

    def as_dict(self) -> Dict[NGram, int]:
        """Snapshot of the statistics as a plain dictionary."""
        return dict(self._counts)

    # ------------------------------------------------------------ analysis
    def filtered(
        self, min_frequency: int = 1, max_length: Optional[int] = None
    ) -> "NGramStatistics":
        """Restrict to n-grams with frequency ≥ τ and length ≤ σ."""
        result = NGramStatistics()
        for ngram, count in self._counts.items():
            if count < min_frequency:
                continue
            if max_length is not None and len(ngram) > max_length:
                continue
            result.set(ngram, count)
        return result

    def total_frequency(self) -> int:
        """Sum of all recorded frequencies."""
        return sum(self._counts.values())

    def max_length(self) -> int:
        """Length of the longest recorded n-gram (0 when empty)."""
        return max((len(ngram) for ngram in self._counts), default=0)

    def by_length(self) -> Dict[int, int]:
        """Number of distinct n-grams per length."""
        histogram: Dict[int, int] = {}
        for ngram in self._counts:
            histogram[len(ngram)] = histogram.get(len(ngram), 0) + 1
        return histogram

    def top(self, k: int, length: Optional[int] = None) -> List[Tuple[NGram, int]]:
        """The ``k`` most frequent n-grams, optionally restricted to one length."""
        candidates = (
            (ngram, count)
            for ngram, count in self._counts.items()
            if length is None or len(ngram) == length
        )
        return sorted(candidates, key=lambda item: (-item[1], item[0]))[:k]

    def bucket_histogram(self, base: int = 10) -> Histogram:
        """The 2-d exponential histogram of Figure 2.

        An n-gram ``s`` with frequency ``cf(s)`` falls into bucket
        ``(floor(log_base |s|), floor(log_base cf(s)))``.
        """
        histogram: Histogram = {}
        for ngram, count in self._counts.items():
            if count < 1:
                continue
            bucket = (
                int(math.floor(math.log(len(ngram), base))),
                int(math.floor(math.log(count, base))),
            )
            histogram[bucket] = histogram.get(bucket, 0) + 1
        return histogram

    # --------------------------------------------------------- conversions
    def decoded(self, vocabulary: "VocabularyLike") -> "NGramStatistics":
        """Translate integer term identifiers back to surface forms."""
        result = NGramStatistics()
        for ngram, count in self._counts.items():
            result.set(tuple(vocabulary.term(term_id) for term_id in ngram), count)
        return result

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[Iterable, int]]) -> "NGramStatistics":
        """Build statistics from ``(ngram, count)`` pairs (counts accumulate)."""
        statistics = cls()
        for ngram, count in pairs:
            statistics.add(ngram, count)
        return statistics

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"NGramStatistics({len(self._counts)} n-grams)"


class VocabularyLike:
    """Structural protocol for :meth:`NGramStatistics.decoded`."""

    def term(self, term_id: int) -> str:  # pragma: no cover - interface only
        raise NotImplementedError
