"""n-gram primitives: sequence predicates, orderings, statistics, references.

Everything in this package is independent of MapReduce: it defines the
mathematical objects of Section II (prefix/suffix/subsequence relations,
occurrence counts, collection frequencies), the reverse lexicographic order
of Section IV, containers for n-gram statistics, and brute-force reference
implementations used as ground truth by the test suite.
"""

from repro.ngrams.ordering import ReverseLexicographicOrder, reverse_lexicographic_compare
from repro.ngrams.sequence import (
    count_occurrences,
    enumerate_ngrams,
    is_prefix,
    is_subsequence,
    is_suffix,
    longest_common_prefix,
    suffixes,
)
from repro.ngrams.statistics import NGramStatistics
from repro.ngrams.reference import reference_document_frequencies, reference_ngram_statistics

__all__ = [
    "NGramStatistics",
    "ReverseLexicographicOrder",
    "count_occurrences",
    "enumerate_ngrams",
    "is_prefix",
    "is_subsequence",
    "is_suffix",
    "longest_common_prefix",
    "reference_document_frequencies",
    "reference_ngram_statistics",
    "reverse_lexicographic_compare",
    "suffixes",
]
