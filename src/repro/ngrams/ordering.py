"""Reverse lexicographic order of term sequences (Section IV).

SUFFIX-σ sorts the suffixes each reducer receives in *reverse lexicographic*
order, defined in the paper as::

    r < s  ⇔  (|r| > |s| ∧ s . r)
             ∨ ∃ 0 ≤ i < min(|r|,|s|) : r[i] > s[i] ∧ ∀ 0 ≤ j < i : r[j] = s[j]

i.e. sequences are compared position by position with *larger* terms first,
and when one sequence is a prefix of the other the *longer* one comes first.
This guarantees that when the reducer sees suffix ``s``, every n-gram that
sorts before ``s`` can no longer gain occurrences from unseen suffixes.

:class:`ReverseLexicographicOrder` is the MapReduce sort comparator
(Algorithm 4's ``compare()``); :func:`reverse_lexicographic_compare` is the
raw comparison function; :func:`reverse_lexicographic_sort_key` is a fast
key-based equivalent for integer term identifiers.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

from repro.mapreduce.job import SortComparator


def reverse_lexicographic_compare(r: Sequence, s: Sequence) -> int:
    """Classic comparator: negative when ``r`` sorts before ``s``."""
    limit = min(len(r), len(s))
    for index in range(limit):
        if r[index] > s[index]:
            return -1
        if r[index] < s[index]:
            return 1
    # Equal on the common prefix: the longer sequence sorts first.
    return len(s) - len(r)


def reverse_lexicographic_sort_key(sequence: Sequence[int]) -> Tuple:
    """Sort key equivalent to :func:`reverse_lexicographic_compare` for ints.

    Each term is negated (so larger terms sort first) and a positive sentinel
    is appended (so a longer sequence sorts before its proper prefixes, since
    every negated term is ≤ 0 < sentinel).
    """
    return tuple(-term for term in sequence) + (1,)


class ReverseLexicographicOrder(SortComparator):
    """Sort comparator installing the reverse lexicographic order."""

    def compare(self, left: Sequence, right: Sequence) -> int:
        return reverse_lexicographic_compare(left, right)

    def sort_key_function(self) -> Optional[Callable[[Sequence], Tuple]]:
        """Fast path used by the shuffle when keys are integer sequences."""
        return reverse_lexicographic_sort_key


def is_reverse_lexicographically_sorted(sequences: Sequence[Sequence]) -> bool:
    """Whether ``sequences`` are in reverse lexicographic order (for tests)."""
    return all(
        reverse_lexicographic_compare(sequences[index], sequences[index + 1]) <= 0
        for index in range(len(sequences) - 1)
    )
