"""Sequence predicates and n-gram enumeration (Section II of the paper).

Sequences are plain Python tuples of terms; terms may be strings (raw
documents) or integers (encoded documents) as long as they are hashable and
mutually comparable.  The definitions below transcribe the paper's notation:

* ``r . s`` — ``r`` is a *prefix* of ``s`` (:func:`is_prefix`);
* ``r / s`` — ``r`` is a *suffix* of ``s`` (:func:`is_suffix`);
* ``r ⊑ s`` — ``r`` is a (contiguous) *subsequence* of ``s``
  (:func:`is_subsequence`);
* ``f(r, s)`` — number of occurrences of ``r`` in ``s``
  (:func:`count_occurrences`).
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple


def is_prefix(r: Sequence, s: Sequence) -> bool:
    """Whether ``r`` is a prefix of ``s`` (every sequence prefixes itself)."""
    if len(r) > len(s):
        return False
    return all(r[i] == s[i] for i in range(len(r)))


def is_suffix(r: Sequence, s: Sequence) -> bool:
    """Whether ``r`` is a suffix of ``s`` (every sequence suffixes itself)."""
    if len(r) > len(s):
        return False
    offset = len(s) - len(r)
    return all(r[i] == s[offset + i] for i in range(len(r)))


def is_subsequence(r: Sequence, s: Sequence) -> bool:
    """Whether ``r`` occurs contiguously inside ``s``.

    Note that, following the paper, "subsequence" means *contiguous*
    subsequence (substring), not the scattered-subsequence relation of
    general sequence mining.
    """
    if len(r) > len(s):
        return False
    if len(r) == 0:
        return True
    for j in range(len(s) - len(r) + 1):
        if all(r[i] == s[j + i] for i in range(len(r))):
            return True
    return False


def count_occurrences(r: Sequence, s: Sequence) -> int:
    """The number of (possibly overlapping) occurrences ``f(r, s)``."""
    if len(r) == 0 or len(r) > len(s):
        return 0
    count = 0
    for j in range(len(s) - len(r) + 1):
        if all(r[i] == s[j + i] for i in range(len(r))):
            count += 1
    return count


def longest_common_prefix(r: Sequence, s: Sequence) -> int:
    """Length of the longest common prefix of ``r`` and ``s`` (the ``lcp()`` of Algorithm 4)."""
    limit = min(len(r), len(s))
    length = 0
    while length < limit and r[length] == s[length]:
        length += 1
    return length


def enumerate_ngrams(
    sequence: Tuple, max_length: Optional[int] = None
) -> Iterator[Tuple]:
    """Enumerate all n-grams of ``sequence`` up to ``max_length`` terms.

    This is exactly what the NAIVE mapper emits (Algorithm 1): for every
    begin offset ``b`` all end offsets ``e`` with ``e - b < max_length``.
    ``sequence`` must be a tuple; each n-gram is then a plain slice.
    """
    n = len(sequence)
    for b in range(n):
        end_limit = n if max_length is None else min(b + max_length, n)
        for e in range(b + 1, end_limit + 1):
            yield sequence[b:e]


def suffixes(sequence: Tuple, max_length: Optional[int] = None) -> Iterator[Tuple]:
    """Enumerate the suffixes of ``sequence``, truncated to ``max_length``.

    This is what the SUFFIX-σ mapper emits (Algorithm 4): one suffix per
    position, truncated to σ terms when σ is bounded.  ``sequence`` must be
    a tuple; each suffix is then a plain slice.
    """
    n = len(sequence)
    for b in range(n):
        end = n if max_length is None else min(b + max_length, n)
        yield sequence[b:end]


def concatenate(r: Sequence, s: Sequence) -> Tuple:
    """Concatenation ``r ‖ s`` as a tuple."""
    return tuple(r) + tuple(s)
