"""n-gram time series (Section VI.B).

An n-gram time series records, per time bucket (the paper uses publication
years), how often the n-gram occurs in documents published in that bucket —
the statistic popularised by the "culturomics" work of Michel et al. that
the paper cites as the motivating aggregation beyond plain occurrence
counting.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple


@dataclass
class TimeSeries:
    """Occurrence counts per time bucket for a single n-gram."""

    observations: Counter = field(default_factory=Counter)

    @classmethod
    def from_mapping(cls, mapping: Mapping[int, int]) -> "TimeSeries":
        return cls(observations=Counter(dict(mapping)))

    def record(self, bucket: Optional[int], count: int = 1) -> None:
        """Add ``count`` occurrences in ``bucket`` (ignored when bucket is None)."""
        if bucket is None:
            return
        self.observations[bucket] += count

    def merge(self, other: "TimeSeries") -> "TimeSeries":
        """Return the element-wise sum of this series and ``other``."""
        merged = Counter(self.observations)
        merged.update(other.observations)
        return TimeSeries(observations=merged)

    @property
    def total(self) -> int:
        """Total occurrences across all buckets."""
        return sum(self.observations.values())

    def value(self, bucket: int) -> int:
        """Occurrences in ``bucket`` (0 when absent)."""
        return self.observations.get(bucket, 0)

    def buckets(self) -> List[int]:
        """Sorted list of buckets with at least one occurrence."""
        return sorted(self.observations)

    def as_dict(self) -> Dict[int, int]:
        return dict(self.observations)

    def dense(self, start: int, end: int) -> List[int]:
        """Counts for every bucket in ``[start, end]`` inclusive (zeros filled)."""
        return [self.observations.get(bucket, 0) for bucket in range(start, end + 1)]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimeSeries):
            return NotImplemented
        return dict(self.observations) == dict(other.observations)


class NGramTimeSeriesCollection:
    """Time series for a set of n-grams."""

    def __init__(self) -> None:
        self._series: Dict[Tuple, TimeSeries] = {}

    def series(self, ngram: Iterable) -> TimeSeries:
        """The time series of ``ngram`` (empty series when absent)."""
        return self._series.get(tuple(ngram), TimeSeries())

    def set(self, ngram: Iterable, series: TimeSeries) -> None:
        self._series[tuple(ngram)] = series

    def __len__(self) -> int:
        return len(self._series)

    def __contains__(self, ngram: object) -> bool:
        return isinstance(ngram, tuple) and ngram in self._series

    def items(self) -> Iterator[Tuple[Tuple, TimeSeries]]:
        return iter(self._series.items())

    def as_dict(self) -> Dict[Tuple, Dict[int, int]]:
        """Nested plain-dict snapshot (n-gram → bucket → count)."""
        return {ngram: series.as_dict() for ngram, series in self._series.items()}

    def to_records(self) -> Iterator[Tuple[Tuple, Dict[int, int]]]:
        """``(ngram, bucket -> count)`` records, the store-build input format.

        Feed the result to :func:`repro.ngramstore.build.build_store` to
        persist the collection as a queryable on-disk store readable by
        :class:`StoreBackedTimeSeriesCollection`.
        """
        return iter(
            (ngram, series.as_dict()) for ngram, series in self._series.items()
        )


class StoreBackedTimeSeriesCollection:
    """Time series served from an on-disk n-gram store.

    ``store`` is an opened :class:`~repro.ngramstore.NGramStore` whose
    values are ``bucket -> count`` mappings (the records of
    :meth:`NGramTimeSeriesCollection.to_records`).  The object satisfies
    the read interface of :class:`NGramTimeSeriesCollection` — ``series``,
    ``items``, length, membership — so the culturomics analyses
    (:func:`repro.applications.culturomics.trend_report`) run on top of a
    store without materialising every series in memory: ``items`` streams
    through the store's block cache, ``series`` is one point lookup.
    """

    def __init__(self, store: Any) -> None:
        self.store = store

    def series(self, ngram: Iterable) -> TimeSeries:
        """The time series of ``ngram`` (empty series when absent)."""
        observations = self.store.get(tuple(ngram))
        if observations is None:
            return TimeSeries()
        return TimeSeries.from_mapping(observations)

    def __len__(self) -> int:
        return len(self.store)

    def __contains__(self, ngram: object) -> bool:
        return isinstance(ngram, tuple) and ngram in self.store

    def items(self) -> Iterator[Tuple[Tuple, TimeSeries]]:
        return iter(
            (ngram, TimeSeries.from_mapping(observations))
            for ngram, observations in self.store.items()
        )
