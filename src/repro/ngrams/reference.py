"""Brute-force reference implementations used as ground truth in tests.

These are deliberately simple, single-machine computations of the quantities
the MapReduce algorithms produce: collection frequencies, document
frequencies, maximal/closed subsets and n-gram time series.  They trade
efficiency for obviousness, which is exactly what a test oracle should do.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.ngrams.sequence import enumerate_ngrams, is_subsequence
from repro.ngrams.statistics import NGramStatistics

Record = Tuple[int, Tuple]


def reference_ngram_statistics(
    records: Iterable[Record],
    min_frequency: int = 1,
    max_length: Optional[int] = None,
) -> NGramStatistics:
    """Collection frequencies of all n-grams with cf ≥ τ and length ≤ σ."""
    counts: Counter = Counter()
    for _, sequence in records:
        for ngram in enumerate_ngrams(sequence, max_length):
            counts[ngram] += 1
    statistics = NGramStatistics()
    for ngram, count in counts.items():
        if count >= min_frequency:
            statistics.set(ngram, count)
    return statistics


def reference_document_frequencies(
    records: Iterable[Record],
    min_frequency: int = 1,
    max_length: Optional[int] = None,
) -> NGramStatistics:
    """Document frequencies (number of distinct documents containing the n-gram)."""
    documents: Dict[Tuple, set] = defaultdict(set)
    for doc_id, sequence in records:
        for ngram in enumerate_ngrams(sequence, max_length):
            documents[ngram].add(doc_id)
    statistics = NGramStatistics()
    for ngram, doc_ids in documents.items():
        if len(doc_ids) >= min_frequency:
            statistics.set(ngram, len(doc_ids))
    return statistics


def reference_maximal(statistics: NGramStatistics) -> NGramStatistics:
    """Maximal n-grams: no frequent proper super-sequence exists.

    ``statistics`` must already be restricted to the frequent n-grams
    (cf ≥ τ); maximality is evaluated against that set, matching the paper's
    definition "r is maximal if there is no n-gram s such that r ⊑ s and
    cf(s) ≥ τ".
    """
    frequent = list(statistics.items())
    result = NGramStatistics()
    for ngram, count in frequent:
        dominated = any(
            other != ngram and is_subsequence(ngram, other) for other, _ in frequent
        )
        if not dominated:
            result.set(ngram, count)
    return result


def reference_closed(statistics: NGramStatistics) -> NGramStatistics:
    """Closed n-grams: no frequent proper super-sequence with equal frequency."""
    frequent = list(statistics.items())
    result = NGramStatistics()
    for ngram, count in frequent:
        dominated = any(
            other != ngram and is_subsequence(ngram, other) and other_count == count
            for other, other_count in frequent
        )
        if not dominated:
            result.set(ngram, count)
    return result


def reference_time_series(
    records: Iterable[Record],
    timestamps: Mapping[int, Optional[int]],
    min_frequency: int = 1,
    max_length: Optional[int] = None,
) -> Dict[Tuple, Dict[int, int]]:
    """Per-n-gram time series: occurrences per document timestamp.

    Only n-grams whose *total* collection frequency reaches τ are reported,
    matching the SUFFIX-σ time-series extension.  Documents without a
    timestamp are ignored in the per-year breakdown but still count towards
    the total.
    """
    totals: Counter = Counter()
    series: Dict[Tuple, Counter] = defaultdict(Counter)
    for doc_id, sequence in records:
        timestamp = timestamps.get(doc_id)
        for ngram in enumerate_ngrams(sequence, max_length):
            totals[ngram] += 1
            if timestamp is not None:
                series[ngram][timestamp] += 1
    return {
        ngram: dict(series[ngram])
        for ngram, total in totals.items()
        if total >= min_frequency
    }
