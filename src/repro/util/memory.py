"""Peak-memory measurement via :mod:`tracemalloc`.

The dataset layer exists to bound memory, so the harness needs a way to
*observe* memory: :class:`PeakMemoryTracker` wraps a code region and
reports the high-water mark of Python-level allocations inside it.  The
number is tracemalloc's traced peak — allocations by the interpreter on
behalf of Python objects — which is exactly the quantity the streaming
refactor is supposed to push down; it is not RSS.

Trackers nest: measuring a region requires ``tracemalloc.reset_peak()``,
which is process-global, so before an inner tracker resets, every
enclosing tracker banks the peak observed so far and an inner region's
absolute peak is propagated outward on :meth:`stop` — each tracker
therefore reports the true high-water mark of its own region.  (Code
outside this class that reads tracemalloc's global peak around a tracked
region will still see it reset; trackers only cooperate with each other.)
"""

from __future__ import annotations

import tracemalloc
from typing import List, Optional


class PeakMemoryTracker:
    """Records the peak traced allocation between :meth:`start` and :meth:`stop`.

    Usable as a context manager::

        with PeakMemoryTracker() as tracker:
            run_something_big()
        print(tracker.peak_bytes)
    """

    #: Trackers currently measuring, outermost first (single-threaded use).
    _active: List["PeakMemoryTracker"] = []

    def __init__(self) -> None:
        self.peak_bytes: Optional[int] = None
        self._started_tracing = False
        self._peak_floor = 0

    def start(self) -> None:
        if self in PeakMemoryTracker._active:
            return
        if tracemalloc.is_tracing():
            # Bank the peak every enclosing tracker has accumulated so far:
            # reset_peak() is process-global and would otherwise erase it.
            _, peak = tracemalloc.get_traced_memory()
            for outer in PeakMemoryTracker._active:
                outer._peak_floor = max(outer._peak_floor, peak)
            tracemalloc.reset_peak()
        else:
            tracemalloc.start()
            self._started_tracing = True
        self._peak_floor = 0
        PeakMemoryTracker._active.append(self)

    def stop(self) -> int:
        """End the region and return (and record) its peak in bytes."""
        if self not in PeakMemoryTracker._active:
            raise RuntimeError("PeakMemoryTracker.stop() called before start()")
        _, peak = tracemalloc.get_traced_memory()
        peak = max(peak, self._peak_floor)
        PeakMemoryTracker._active.remove(self)
        if PeakMemoryTracker._active:
            # An inner region's absolute peak is also a peak of the (still
            # running) enclosing regions.
            enclosing = PeakMemoryTracker._active[-1]
            enclosing._peak_floor = max(enclosing._peak_floor, peak)
        if self._started_tracing:
            tracemalloc.stop()
            self._started_tracing = False
        self.peak_bytes = peak
        return peak

    def __enter__(self) -> "PeakMemoryTracker":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
