"""Per-request tracing: IDs, stage timings, and the structured slow-query log.

"Why was this query slow?" is unanswerable when a request crosses a
router, a replica pool, a wire protocol, a query engine and a block
cache, and each layer keeps its own anonymous timers.  This module gives
every request one identity and one timing ledger:

* clients mint a **trace ID** at the entry point (:func:`attach_trace`)
  and send it as an optional ``trace`` field of the canonical request
  schema — both wire protocols carry dicts, so the field costs nothing
  and old servers simply ignore it;
* servers rebuild a :class:`TraceContext` from the incoming request
  (:meth:`TraceContext.from_request`), time named stages with
  ``with trace.stage("route"):`` as the request moves through parsing,
  routing, block reads and decoding, and stamp the trace ID on the
  response;
* requests that exceed a threshold are appended to a
  :class:`SlowQueryLog` — JSON-lines, one object per slow request,
  carrying the trace ID, operation, key count, per-stage seconds and
  I/O deltas (blocks decoded, bloom rejections, cache hits), so a slow
  client call can be joined to the exact server-side breakdown by ID.

Nothing here depends on the serving tier; the serving tier depends on
this, so MapReduce jobs and offline tools can reuse the same ledger.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, TextIO

from .timer import Stopwatch

__all__ = [
    "SlowQueryLog",
    "TraceContext",
    "attach_trace",
    "new_trace_id",
    "trace_id_of",
]

#: Name of the optional request field carrying trace metadata on the wire.
TRACE_FIELD = "trace"


def new_trace_id() -> str:
    """A fresh 64-bit random trace ID as 16 lowercase hex characters."""
    return os.urandom(8).hex()


def trace_id_of(request: Any) -> Optional[str]:
    """The trace ID carried by a request dict, if it has a well-formed one."""
    if not isinstance(request, dict):
        return None
    trace = request.get(TRACE_FIELD)
    if isinstance(trace, dict):
        trace_id = trace.get("id")
        if isinstance(trace_id, str) and trace_id:
            return trace_id
    return None


def attach_trace(request: Dict[str, Any]) -> str:
    """Ensure ``request`` carries a trace ID; return it.

    Client entry points call this just before serialization.  An already
    present well-formed ID is respected, so a router fanning a request
    out to shards propagates the caller's ID instead of minting new ones
    — every hop of one logical request logs under the same identity.
    """
    existing = trace_id_of(request)
    if existing is not None:
        return existing
    trace_id = new_trace_id()
    request[TRACE_FIELD] = {"id": trace_id}
    return trace_id


class TraceContext:
    """One request's identity plus a ledger of named stage timings.

    Stages accumulate: entering ``stage("read")`` twice adds both spans
    to the same entry, which is what a ``multi_get`` that touches the
    store once per key wants.  The context is confined to one request on
    one thread, so no locking is needed.
    """

    __slots__ = ("trace_id", "stages", "_watch")

    def __init__(self, trace_id: Optional[str] = None) -> None:
        self.trace_id = trace_id or new_trace_id()
        self.stages: Dict[str, float] = {}
        self._watch = Stopwatch()

    @classmethod
    def from_request(cls, request: Any) -> "TraceContext":
        """Adopt the request's trace ID, or mint one for untraced requests."""
        return cls(trace_id_of(request))

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a named stage; nested different-named stages both count."""
        watch = Stopwatch()
        try:
            yield
        finally:
            self.add_stage(name, watch.elapsed())

    def add_stage(self, name: str, seconds: float) -> None:
        """Credit ``seconds`` to a stage without the context-manager form."""
        self.stages[name] = self.stages.get(name, 0.0) + seconds

    def elapsed(self) -> float:
        """Seconds since this context was created."""
        return self._watch.elapsed()

    def stages_ms(self) -> Dict[str, float]:
        """Stage timings in milliseconds, rounded for log friendliness."""
        return {name: round(seconds * 1e3, 3) for name, seconds in self.stages.items()}


class SlowQueryLog:
    """Append-only JSON-lines log of requests that crossed a latency threshold.

    One :class:`SlowQueryLog` is shared by every connection thread of a
    server, so appends are serialized under a lock and flushed per line —
    a crash loses at most the line being written.  With ``path=None`` the
    log collects entries in memory (``entries``), which is what tests and
    the in-process servers use.
    """

    def __init__(
        self,
        threshold_ms: float,
        path: Optional[str] = None,
        *,
        stream: Optional[TextIO] = None,
    ) -> None:
        if threshold_ms < 0:
            raise ValueError(f"slow-query threshold must be >= 0, got {threshold_ms}")
        self.threshold_ms = float(threshold_ms)
        self.path = path
        self.entries: list = []
        self._lock = threading.Lock()
        self._stream = stream
        if path is not None:
            parent = os.path.dirname(os.path.abspath(path))
            os.makedirs(parent, exist_ok=True)
            self._stream = open(path, "a", encoding="utf-8")

    def should_log(self, duration_s: float) -> bool:
        return duration_s * 1e3 >= self.threshold_ms

    def record(self, entry: Dict[str, Any]) -> None:
        """Append one slow-query record (already past :meth:`should_log`)."""
        entry = dict(entry)
        entry.setdefault("ts", time.time())
        line = json.dumps(entry, sort_keys=True)
        with self._lock:
            self.entries.append(entry)
            if self._stream is not None:
                self._stream.write(line + "\n")
                self._stream.flush()

    def close(self) -> None:
        with self._lock:
            if self.path is not None and self._stream is not None:
                self._stream.close()
            self._stream = None

    def __enter__(self) -> "SlowQueryLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
