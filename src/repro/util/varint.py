"""Variable-byte encoding of unsigned integers and integer sequences.

Section V of the paper ("Sequence Encoding") represents documents as integer
term-identifier sequences and serialises them with variable-byte encoding
[Witten et al., Managing Gigabytes].  The same encoding is used here both for
on-disk corpus storage and for the byte accounting at the map/reduce shuffle
boundary (the paper's ``MAP_OUTPUT_BYTES`` counter).

The scheme stores an integer in base-128 digits, least-significant group
first; the high bit of every byte is a continuation flag (1 = more bytes
follow).  Values must be non-negative.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import SerializationError

_CONTINUATION = 0x80
_PAYLOAD_MASK = 0x7F


def encode_varint(value: int) -> bytes:
    """Encode a single non-negative integer as a variable-byte string."""
    if value < 0:
        raise SerializationError(f"cannot varint-encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & _PAYLOAD_MASK
        value >>= 7
        if value:
            out.append(byte | _CONTINUATION)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(
    data: bytes, offset: int = 0, max_bits: Optional[int] = 64
) -> Tuple[int, int]:
    """Decode one varint from ``data`` starting at ``offset``.

    Returns ``(value, next_offset)``.  ``data`` may be any byte buffer
    (``bytes``, ``bytearray``, ``memoryview``) — indexing, not copying, so
    zero-copy callers can pass mmap slices.  ``max_bits`` bounds the
    accepted magnitude (64 by default, matching the paper's fixed-width
    identifiers); pass ``None`` for arbitrary-precision integers (the
    binary wire protocol, where values mirror JSON's unbounded ints).
    """
    value = 0
    shift = 0
    position = offset
    while True:
        if position >= len(data):
            raise SerializationError("truncated varint")
        byte = data[position]
        position += 1
        value |= (byte & _PAYLOAD_MASK) << shift
        if not byte & _CONTINUATION:
            return value, position
        shift += 7
        if max_bits is not None and shift >= max_bits:
            raise SerializationError(f"varint too long (more than {max_bits} bits)")


def read_stream_varint(handle) -> Tuple[int, bool]:
    """Read one varint from a binary stream (byte-at-a-time).

    Returns ``(value, at_eof)``: ``at_eof`` is true iff the stream ended
    *before* the first byte — the clean way to detect the end of a record
    stream.  A stream ending in the middle of a varint raises, because that
    can only mean a truncated file.
    """
    value = 0
    shift = 0
    first = True
    while True:
        byte = handle.read(1)
        if not byte:
            if first:
                return 0, True
            raise SerializationError("truncated varint in stream")
        first = False
        value |= (byte[0] & _PAYLOAD_MASK) << shift
        if not byte[0] & _CONTINUATION:
            return value, False
        shift += 7
        if shift > 63:
            raise SerializationError("varint too long (more than 64 bits)")


def encoded_length(value: int) -> int:
    """Number of bytes :func:`encode_varint` uses for ``value``."""
    if value < 0:
        raise SerializationError(f"cannot varint-encode negative value {value}")
    if value == 0:
        return 1
    return (value.bit_length() + 6) // 7


def encode_sequence(values: Sequence[int]) -> bytes:
    """Encode a sequence of non-negative integers, length-prefixed."""
    out = bytearray(encode_varint(len(values)))
    for value in values:
        out.extend(encode_varint(value))
    return bytes(out)


def decode_sequence(data: bytes, offset: int = 0) -> Tuple[List[int], int]:
    """Decode a length-prefixed integer sequence; returns ``(values, next_offset)``."""
    count, position = decode_varint(data, offset)
    values: List[int] = []
    for _ in range(count):
        value, position = decode_varint(data, position)
        values.append(value)
    return values, position


def sequence_encoded_length(values: Iterable[int]) -> int:
    """Byte length of :func:`encode_sequence` without materialising the bytes."""
    values = list(values)
    total = encoded_length(len(values))
    for value in values:
        total += encoded_length(value)
    return total
