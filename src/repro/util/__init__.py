"""Small shared utilities (variable-byte coding, stable hashing, timers)."""

from repro.util.hashing import stable_hash
from repro.util.timer import Timer
from repro.util.varint import (
    decode_sequence,
    decode_varint,
    encode_sequence,
    encode_varint,
    encoded_length,
)

__all__ = [
    "Timer",
    "decode_sequence",
    "decode_varint",
    "encode_sequence",
    "encode_varint",
    "encoded_length",
    "stable_hash",
]
