"""Compression codecs shared by shard files and n-gram store blocks.

One registry serves two consumers: the block-compressed tables of
:mod:`repro.ngramstore` compress each key/value block as a unit
(:meth:`Codec.compress` / :meth:`Codec.decompress`), while the dataset and
shuffle layers wrap whole shard/spill files in a compressed stream
(:meth:`Codec.open_write` / :meth:`Codec.open_read`) so the varint record
framing of :mod:`repro.mapreduce.serialization` keeps working unchanged on
top of the compressed byte stream.

``none`` and ``gzip`` (zlib-based) are always available; ``zstd`` is
registered only when the optional :mod:`zstandard` package is importable,
and selecting it without the package raises a
:class:`~repro.exceptions.ConfigurationError` instead of an ImportError
deep inside a job.
"""

from __future__ import annotations

import gzip
import zlib
from typing import BinaryIO, Tuple

from repro.exceptions import ConfigurationError

try:  # optional dependency; never required at import time
    import zstandard as _zstandard
except ImportError:  # pragma: no cover - exercised where zstandard is absent
    _zstandard = None

#: Every codec name the configuration layer accepts (availability of the
#: optional ones is checked when the codec is actually resolved).
CODEC_NAMES: Tuple[str, ...] = ("none", "gzip", "zstd")


class Codec:
    """Compression strategy for record blocks and shard files."""

    name: str = "abstract"

    # ------------------------------------------------------------- blocks
    def compress(self, data: bytes) -> bytes:
        """Compress one block of bytes."""
        raise NotImplementedError

    def decompress(self, data: bytes) -> bytes:
        """Invert :meth:`compress`."""
        raise NotImplementedError

    # ------------------------------------------------------------ streams
    def open_write(self, path: str) -> BinaryIO:
        """Open ``path`` for writing a compressed byte stream."""
        raise NotImplementedError

    def open_read(self, path: str) -> BinaryIO:
        """Open ``path`` for streaming decompressed bytes."""
        raise NotImplementedError


class NullCodec(Codec):
    """Identity codec: plain files, bytes stored as-is."""

    name = "none"

    def compress(self, data: bytes) -> bytes:
        return data

    def decompress(self, data: bytes) -> bytes:
        return data

    def open_write(self, path: str) -> BinaryIO:
        return open(path, "wb")

    def open_read(self, path: str) -> BinaryIO:
        return open(path, "rb")


class GzipCodec(Codec):
    """zlib/gzip codec (always available; the portable default)."""

    name = "gzip"

    def __init__(self, level: int = 6) -> None:
        self.level = level

    def compress(self, data: bytes) -> bytes:
        return zlib.compress(data, self.level)

    def decompress(self, data: bytes) -> bytes:
        return zlib.decompress(data)

    def open_write(self, path: str) -> BinaryIO:
        return gzip.open(path, "wb", compresslevel=self.level)

    def open_read(self, path: str) -> BinaryIO:
        return gzip.open(path, "rb")


class ZstdCodec(Codec):
    """Zstandard codec; registered only when ``zstandard`` is installed."""

    name = "zstd"

    def __init__(self, level: int = 3) -> None:
        if _zstandard is None:  # pragma: no cover - guarded by get_codec
            raise ConfigurationError("zstd codec requires the 'zstandard' package")
        self.level = level

    def compress(self, data: bytes) -> bytes:
        return _zstandard.ZstdCompressor(level=self.level).compress(data)

    def decompress(self, data: bytes) -> bytes:
        return _zstandard.ZstdDecompressor().decompress(data)

    def open_write(self, path: str) -> BinaryIO:
        compressor = _zstandard.ZstdCompressor(level=self.level)
        return compressor.stream_writer(open(path, "wb"), closefd=True)

    def open_read(self, path: str) -> BinaryIO:
        decompressor = _zstandard.ZstdDecompressor()
        return decompressor.stream_reader(open(path, "rb"), closefd=True)


def available_codecs() -> Tuple[str, ...]:
    """Names of the codecs usable in this environment."""
    if _zstandard is None:
        return tuple(name for name in CODEC_NAMES if name != "zstd")
    return CODEC_NAMES


def get_codec(name: str) -> Codec:
    """Resolve a codec by name, failing loudly for unknown/unavailable ones."""
    if name == "none":
        return NullCodec()
    if name == "gzip":
        return GzipCodec()
    if name == "zstd":
        if _zstandard is None:
            raise ConfigurationError(
                "codec 'zstd' requires the optional 'zstandard' package "
                f"(available here: {', '.join(available_codecs())})"
            )
        return ZstdCodec()
    raise ConfigurationError(
        f"unknown codec {name!r}; choose one of {', '.join(CODEC_NAMES)}"
    )
