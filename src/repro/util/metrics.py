"""Process-wide metrics registry: counters, gauges and histograms.

Before this module, every subsystem exposed telemetry through its own
ad-hoc surface — :class:`~repro.ngramstore.server.ServerMetrics` kept raw
latency sample lists, the block cache its own ``CacheStats``, the store
reader an ``io_stats()`` dict, the HTTP client a bare
``connections_opened`` integer — and none of them could be scraped,
merged or compared.  :class:`MetricsRegistry` is the one instrument
model they all adapt onto:

* :class:`Counter` — a monotonically increasing total (requests served,
  blocks decoded, replicas quarantined);
* :class:`Gauge` — a point-in-time value, settable or backed by a
  callback read at scrape time (resident cache blocks, active
  connections);
* :class:`Histogram` — an observation distribution over **fixed
  exponential buckets**, so latency percentiles are *mergeable*: two
  histograms with the same bounds add bucket-wise, which is what makes
  cross-shard / cross-replica percentiles exact in a way capped raw
  sample lists never were.

Every metric supports labels (``counter.inc(op="get")``); a ``(name,
labels)`` pair identifies one *series*.  Metric constructors are
get-or-create: asking a registry for an existing name returns the same
metric object (type and label names must agree), so independent
components can share one process-wide registry (see
:func:`default_registry`) without coordinating construction order.

All mutation and snapshotting is thread-safe: each metric guards its
series map with one lock, increments are atomic, and
:meth:`MetricsRegistry.snapshot` copies under the locks so a scrape
during a write burst sees internally consistent series (a histogram's
bucket counts always sum to its count).

:meth:`MetricsRegistry.render_prometheus` renders the whole registry in
the Prometheus text exposition format (version 0.0.4) — what the
``GET /metrics`` endpoint of the HTTP server and the ``metrics`` op of
the socket protocol serve.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "merge_histogram_snapshots",
    "quantile_from_buckets",
    "snapshot_quantile",
]

#: Fixed exponential latency buckets (seconds): 10 µs doubling up to ~10 s.
#: Every histogram in the repo defaults to these bounds so any two latency
#: histograms — across operations, servers, shards or replicas — merge
#: bucket-wise into an exact combined distribution.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = tuple(10e-6 * 2 ** i for i in range(21))


def _label_key(label_names: Tuple[str, ...], labels: Dict[str, Any]) -> Tuple[str, ...]:
    if set(labels) != set(label_names):
        raise ValueError(
            f"metric labels must be exactly {sorted(label_names)}, "
            f"got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in label_names)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _render_labels(
    label_names: Tuple[str, ...], key: Tuple[str, ...], extra: str = ""
) -> str:
    parts = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(label_names, key)
    ]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


class _Metric:
    """Shared bookkeeping of a named, labeled metric family."""

    kind = "untyped"

    def __init__(self, name: str, help: str, label_names: Sequence[str]) -> None:  # noqa: A002
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._series: Dict[Tuple[str, ...], Any] = {}
        self._lock = threading.Lock()

    def _compatible(self, kind: str, label_names: Sequence[str]) -> None:
        if self.kind != kind or self.label_names != tuple(label_names):
            raise ValueError(
                f"metric {self.name!r} is already registered as {self.kind} "
                f"with labels {list(self.label_names)}; cannot re-register as "
                f"{kind} with labels {list(label_names)}"
            )


class Counter(_Metric):
    """A monotonically increasing total, optionally labeled."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got increment {amount}")
        key = _label_key(self.label_names, labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        key = _label_key(self.label_names, labels)
        with self._lock:
            return self._series.get(key, 0.0)

    def total(self) -> float:
        """Sum over every labeled series."""
        with self._lock:
            return sum(self._series.values())

    def snapshot(self) -> List[Dict[str, Any]]:
        with self._lock:
            items = list(self._series.items())
        return [
            {"labels": dict(zip(self.label_names, key)), "value": value}
            for key, value in items
        ]

    def render(self, lines: List[str]) -> None:
        with self._lock:
            items = sorted(self._series.items())
        for key, value in items:
            lines.append(
                f"{self.name}{_render_labels(self.label_names, key)} "
                f"{_format_value(value)}"
            )


class Gauge(_Metric):
    """A point-in-time value: set directly, or backed by a callback.

    Callback gauges (:meth:`set_callback`) are how existing stat surfaces
    retrofit onto the registry without double bookkeeping: the gauge reads
    the live source (cache counters, ``io_stats()``) at snapshot/render
    time instead of mirroring every mutation.
    """

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        key = _label_key(self.label_names, labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(self.label_names, labels)
        with self._lock:
            current = self._series.get(key, 0.0)
            if callable(current):
                raise ValueError(f"gauge series {self.name}{labels} is callback-backed")
            self._series[key] = current + amount

    def set_callback(self, callback: Callable[[], float], **labels: Any) -> None:
        key = _label_key(self.label_names, labels)
        with self._lock:
            self._series[key] = callback

    def value(self, **labels: Any) -> float:
        key = _label_key(self.label_names, labels)
        with self._lock:
            current = self._series.get(key, 0.0)
        return float(current()) if callable(current) else current

    def _evaluated(self) -> List[Tuple[Tuple[str, ...], float]]:
        with self._lock:
            items = list(self._series.items())
        evaluated = []
        for key, value in items:
            if callable(value):
                try:
                    value = float(value())
                except Exception:  # a dead callback must not kill the scrape
                    continue
            evaluated.append((key, value))
        return evaluated

    def snapshot(self) -> List[Dict[str, Any]]:
        return [
            {"labels": dict(zip(self.label_names, key)), "value": value}
            for key, value in self._evaluated()
        ]

    def render(self, lines: List[str]) -> None:
        for key, value in sorted(self._evaluated()):
            lines.append(
                f"{self.name}{_render_labels(self.label_names, key)} "
                f"{_format_value(value)}"
            )


class _HistogramSeries:
    """One labeled series: bucket counts plus count/sum/min/max."""

    __slots__ = ("buckets", "count", "sum", "min", "max")

    def __init__(self, num_buckets: int) -> None:
        self.buckets = [0] * num_buckets  # one per bound, plus overflow
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf


class Histogram(_Metric):
    """Observation distribution over fixed (default: exponential) buckets.

    Bucket semantics follow Prometheus: an observation lands in the first
    bucket whose upper bound is ``>= value`` (rendered cumulatively with
    ``le`` labels).  :meth:`quantile` derives percentiles by linear
    interpolation inside the owning bucket, clamped to the observed
    min/max — so estimates are never below the true minimum or above the
    true maximum, and unlike a capped sample list they weight *every*
    observation ever made, not just the first N.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,  # noqa: A002
        label_names: Sequence[str],
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help, label_names)
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or any(later <= earlier for later, earlier in zip(bounds[1:], bounds)):
            raise ValueError("histogram buckets must be a non-empty ascending sequence")
        self.bounds = bounds

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(self.label_names, labels)
        index = bisect_left(self.bounds, value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.bounds) + 1)
            series.buckets[index] += 1
            series.count += 1
            series.sum += value
            if value < series.min:
                series.min = value
            if value > series.max:
                series.max = value

    def _get(self, labels: Dict[str, Any]) -> Optional[_HistogramSeries]:
        key = _label_key(self.label_names, labels)
        with self._lock:
            return self._series.get(key)

    def count(self, **labels: Any) -> int:
        series = self._get(labels)
        return 0 if series is None else series.count

    def sum(self, **labels: Any) -> float:
        series = self._get(labels)
        return 0.0 if series is None else series.sum

    def max(self, **labels: Any) -> float:
        series = self._get(labels)
        return 0.0 if series is None or series.count == 0 else series.max

    def quantile(self, fraction: float, **labels: Any) -> float:
        """Estimated value at ``fraction`` (0..1), clamped to observed min/max."""
        key = _label_key(self.label_names, labels)
        with self._lock:
            series = self._series.get(key)
            if series is None or series.count == 0:
                return 0.0
            counts = list(series.buckets)
            total, lowest, highest = series.count, series.min, series.max
        return _bucket_quantile(self.bounds, counts, total, lowest, highest, fraction)

    def snapshot(self) -> List[Dict[str, Any]]:
        with self._lock:
            items = [
                (key, list(s.buckets), s.count, s.sum, s.min, s.max)
                for key, s in self._series.items()
            ]
        return [
            {
                "labels": dict(zip(self.label_names, key)),
                "bounds": list(self.bounds),
                "buckets": buckets,
                "count": count,
                "sum": total,
                "min": lowest if count else None,
                "max": highest if count else None,
            }
            for key, buckets, count, total, lowest, highest in items
        ]

    def render(self, lines: List[str]) -> None:
        with self._lock:
            items = sorted(
                (key, list(s.buckets), s.count, s.sum)
                for key, s in self._series.items()
            )
        for key, buckets, count, total in items:
            cumulative = 0
            for bound, bucket_count in zip(self.bounds, buckets):
                cumulative += bucket_count
                extra = f'le="{_format_value(bound)}"'
                lines.append(
                    f"{self.name}_bucket"
                    f"{_render_labels(self.label_names, key, extra)} {cumulative}"
                )
            cumulative += buckets[-1]
            inf_label = 'le="+Inf"'
            lines.append(
                f"{self.name}_bucket"
                f"{_render_labels(self.label_names, key, inf_label)} {cumulative}"
            )
            lines.append(
                f"{self.name}_sum{_render_labels(self.label_names, key)} "
                f"{_format_value(total)}"
            )
            lines.append(
                f"{self.name}_count{_render_labels(self.label_names, key)} {count}"
            )


def _bucket_quantile(
    bounds: Tuple[float, ...],
    counts: List[int],
    total: int,
    lowest: float,
    highest: float,
    fraction: float,
) -> float:
    """Interpolated quantile of bucketed counts, clamped to [lowest, highest]."""
    fraction = min(1.0, max(0.0, fraction))
    target = fraction * total
    cumulative = 0.0
    estimate = highest
    for index, bucket_count in enumerate(counts):
        if bucket_count == 0:
            continue
        if cumulative + bucket_count >= target:
            if index >= len(bounds):  # overflow bucket: only the max is known
                estimate = highest
            else:
                upper = bounds[index]
                lower = bounds[index - 1] if index > 0 else 0.0
                within = (target - cumulative) / bucket_count
                estimate = lower + (upper - lower) * within
            break
        cumulative += bucket_count
    return min(max(estimate, lowest), highest)


def snapshot_quantile(series: Dict[str, Any], fraction: float) -> float:
    """Quantile of one histogram series snapshot, clamped to its observed min/max."""
    count = series["count"]
    if not count:
        return 0.0
    return _bucket_quantile(
        tuple(series["bounds"]),
        list(series["buckets"]),
        count,
        series["min"],
        series["max"],
        fraction,
    )


def quantile_from_buckets(
    bounds: Sequence[float], counts: Sequence[int], fraction: float
) -> float:
    """Quantile over raw bucket counts (no min/max clamp) — for merged data."""
    total = sum(counts)
    if total == 0:
        return 0.0
    highest = float(bounds[-1])
    for index in range(len(counts) - 1, -1, -1):
        if counts[index]:
            highest = float(bounds[index]) if index < len(bounds) else float("inf")
            break
    return _bucket_quantile(tuple(float(b) for b in bounds), list(counts), total, 0.0, highest, fraction)


def merge_histogram_snapshots(snapshots: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge same-bounds histogram series snapshots into one distribution.

    This is the payoff of fixed buckets: per-shard (or per-replica, or
    per-mix) histograms published independently add bucket-wise into an
    exact combined histogram, so global percentiles never require raw
    samples to cross the wire.
    """
    if not snapshots:
        raise ValueError("nothing to merge")
    bounds = list(snapshots[0]["bounds"])
    merged_buckets = [0] * (len(bounds) + 1)
    count, total = 0, 0.0
    lowest, highest = math.inf, -math.inf
    for snapshot in snapshots:
        if list(snapshot["bounds"]) != bounds:
            raise ValueError("histogram snapshots have different bucket bounds")
        for index, bucket_count in enumerate(snapshot["buckets"]):
            merged_buckets[index] += bucket_count
        count += snapshot["count"]
        total += snapshot["sum"]
        if snapshot.get("min") is not None:
            lowest = min(lowest, snapshot["min"])
        if snapshot.get("max") is not None:
            highest = max(highest, snapshot["max"])
    return {
        "labels": {},
        "bounds": bounds,
        "buckets": merged_buckets,
        "count": count,
        "sum": total,
        "min": None if count == 0 else lowest,
        "max": None if count == 0 else highest,
    }


class MetricsRegistry:
    """A named collection of metrics; see the module docstring.

    Constructors are get-or-create and thread-safe: the first call for a
    name registers the metric, later calls return the same object after
    checking that the type and label names agree.
    """

    def __init__(self) -> None:
        self._metrics: "Dict[str, _Metric]" = {}
        self._lock = threading.Lock()

    def _register(self, name: str, kind: str, factory: Callable[[], _Metric]) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = factory()
            return metric

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()  # noqa: A002
    ) -> Counter:
        metric = self._register(name, "counter", lambda: Counter(name, help, labels))
        metric._compatible("counter", labels)
        return metric  # type: ignore[return-value]

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()  # noqa: A002
    ) -> Gauge:
        metric = self._register(name, "gauge", lambda: Gauge(name, help, labels))
        metric._compatible("gauge", labels)
        return metric  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",  # noqa: A002
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        metric = self._register(
            name, "histogram", lambda: Histogram(name, help, labels, buckets)
        )
        metric._compatible("histogram", labels)
        return metric  # type: ignore[return-value]

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Any]:
        """Every metric's series as plain JSON-ready data, consistently copied."""
        with self._lock:
            metrics = list(self._metrics.items())
        return {
            name: {"type": metric.kind, "help": metric.help, "series": metric.snapshot()}
            for name, metric in sorted(metrics)
        }

    def render_prometheus(self) -> str:
        """The whole registry in the Prometheus text exposition format."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        lines: List[str] = []
        for name, metric in metrics:
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            metric.render(lines)
        return "\n".join(lines) + "\n"


_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry components share when none is passed in."""
    return _DEFAULT_REGISTRY
