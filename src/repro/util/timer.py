"""Wallclock timing helpers used by the experiment harness and serving tier."""

from __future__ import annotations

import time
from types import TracebackType
from typing import Optional, Type

__all__ = ["Stopwatch", "Timer"]


class Timer:
    """Context manager measuring elapsed wallclock seconds.

    Example
    -------
    >>> with Timer() as timer:
    ...     _ = sum(range(1000))
    >>> timer.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        traceback: Optional[TracebackType],
    ) -> None:
        self.stop()

    def start(self) -> None:
        """Start (or restart) the timer."""
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop the timer and return the elapsed seconds."""
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self._elapsed = time.perf_counter() - self._start
        self._start = None
        return self._elapsed

    @property
    def running(self) -> bool:
        """Whether the timer is currently running."""
        return self._start is not None

    @property
    def elapsed(self) -> float:
        """Elapsed seconds of the last completed measurement."""
        if self._start is not None:
            return time.perf_counter() - self._start
        return self._elapsed


class Stopwatch:
    """A running ``perf_counter`` reading, started at construction.

    The serving tier's request paths (socket server, HTTP handler, shard
    router) all need the same two lines — grab a monotonic start, subtract
    it later — and keeping those raw ``time.perf_counter()`` pairs in sync
    across files is exactly how stage timings and metrics drift apart.
    ``Stopwatch`` owns the pattern:

    >>> watch = Stopwatch()
    >>> watch.elapsed() >= 0.0
    True
    >>> lap = watch.lap()  # elapsed since start (or last lap), then restart
    """

    __slots__ = ("_start",)

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def elapsed(self) -> float:
        """Seconds since construction (or the last :meth:`restart`/:meth:`lap`)."""
        return time.perf_counter() - self._start

    def elapsed_ms(self) -> float:
        """Like :meth:`elapsed`, in milliseconds."""
        return self.elapsed() * 1e3

    def restart(self) -> None:
        """Reset the start point to now."""
        self._start = time.perf_counter()

    def lap(self) -> float:
        """Return seconds since the last lap (or start) and restart."""
        now = time.perf_counter()
        elapsed = now - self._start
        self._start = now
        return elapsed
