"""Wallclock timing helper used by the experiment harness."""

from __future__ import annotations

import time
from types import TracebackType
from typing import Optional, Type


class Timer:
    """Context manager measuring elapsed wallclock seconds.

    Example
    -------
    >>> with Timer() as timer:
    ...     _ = sum(range(1000))
    >>> timer.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        traceback: Optional[TracebackType],
    ) -> None:
        self.stop()

    def start(self) -> None:
        """Start (or restart) the timer."""
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop the timer and return the elapsed seconds."""
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self._elapsed = time.perf_counter() - self._start
        self._start = None
        return self._elapsed

    @property
    def running(self) -> bool:
        """Whether the timer is currently running."""
        return self._start is not None

    @property
    def elapsed(self) -> float:
        """Elapsed seconds of the last completed measurement."""
        if self._start is not None:
            return time.perf_counter() - self._start
        return self._elapsed
