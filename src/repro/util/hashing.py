"""Deterministic hashing helpers.

Python's built-in ``hash`` for ``str`` is randomised per process which would
make reducer partition assignment (and therefore experiment measurements)
non-reproducible across runs.  The partitioners in :mod:`repro.mapreduce`
therefore use :func:`stable_hash`: a splitmix64-style mix for integers, a
CRC32-based hash for text, and an order-sensitive combination for tuples.
The functions are chosen for speed — partitioning touches every map output
record — while remaining fully deterministic across processes and runs.
"""

from __future__ import annotations

import zlib
from typing import Tuple, Union

_MASK = 0xFFFFFFFFFFFFFFFF
_GOLDEN = 0x9E3779B97F4A7C15

Hashable = Union[int, str, bytes, Tuple[object, ...]]


def _mix64(value: int) -> int:
    """splitmix64 finaliser: a fast, well-distributed 64-bit mix."""
    value = (value + _GOLDEN) & _MASK
    value ^= value >> 30
    value = (value * 0xBF58476D1CE4E5B9) & _MASK
    value ^= value >> 27
    value = (value * 0x94D049BB133111EB) & _MASK
    value ^= value >> 31
    return value


def stable_hash(key: Hashable) -> int:
    """Return a deterministic 64-bit hash of ``key``.

    Supports integers, strings, bytes and (nested) tuples of those, which
    covers every key type the MapReduce jobs in this package emit.
    """
    if isinstance(key, bool):  # bool is an int subclass; normalise explicitly
        return _mix64(1 if key else 0)
    if isinstance(key, int):
        return _mix64(key & _MASK)
    if isinstance(key, bytes):
        return _mix64(zlib.crc32(key) & _MASK)
    if isinstance(key, str):
        return _mix64(zlib.crc32(key.encode("utf-8")) & _MASK)
    if isinstance(key, tuple):
        value = 0x2545F4914F6CDD1D
        for element in key:
            value = _mix64(value ^ stable_hash(element))
        return value
    raise TypeError(f"unsupported key type for stable_hash: {type(key)!r}")
