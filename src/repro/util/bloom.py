"""Per-block Bloom filters for the n-gram store's point-miss fast path.

SSTable practice (LevelDB and its descendants) pairs every data block with
a small Bloom filter over the block's keys: a point lookup consults the
filter *before* touching the block, so a guaranteed miss returns without
any block I/O or decoding.  This module is that filter, built on the
deterministic :func:`repro.util.hashing.stable_hash` (Python's ``hash`` is
salted per process, which would make persisted filters useless across
runs).

The classic double-hashing scheme [Kirsch & Mitzenmacher 2006] derives all
``k`` probe positions from one 64-bit hash split into two halves —
``g_i = h1 + i * h2`` — which is as good as ``k`` independent hashes for
Bloom-filter purposes and costs a single key hash per query.

Filters serialise as a plain ``(num_bits, num_hashes, bits)`` tuple (see
:meth:`BloomFilter.to_spec`), so the on-disk block index stays free of
class references and old readers that ignore the field lose nothing.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Tuple

from repro.exceptions import StoreError
from repro.util.hashing import stable_hash

#: Bits per key unless the writer is told otherwise.  10 bits/key with the
#: matched hash count gives a ~1% false-positive rate — the LevelDB default.
DEFAULT_BITS_PER_KEY = 10

#: Serialised form persisted in a table's block index.
BloomSpec = Tuple[int, int, bytes]


def optimal_num_hashes(bits_per_key: int) -> int:
    """The hash count minimising the false-positive rate for a bit budget.

    The optimum is ``ln 2 * bits/key`` (~0.69 per bit); clamped to [1, 16]
    so degenerate budgets stay sane.
    """
    return max(1, min(16, round(bits_per_key * 0.69)))


class BloomFilter:
    """A fixed-size Bloom filter over :func:`stable_hash`-able keys.

    No false negatives ever; false positives at a rate set by the
    bits-per-key budget.  Instances are immutable after :meth:`build` from
    the reader's point of view — the store only ever queries persisted
    filters.
    """

    __slots__ = ("num_bits", "num_hashes", "_bits")

    def __init__(self, num_bits: int, num_hashes: int, bits: bytes) -> None:
        if num_bits < 1:
            raise StoreError(f"bloom filter num_bits must be >= 1, got {num_bits}")
        if num_hashes < 1:
            raise StoreError(f"bloom filter num_hashes must be >= 1, got {num_hashes}")
        if len(bits) != (num_bits + 7) // 8:
            raise StoreError(
                f"bloom filter bit array is {len(bits)} bytes, "
                f"expected {(num_bits + 7) // 8} for {num_bits} bits"
            )
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._bits = bytearray(bits)

    # ------------------------------------------------------------- building
    @classmethod
    def build(
        cls, keys: Iterable[Any], bits_per_key: int = DEFAULT_BITS_PER_KEY
    ) -> "BloomFilter":
        """A filter sized for ``keys`` at ``bits_per_key`` bits each."""
        if bits_per_key < 1:
            raise StoreError(f"bits_per_key must be >= 1, got {bits_per_key}")
        keys = list(keys)
        num_bits = max(8, len(keys) * bits_per_key)
        bloom = cls(
            num_bits,
            optimal_num_hashes(bits_per_key),
            bytes((num_bits + 7) // 8),
        )
        for key in keys:
            bloom.add(key)
        return bloom

    def _probes(self, key: Any) -> Iterable[int]:
        digest = stable_hash(key)
        # Double hashing: the low half walks, the high half (forced odd so
        # it never degenerates to a single probe) strides.
        h1 = digest & 0xFFFFFFFF
        h2 = (digest >> 32) | 1
        for round_ in range(self.num_hashes):
            yield (h1 + round_ * h2) % self.num_bits

    def add(self, key: Any) -> None:
        for position in self._probes(key):
            self._bits[position >> 3] |= 1 << (position & 7)

    # ------------------------------------------------------------- queries
    def might_contain(self, key: Any) -> bool:
        """False means *definitely absent*; True means "go look"."""
        for position in self._probes(key):
            if not self._bits[position >> 3] & (1 << (position & 7)):
                return False
        return True

    def __contains__(self, key: object) -> bool:
        return self.might_contain(key)

    # ------------------------------------------------------- serialisation
    def to_spec(self) -> BloomSpec:
        """The plain-tuple form persisted in a table's block index."""
        return (self.num_bits, self.num_hashes, bytes(self._bits))

    @classmethod
    def from_spec(cls, spec: Optional[BloomSpec]) -> Optional["BloomFilter"]:
        """Invert :meth:`to_spec`; ``None`` passes through (legacy indexes)."""
        if spec is None:
            return None
        try:
            num_bits, num_hashes, bits = spec
            return cls(int(num_bits), int(num_hashes), bytes(bits))
        except (TypeError, ValueError) as exc:
            raise StoreError(f"malformed bloom filter spec {spec!r}: {exc}") from exc

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"BloomFilter(num_bits={self.num_bits}, num_hashes={self.num_hashes})"
