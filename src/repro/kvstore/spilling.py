"""A store that keeps entries in memory until a budget is exceeded.

Section V of the paper: "Our implementation keeps this data in main memory as
long as possible.  Otherwise, it migrates the data into a disk-resident
key-value store."  :class:`SpillingKVStore` implements exactly this policy
with an explicit entry budget: once the number of in-memory entries exceeds
the budget, the whole in-memory content is migrated to a
:class:`~repro.kvstore.disk.DiskKVStore` (wrapped in an LRU cache) and all
subsequent traffic goes through the disk store.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Tuple

from repro.exceptions import KVStoreError
from repro.kvstore.cached import CachedKVStore
from repro.kvstore.disk import DiskKVStore
from repro.kvstore.memory import InMemoryKVStore, KVStore


class SpillingKVStore(KVStore):
    """In-memory store that spills everything to disk past ``memory_budget`` entries."""

    def __init__(
        self,
        memory_budget: int = 100_000,
        cache_capacity: int = 10_000,
        spill_path: Optional[str] = None,
    ) -> None:
        if memory_budget < 1:
            raise KVStoreError("memory_budget must be >= 1")
        self.memory_budget = memory_budget
        self.cache_capacity = cache_capacity
        self.spill_path = spill_path
        self._memory: Optional[InMemoryKVStore] = InMemoryKVStore()
        self._disk: Optional[CachedKVStore] = None

    # ----------------------------------------------------------- internals
    @property
    def spilled(self) -> bool:
        """Whether the store has migrated to its disk-resident backend."""
        return self._disk is not None

    def _active(self) -> KVStore:
        if self._disk is not None:
            return self._disk
        assert self._memory is not None
        return self._memory

    def _maybe_spill(self) -> None:
        if self._disk is not None or self._memory is None:
            return
        if len(self._memory) <= self.memory_budget:
            return
        disk = DiskKVStore(self.spill_path)
        for key, value in self._memory.items():
            disk.put(key, value)
        self._disk = CachedKVStore(disk, capacity=self.cache_capacity)
        self._memory.close()
        self._memory = None

    # ------------------------------------------------------------ interface
    def put(self, key: Any, value: Any) -> None:
        self._active().put(key, value)
        self._maybe_spill()

    def get(self, key: Any, default: Any = None) -> Any:
        return self._active().get(key, default)

    def contains(self, key: Any) -> bool:
        return self._active().contains(key)

    def delete(self, key: Any) -> None:
        self._active().delete(key)

    def items(self) -> Iterator[Tuple[Any, Any]]:
        return self._active().items()

    def __len__(self) -> int:
        return len(self._active())

    def close(self) -> None:
        if self._memory is not None:
            self._memory.close()
        if self._disk is not None:
            self._disk.close()
