"""Key-value stores used as the Berkeley DB substitute (Section V).

APRIORI-SCAN keeps the dictionary of frequent (k-1)-grams and APRIORI-INDEX
buffers posting lists during its join step; the paper migrates this data into
a disk-resident key-value store once it outgrows main memory and uses the
remaining memory as a cache.  The classes here reproduce that structure:

* :class:`InMemoryKVStore` — plain dictionary-backed store;
* :class:`DiskKVStore` — append-only file store with an in-memory offset
  index (pickle-serialised values);
* :class:`CachedKVStore` — LRU read/write-through cache over another store,
  with hit/miss statistics;
* :class:`SpillingKVStore` — in-memory store that spills to disk once a
  configurable entry budget is exceeded (the behaviour the paper describes).
"""

from repro.kvstore.memory import InMemoryKVStore, KVStore
from repro.kvstore.disk import DiskKVStore
from repro.kvstore.cached import CachedKVStore, CacheStats
from repro.kvstore.spilling import SpillingKVStore

__all__ = [
    "CacheStats",
    "CachedKVStore",
    "DiskKVStore",
    "InMemoryKVStore",
    "KVStore",
    "SpillingKVStore",
]
