"""In-memory key-value store and the abstract store interface."""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional, Tuple

from repro.exceptions import KVStoreError


class KVStore:
    """Abstract key-value store interface.

    Keys must be hashable; values are arbitrary Python objects.  Stores are
    also usable as context managers so disk-backed implementations release
    their file handles deterministically.
    """

    def put(self, key: Any, value: Any) -> None:
        """Store ``value`` under ``key`` (overwriting any previous value)."""
        raise NotImplementedError

    def get(self, key: Any, default: Any = None) -> Any:
        """Return the value stored under ``key``, or ``default`` if absent."""
        raise NotImplementedError

    def contains(self, key: Any) -> bool:
        """Whether ``key`` is present in the store."""
        raise NotImplementedError

    def delete(self, key: Any) -> None:
        """Remove ``key`` if present; absent keys are ignored."""
        raise NotImplementedError

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Iterate over all ``(key, value)`` pairs."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def close(self) -> None:
        """Release any underlying resources."""

    def __contains__(self, key: object) -> bool:
        return self.contains(key)

    def __enter__(self) -> "KVStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __getitem__(self, key: Any) -> Any:
        sentinel = object()
        value = self.get(key, sentinel)
        if value is sentinel:
            raise KeyError(key)
        return value

    def __setitem__(self, key: Any, value: Any) -> None:
        self.put(key, value)


class InMemoryKVStore(KVStore):
    """Dictionary-backed store; the fastest option when everything fits."""

    def __init__(self, initial: Optional[Dict[Any, Any]] = None) -> None:
        self._data: Dict[Any, Any] = dict(initial) if initial else {}
        self._closed = False

    def _check_open(self) -> None:
        if self._closed:
            raise KVStoreError("store is closed")

    def put(self, key: Any, value: Any) -> None:
        self._check_open()
        self._data[key] = value

    def get(self, key: Any, default: Any = None) -> Any:
        self._check_open()
        return self._data.get(key, default)

    def contains(self, key: Any) -> bool:
        self._check_open()
        return key in self._data

    def delete(self, key: Any) -> None:
        self._check_open()
        self._data.pop(key, None)

    def items(self) -> Iterator[Tuple[Any, Any]]:
        self._check_open()
        return iter(list(self._data.items()))

    def __len__(self) -> int:
        self._check_open()
        return len(self._data)

    def close(self) -> None:
        self._closed = True

    def clear(self) -> None:
        """Remove all entries."""
        self._check_open()
        self._data.clear()
