"""LRU-cached view over another key-value store.

The paper notes that for APRIORI-SCAN "most main memory is then used for
caching, which ... lookups of frequent (k-1)-grams typically hit the cache".
:class:`CachedKVStore` reproduces this: reads go through an LRU cache of
bounded size over any backing :class:`~repro.kvstore.memory.KVStore`, and the
hit/miss statistics are exposed so experiments (and tests) can verify the
claimed behaviour.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Iterator, Tuple

from repro.exceptions import KVStoreError
from repro.kvstore.memory import KVStore

_MISSING = object()


@dataclass
class CacheStats:
    """Hit/miss counters of a :class:`CachedKVStore`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups


class CachedKVStore(KVStore):
    """Write-through LRU cache in front of a backing store."""

    def __init__(self, backing: KVStore, capacity: int = 1024) -> None:
        if capacity < 1:
            raise KVStoreError("cache capacity must be >= 1")
        self.backing = backing
        self.capacity = capacity
        self.stats = CacheStats()
        self._cache: "OrderedDict[Any, Any]" = OrderedDict()

    def _cache_put(self, key: Any, value: Any) -> None:
        if key in self._cache:
            self._cache.move_to_end(key)
        self._cache[key] = value
        while len(self._cache) > self.capacity:
            self._cache.popitem(last=False)
            self.stats.evictions += 1

    def put(self, key: Any, value: Any) -> None:
        self.backing.put(key, value)
        self._cache_put(key, value)

    def get(self, key: Any, default: Any = None) -> Any:
        if key in self._cache:
            self.stats.hits += 1
            self._cache.move_to_end(key)
            return self._cache[key]
        self.stats.misses += 1
        value = self.backing.get(key, _MISSING)
        if value is _MISSING:
            return default
        self._cache_put(key, value)
        return value

    def contains(self, key: Any) -> bool:
        if key in self._cache:
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        present = self.backing.contains(key)
        if present:
            self._cache_put(key, self.backing.get(key))
        return present

    def delete(self, key: Any) -> None:
        self._cache.pop(key, None)
        self.backing.delete(key)

    def items(self) -> Iterator[Tuple[Any, Any]]:
        return self.backing.items()

    def __len__(self) -> int:
        return len(self.backing)

    def close(self) -> None:
        self._cache.clear()
        self.backing.close()
