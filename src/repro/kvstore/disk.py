"""Disk-resident key-value store.

An append-only log of pickled ``(key, value)`` entries with an in-memory
``key -> (offset, length)`` index.  Overwrites append a new entry and repoint
the index; :meth:`compact` rewrites the log dropping stale entries.  This is
a deliberately simple stand-in for Berkeley DB Java Edition: it gives the
APRIORI methods a place to keep dictionaries and posting-list buffers that do
not fit in the configured main-memory budget.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.exceptions import KVStoreError
from repro.kvstore.memory import KVStore


class DiskKVStore(KVStore):
    """Append-only, pickle-serialised store backed by a single file."""

    def __init__(self, path: Optional[str] = None) -> None:
        if path is None:
            handle, path = tempfile.mkstemp(prefix="repro-kvstore-", suffix=".log")
            os.close(handle)
            self._owns_file = True
        else:
            self._owns_file = False
        self.path = path
        self._index: Dict[Any, Tuple[int, int]] = {}
        self._file = open(path, "a+b")
        self._closed = False
        self._load_existing()

    # ----------------------------------------------------------- internals
    def _check_open(self) -> None:
        if self._closed:
            raise KVStoreError("store is closed")

    def _load_existing(self) -> None:
        """Rebuild the index from an existing log file (crash recovery)."""
        self._file.seek(0)
        offset = 0
        while True:
            header = self._file.read(8)
            if len(header) < 8:
                break
            length = int.from_bytes(header, "little")
            payload = self._file.read(length)
            if len(payload) < length:
                break  # truncated tail entry; ignore it
            try:
                key, _ = pickle.loads(payload)
            except Exception as error:  # corrupted entry ends recovery
                raise KVStoreError(f"corrupted entry in {self.path}: {error}") from error
            self._index[key] = (offset, length)
            offset += 8 + length
        self._file.seek(0, os.SEEK_END)

    def _append(self, key: Any, value: Any) -> None:
        payload = pickle.dumps((key, value), protocol=pickle.HIGHEST_PROTOCOL)
        self._file.seek(0, os.SEEK_END)
        offset = self._file.tell()
        self._file.write(len(payload).to_bytes(8, "little"))
        self._file.write(payload)
        self._file.flush()
        self._index[key] = (offset, len(payload))

    def _read_at(self, offset: int, length: int) -> Tuple[Any, Any]:
        self._file.seek(offset)
        header = self._file.read(8)
        stored_length = int.from_bytes(header, "little")
        if stored_length != length:
            raise KVStoreError("index/log mismatch; store is corrupted")
        payload = self._file.read(length)
        return pickle.loads(payload)

    # ------------------------------------------------------------ interface
    def put(self, key: Any, value: Any) -> None:
        self._check_open()
        self._append(key, value)

    def get(self, key: Any, default: Any = None) -> Any:
        self._check_open()
        location = self._index.get(key)
        if location is None:
            return default
        _, value = self._read_at(*location)
        return value

    def contains(self, key: Any) -> bool:
        self._check_open()
        return key in self._index

    def delete(self, key: Any) -> None:
        self._check_open()
        self._index.pop(key, None)

    def items(self) -> Iterator[Tuple[Any, Any]]:
        self._check_open()
        for key, location in list(self._index.items()):
            _, value = self._read_at(*location)
            yield key, value

    def __len__(self) -> int:
        self._check_open()
        return len(self._index)

    def compact(self) -> None:
        """Rewrite the log keeping only live entries."""
        self._check_open()
        entries = list(self.items())
        self._file.close()
        self._file = open(self.path, "w+b")
        self._index.clear()
        for key, value in entries:
            self._append(key, value)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._file.close()
        if self._owns_file and os.path.exists(self.path):
            os.unlink(self.path)
