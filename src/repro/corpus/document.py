"""Documents: identifier, token sequences grouped into sentences, metadata.

A document's tokens are grouped into sentences because the paper treats
sentence boundaries as barriers — no n-gram spans two sentences (Section
VII.B).  Documents optionally carry a timestamp (publication year) which the
n-gram time-series extension aggregates over (Section VI.B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Sequence, Tuple

from repro.exceptions import CorpusError

TokenSequence = Tuple[str, ...]


@dataclass(frozen=True)
class Document:
    """A single document.

    Attributes
    ----------
    doc_id:
        Unique non-negative integer identifier.
    sentences:
        The document's tokens, one tuple per sentence.
    timestamp:
        Optional publication year (or any integer time bucket) used by the
        time-series extension.
    metadata:
        Free-form string metadata (e.g. source, title).
    """

    doc_id: int
    sentences: Tuple[TokenSequence, ...]
    timestamp: Optional[int] = None
    metadata: Dict[str, str] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.doc_id < 0:
            raise CorpusError(f"doc_id must be non-negative, got {self.doc_id}")

    @classmethod
    def from_tokens(
        cls,
        doc_id: int,
        tokens: Sequence[str],
        timestamp: Optional[int] = None,
        **metadata: str,
    ) -> "Document":
        """Build a single-sentence document from a flat token sequence."""
        return cls(
            doc_id=doc_id,
            sentences=(tuple(tokens),),
            timestamp=timestamp,
            metadata=dict(metadata),
        )

    @classmethod
    def from_sentences(
        cls,
        doc_id: int,
        sentences: Sequence[Sequence[str]],
        timestamp: Optional[int] = None,
        **metadata: str,
    ) -> "Document":
        """Build a document from pre-split sentences."""
        return cls(
            doc_id=doc_id,
            sentences=tuple(tuple(sentence) for sentence in sentences),
            timestamp=timestamp,
            metadata=dict(metadata),
        )

    @property
    def tokens(self) -> TokenSequence:
        """All tokens of the document, sentence boundaries removed."""
        flat: list[str] = []
        for sentence in self.sentences:
            flat.extend(sentence)
        return tuple(flat)

    @property
    def num_tokens(self) -> int:
        """Total number of token occurrences in the document."""
        return sum(len(sentence) for sentence in self.sentences)

    @property
    def num_sentences(self) -> int:
        """Number of sentences in the document."""
        return len(self.sentences)

    def iter_sentences(self) -> Iterator[TokenSequence]:
        """Iterate over the document's sentences."""
        return iter(self.sentences)
