"""Document collection substrate.

This package provides everything the paper assumes as input infrastructure:
documents, tokenisation, sentence-boundary detection (the paper uses OpenNLP;
sentence boundaries act as n-gram barriers), boilerplate removal (the paper
uses boilerpipe for ClueWeb), vocabulary construction with term identifiers
assigned in descending collection-frequency order, integer sequence encoding
with variable-byte serialisation, corpus statistics (Table I) and synthetic
corpus generators standing in for the New York Times Annotated Corpus and
ClueWeb09-B.
"""

from repro.corpus.collection import DocumentCollection, EncodedCollection, EncodedDocument
from repro.corpus.document import Document
from repro.corpus.stats import CollectionStatistics, compute_statistics
from repro.corpus.synthetic import NewswireCorpusGenerator, WebCorpusGenerator
from repro.corpus.vocabulary import Vocabulary

__all__ = [
    "CollectionStatistics",
    "Document",
    "DocumentCollection",
    "EncodedCollection",
    "EncodedDocument",
    "NewswireCorpusGenerator",
    "Vocabulary",
    "WebCorpusGenerator",
    "compute_statistics",
]
