"""Tokenisation of raw text into lower-cased word tokens.

The paper operates on words ("or other textual tokens"); the exact tokeniser
is not part of the contribution, so a simple, deterministic regular-
expression tokeniser suffices: words are maximal runs of letters, digits or
apostrophes, lower-cased.  Punctuation is dropped.
"""

from __future__ import annotations

import re
from typing import List, Tuple

_TOKEN_PATTERN = re.compile(r"[A-Za-z0-9]+(?:'[A-Za-z]+)?")


def tokenize(text: str, lowercase: bool = True) -> Tuple[str, ...]:
    """Split ``text`` into tokens.

    Parameters
    ----------
    text:
        Raw text.
    lowercase:
        Lower-case tokens (the default, matching common n-gram corpora).
    """
    tokens: List[str] = _TOKEN_PATTERN.findall(text)
    if lowercase:
        tokens = [token.lower() for token in tokens]
    return tuple(tokens)


def tokenize_sentences(sentences: List[str], lowercase: bool = True) -> List[Tuple[str, ...]]:
    """Tokenise a list of sentence strings, dropping empty results."""
    tokenised = [tokenize(sentence, lowercase=lowercase) for sentence in sentences]
    return [sentence for sentence in tokenised if sentence]
