"""Term dictionaries mapping terms to integer identifiers.

The paper assigns identifiers "in descending order of their collection
frequency to optimize compression" (Section V).  Because n-grams are then
compared as integer sequences, frequent terms also get small identifiers,
which makes the variable-byte encoded records short — the effect the byte
counters in Figures 4/5 depend on.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, List, Tuple

from repro.exceptions import VocabularyError


class Vocabulary:
    """Bidirectional mapping between terms and dense integer identifiers."""

    def __init__(self) -> None:
        self._term_to_id: Dict[str, int] = {}
        self._id_to_term: List[str] = []
        self._frequencies: List[int] = []

    # --------------------------------------------------------- construction
    @classmethod
    def from_term_frequencies(cls, frequencies: Dict[str, int]) -> "Vocabulary":
        """Build a vocabulary from term → collection frequency.

        Identifiers are assigned in descending frequency order; ties are
        broken lexicographically so construction is deterministic.
        """
        vocabulary = cls()
        ordered = sorted(frequencies.items(), key=lambda item: (-item[1], item[0]))
        for term, frequency in ordered:
            vocabulary._add(term, frequency)
        return vocabulary

    @classmethod
    def from_collection(cls, collection: "SupportsRecords") -> "Vocabulary":
        """Build a vocabulary by counting term occurrences in ``collection``."""
        counts: Counter = Counter()
        for _, sequence in collection.records():
            counts.update(sequence)
        return cls.from_term_frequencies(dict(counts))

    def _add(self, term: str, frequency: int) -> int:
        if term in self._term_to_id:
            raise VocabularyError(f"term {term!r} added twice")
        term_id = len(self._id_to_term)
        self._term_to_id[term] = term_id
        self._id_to_term.append(term)
        self._frequencies.append(frequency)
        return term_id

    # --------------------------------------------------------------- access
    def term_id(self, term: str) -> int:
        """Identifier of ``term``; raises :class:`VocabularyError` if unknown."""
        try:
            return self._term_to_id[term]
        except KeyError:
            raise VocabularyError(f"unknown term {term!r}") from None

    def term(self, term_id: int) -> str:
        """Surface form of ``term_id``."""
        if not 0 <= term_id < len(self._id_to_term):
            raise VocabularyError(f"unknown term identifier {term_id}")
        return self._id_to_term[term_id]

    def frequency(self, term: str) -> int:
        """Collection frequency recorded for ``term`` at construction time."""
        return self._frequencies[self.term_id(term)]

    def frequency_of_id(self, term_id: int) -> int:
        """Collection frequency recorded for ``term_id``."""
        if not 0 <= term_id < len(self._frequencies):
            raise VocabularyError(f"unknown term identifier {term_id}")
        return self._frequencies[term_id]

    def contains(self, term: str) -> bool:
        return term in self._term_to_id

    def __contains__(self, term: object) -> bool:
        return term in self._term_to_id

    def __len__(self) -> int:
        return len(self._id_to_term)

    def items(self) -> Iterator[Tuple[str, int]]:
        """Iterate over ``(term, term_id)`` pairs in identifier order."""
        return iter((term, index) for index, term in enumerate(self._id_to_term))

    def terms(self) -> Iterator[str]:
        """Iterate over terms in identifier order (most frequent first)."""
        return iter(self._id_to_term)

    # ------------------------------------------------------------ persistence
    def to_lines(self) -> List[str]:
        """Serialise as lines ``term<TAB>frequency`` in identifier order."""
        return [
            f"{term}\t{frequency}"
            for term, frequency in zip(self._id_to_term, self._frequencies)
        ]

    @classmethod
    def from_lines(cls, lines: Iterable[str]) -> "Vocabulary":
        """Rebuild a vocabulary from :meth:`to_lines` output (order preserved)."""
        vocabulary = cls()
        for line in lines:
            line = line.rstrip("\n")
            if not line:
                continue
            term, _, frequency_text = line.partition("\t")
            try:
                frequency = int(frequency_text) if frequency_text else 0
            except ValueError as error:
                raise VocabularyError(f"malformed vocabulary line {line!r}") from error
            vocabulary._add(term, frequency)
        return vocabulary


class SupportsRecords:
    """Structural protocol: anything with a ``records()`` iterator."""

    def records(self) -> Iterable[Tuple[int, Tuple[str, ...]]]:  # pragma: no cover
        raise NotImplementedError
