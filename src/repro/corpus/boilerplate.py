"""Boilerplate detection for web documents.

The paper runs ClueWeb09-B through boilerpipe's default extractor
(Kohlschütter et al., WSDM 2010) to isolate the core content of web pages
before computing n-grams.  Boilerpipe classifies text blocks using shallow
features — most importantly text density (words per block) and link density.
:func:`extract_main_content` reproduces that block-level heuristic for the
plain-text documents the synthetic web corpus produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class TextBlock:
    """A candidate content block of a web document."""

    text: str
    num_words: int
    link_density: float

    @classmethod
    def from_text(cls, text: str, num_link_words: int = 0) -> "TextBlock":
        words = text.split()
        link_density = (num_link_words / len(words)) if words else 1.0
        return cls(text=text, num_words=len(words), link_density=link_density)


#: Blocks with fewer words than this are considered boilerplate unless their
#: neighbours are content (headline exception handled by ``min_run``).
DEFAULT_MIN_WORDS = 10

#: Blocks whose fraction of link words exceeds this are navigation/boilerplate.
DEFAULT_MAX_LINK_DENSITY = 0.33


def classify_blocks(
    blocks: Sequence[TextBlock],
    min_words: int = DEFAULT_MIN_WORDS,
    max_link_density: float = DEFAULT_MAX_LINK_DENSITY,
) -> List[bool]:
    """Return a content/boilerplate flag per block (True = content).

    The rule mirrors boilerpipe's NumWordsRules classifier: a block is
    content when it has enough words and a low link density, or when it is a
    short block sandwiched between two content blocks (e.g. a one-line
    paragraph inside an article).
    """
    flags = [
        block.num_words >= min_words and block.link_density <= max_link_density
        for block in blocks
    ]
    # Rescue short blocks between two content blocks.
    for index in range(1, len(blocks) - 1):
        if not flags[index] and flags[index - 1] and flags[index + 1]:
            if blocks[index].link_density <= max_link_density:
                flags[index] = True
    return flags


def extract_main_content(
    blocks: Sequence[str],
    link_word_counts: Sequence[int] = (),
    min_words: int = DEFAULT_MIN_WORDS,
    max_link_density: float = DEFAULT_MAX_LINK_DENSITY,
) -> Tuple[str, ...]:
    """Filter a sequence of text blocks down to the main content blocks."""
    text_blocks = []
    for index, text in enumerate(blocks):
        links = link_word_counts[index] if index < len(link_word_counts) else 0
        text_blocks.append(TextBlock.from_text(text, num_link_words=links))
    flags = classify_blocks(text_blocks, min_words=min_words, max_link_density=max_link_density)
    return tuple(text for text, keep in zip(blocks, flags) if keep)
