"""Collection statistics — the quantities reported in Table I of the paper.

Table I lists, per dataset: number of documents, number of term occurrences,
number of distinct terms, number of sentences, and the mean and standard
deviation of the sentence length.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Union

from repro.corpus.collection import DocumentCollection, EncodedCollection

Collection = Union[DocumentCollection, EncodedCollection]


@dataclass(frozen=True)
class CollectionStatistics:
    """Dataset characteristics as reported in Table I."""

    num_documents: int
    num_term_occurrences: int
    num_distinct_terms: int
    num_sentences: int
    sentence_length_mean: float
    sentence_length_stddev: float

    def as_rows(self) -> List[tuple]:
        """Rows in the order Table I lists them."""
        return [
            ("# documents", self.num_documents),
            ("# term occurrences", self.num_term_occurrences),
            ("# distinct terms", self.num_distinct_terms),
            ("# sentences", self.num_sentences),
            ("sentence length (mean)", round(self.sentence_length_mean, 2)),
            ("sentence length (stddev)", round(self.sentence_length_stddev, 2)),
        ]


def compute_statistics(collection: Collection) -> CollectionStatistics:
    """Compute Table I statistics for a (raw or encoded) collection."""
    sentence_lengths: List[int] = []
    distinct_terms = set()
    num_documents = 0
    for document in collection:
        num_documents += 1
        for sentence in document.sentences:
            sentence_lengths.append(len(sentence))
            distinct_terms.update(sentence)

    num_sentences = len(sentence_lengths)
    num_occurrences = sum(sentence_lengths)
    if num_sentences:
        mean = num_occurrences / num_sentences
        variance = sum((length - mean) ** 2 for length in sentence_lengths) / num_sentences
        stddev = math.sqrt(variance)
    else:
        mean = 0.0
        stddev = 0.0

    return CollectionStatistics(
        num_documents=num_documents,
        num_term_occurrences=num_occurrences,
        num_distinct_terms=len(distinct_terms),
        num_sentences=num_sentences,
        sentence_length_mean=mean,
        sentence_length_stddev=stddev,
    )
