"""Phrase banks for the synthetic corpora.

Section VII.C of the paper reports that both corpora contain *very long*
n-grams occurring ten times or more: ingredient lists of recipes and chess
openings in the New York Times corpus; web spam, error messages and stack
traces in ClueWeb09-B.  The generators inject phrases from the banks below so
that the synthetic corpora reproduce exactly this heavy tail, which is what
makes the analytics use case (σ = 100) expensive for the APRIORI methods.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

# --------------------------------------------------------------------------
# Newswire-style long phrases (NYT stand-in)
# --------------------------------------------------------------------------

QUOTATIONS: Tuple[Tuple[str, ...], ...] = (
    tuple("ask not what your country can do for you ask what you can do for your country".split()),
    tuple("the only thing we have to fear is fear itself".split()),
    tuple("i have a dream that one day this nation will rise up and live out the true meaning of its creed".split()),
    tuple("to be or not to be that is the question".split()),
    tuple("four score and seven years ago our fathers brought forth on this continent a new nation".split()),
    tuple("it was the best of times it was the worst of times it was the age of wisdom it was the age of foolishness".split()),
    tuple("in the beginning god created the heaven and the earth".split()),
    tuple("we hold these truths to be self evident that all men are created equal".split()),
)

RECIPE_INGREDIENTS: Tuple[Tuple[str, ...], ...] = (
    tuple("1 tablespoon cooking oil 2 cups flour 1 teaspoon salt 1 cup sugar 2 eggs 1 cup milk".split()),
    tuple("2 tablespoons olive oil 1 onion chopped 2 cloves garlic minced 1 teaspoon salt half teaspoon pepper".split()),
    tuple("1 cup butter softened 2 cups brown sugar 2 eggs 1 teaspoon vanilla extract 3 cups flour".split()),
    tuple("3 cups chicken stock 1 cup white wine 2 tablespoons butter 1 cup arborio rice half cup parmesan".split()),
)

CHESS_OPENINGS: Tuple[Tuple[str, ...], ...] = (
    tuple("1 e4 e5 2 nf3 nc6 3 bb5 a6 4 ba4 nf6 5 o o be7".split()),
    tuple("1 d4 nf6 2 c4 g6 3 nc3 bg7 4 e4 d6 5 nf3 o o".split()),
    tuple("1 e4 c5 2 nf3 d6 3 d4 cxd4 4 nxd4 nf6 5 nc3 a6".split()),
)

# --------------------------------------------------------------------------
# Web-style long phrases (ClueWeb stand-in)
# --------------------------------------------------------------------------

SPAM_PHRASES: Tuple[Tuple[str, ...], ...] = (
    tuple("travel tips san miguel tourism san miguel transport san miguel hotels san miguel restaurants san miguel".split()),
    tuple("cheap flights cheap hotels cheap car rental best deals best prices book now limited offer".split()),
    tuple("buy viagra online no prescription lowest price fast shipping discreet packaging money back guarantee".split()),
    tuple("free download full version no registration no survey direct link updated daily working 100 percent".split()),
)

ERROR_MESSAGES: Tuple[Tuple[str, ...], ...] = (
    tuple("warning mysql connect access denied for user root using password yes in home public html php on line 91 warning".split()),
    tuple("fatal error call to undefined function in var www html index php on line 42".split()),
    tuple("notice undefined index id in home site public html view php on line 17".split()),
)

STACK_TRACES: Tuple[Tuple[str, ...], ...] = (
    tuple("exception in thread main java lang nullpointerexception at com example app main java 25 at java lang reflect method invoke".split()),
    tuple("traceback most recent call last file app py line 10 in module raise valueerror invalid literal".split()),
)

BOILERPLATE_SNIPPETS: Tuple[Tuple[str, ...], ...] = (
    tuple("home about us contact us privacy policy terms of service sitemap".split()),
    tuple("copyright all rights reserved powered by wordpress log in entries rss comments rss".split()),
    tuple("click here to read more share this article on facebook twitter email print".split()),
)

NEWSWIRE_PHRASES: Tuple[Tuple[str, ...], ...] = QUOTATIONS + RECIPE_INGREDIENTS + CHESS_OPENINGS
WEB_PHRASES: Tuple[Tuple[str, ...], ...] = (
    SPAM_PHRASES + ERROR_MESSAGES + STACK_TRACES + BOILERPLATE_SNIPPETS
)


def pick_phrase(
    rng: random.Random, bank: Sequence[Tuple[str, ...]] = NEWSWIRE_PHRASES
) -> Tuple[str, ...]:
    """Pick one phrase from ``bank`` uniformly at random."""
    return bank[rng.randrange(len(bank))]


def all_phrases() -> List[Tuple[str, ...]]:
    """Every phrase in every bank (useful for assertions in tests)."""
    return list(NEWSWIRE_PHRASES + WEB_PHRASES)
