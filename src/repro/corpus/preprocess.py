"""End-to-end preprocessing of raw text into documents.

Reproduces the paper's preparation pipeline (Section VII.B):

1. optional boilerplate removal (for web documents);
2. sentence-boundary detection (sentence boundaries are n-gram barriers);
3. tokenisation;
4. (separately, via :meth:`DocumentCollection.encode`) conversion to integer
   term-identifier sequences with identifiers assigned in descending
   collection-frequency order.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.corpus.boilerplate import extract_main_content
from repro.corpus.collection import DocumentCollection
from repro.corpus.document import Document
from repro.corpus.sentences import split_sentences
from repro.corpus.tokenize import tokenize


def document_from_text(
    doc_id: int,
    text: str,
    timestamp: Optional[int] = None,
    remove_boilerplate: bool = False,
    lowercase: bool = True,
) -> Document:
    """Convert one raw text into a :class:`Document`.

    When ``remove_boilerplate`` is set the text is first split into blocks at
    blank lines and filtered with the boilerplate heuristic, mirroring how
    the paper treats ClueWeb documents.
    """
    if remove_boilerplate:
        blocks = [block.strip() for block in text.split("\n\n") if block.strip()]
        kept = extract_main_content(blocks)
        text = "\n\n".join(kept)

    sentences: List[Tuple[str, ...]] = []
    for sentence_text in split_sentences(text):
        tokens = tokenize(sentence_text, lowercase=lowercase)
        if tokens:
            sentences.append(tokens)
    return Document(doc_id=doc_id, sentences=tuple(sentences), timestamp=timestamp)


def collection_from_texts(
    texts: Sequence[str],
    timestamps: Optional[Sequence[Optional[int]]] = None,
    remove_boilerplate: bool = False,
    lowercase: bool = True,
) -> DocumentCollection:
    """Convert raw texts into a :class:`DocumentCollection`."""
    collection = DocumentCollection()
    for doc_id, text in enumerate(texts):
        timestamp = timestamps[doc_id] if timestamps is not None else None
        collection.add(
            document_from_text(
                doc_id,
                text,
                timestamp=timestamp,
                remove_boilerplate=remove_boilerplate,
                lowercase=lowercase,
            )
        )
    return collection
