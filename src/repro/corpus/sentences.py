"""Sentence boundary detection.

The paper uses Apache OpenNLP to detect sentence boundaries, which then act
as barriers for n-grams (no n-gram spans two sentences).  This module
provides a rule-based splitter with the behaviours that matter for that
purpose: it splits on sentence-final punctuation (``.``, ``!``, ``?``)
followed by whitespace and an upper-case/numeric start, while not splitting
after common abbreviations, initials or decimal numbers.
"""

from __future__ import annotations

import re
from typing import List

#: Abbreviations after which a period does not end a sentence.
_ABBREVIATIONS = {
    "mr", "mrs", "ms", "dr", "prof", "sr", "jr", "st", "vs", "etc", "inc",
    "ltd", "co", "corp", "gov", "sen", "rep", "gen", "col", "lt", "capt",
    "mt", "no", "dept", "univ", "assn", "bros", "fig", "e.g", "i.e", "u.s",
    "u.n", "jan", "feb", "mar", "apr", "jun", "jul", "aug", "sep", "sept",
    "oct", "nov", "dec",
}

_BOUNDARY = re.compile(r"([.!?]+)(\s+)")


def _is_abbreviation(text_before: str) -> bool:
    last_word = text_before.rstrip(".").rsplit(" ", 1)[-1].lower().strip()
    if not last_word:
        return False
    if last_word in _ABBREVIATIONS:
        return True
    # Single-letter initials such as "J." in "J. Smith".
    return len(last_word) == 1 and last_word.isalpha()


def split_sentences(text: str) -> List[str]:
    """Split ``text`` into sentence strings.

    Empty sentences are dropped; whitespace is normalised.  The splitter is
    intentionally conservative: when in doubt it does not split, which only
    merges sentences and never creates spurious barriers.
    """
    if not text or not text.strip():
        return []
    sentences: List[str] = []
    start = 0
    for match in _BOUNDARY.finditer(text):
        end = match.end(1)
        candidate = text[start:end].strip()
        following = text[match.end():]
        before = text[start:match.start(1)]
        if _is_abbreviation(before):
            continue
        if following and not (following[0].isupper() or following[0].isdigit() or following[0] in "\"'("):
            continue
        if candidate:
            sentences.append(candidate)
        start = match.end()
    tail = text[start:].strip()
    if tail:
        sentences.append(tail)
    return sentences
