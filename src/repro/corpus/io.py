"""On-disk format for encoded collections, and a streaming reader over it.

The paper's preprocessing stores "the term dictionary ... as a single text
file; documents are spread as key-value pairs of 64-bit document identifier
and content integer array over a total of 256 binary files".  This module
reproduces that layout at configurable shard count:

``<directory>/dictionary.txt``
    One ``term<TAB>frequency`` line per term, in term-identifier order.

``<directory>/part-NNNNN.bin``
    Binary shards.  Each record is: varint document identifier, varint
    timestamp-plus-one (0 means "no timestamp"), varint sentence count, then
    each sentence as a length-prefixed varint sequence of term identifiers.

:func:`read_encoded_collection` returns a
:class:`ShardedEncodedCollection` by default: the dictionary and a small
per-document index (identifier, timestamp, sentence/token counts, shard and
byte offset — built in one streaming scan that never decodes sentence
data) live in memory, while the documents themselves stay on disk and are
decoded on demand.  ``records()`` streams the collection one document at a
time and :meth:`ShardedEncodedCollection.dataset` plans map splits from the
index alone, so a corpus larger than RAM runs end to end.
``materialize=True`` restores the historical fully-resident
:class:`EncodedCollection`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.corpus.collection import EncodedCollection, EncodedDocument
from repro.corpus.vocabulary import Vocabulary
from repro.exceptions import CorpusError, DatasetError, SerializationError
from repro.mapreduce.dataset import Dataset, plan_split_sizes
from repro.util.varint import (
    _CONTINUATION,
    decode_sequence,
    decode_varint,
    encode_sequence,
    encode_varint,
)

DICTIONARY_FILENAME = "dictionary.txt"
SHARD_PATTERN = "part-{index:05d}.bin"


def _shard_path(directory: str, index: int) -> str:
    return os.path.join(directory, SHARD_PATTERN.format(index=index))


def _encode_document(document: EncodedDocument) -> bytes:
    payload = bytearray()
    payload.extend(encode_varint(document.doc_id))
    timestamp = 0 if document.timestamp is None else document.timestamp + 1
    payload.extend(encode_varint(timestamp))
    payload.extend(encode_varint(len(document.sentences)))
    for sentence in document.sentences:
        payload.extend(encode_sequence(sentence))
    return bytes(payload)


def _decode_document(data: bytes, offset: int) -> tuple:
    doc_id, offset = decode_varint(data, offset)
    raw_timestamp, offset = decode_varint(data, offset)
    timestamp = None if raw_timestamp == 0 else raw_timestamp - 1
    num_sentences, offset = decode_varint(data, offset)
    sentences = []
    for _ in range(num_sentences):
        sentence, offset = decode_sequence(data, offset)
        sentences.append(tuple(sentence))
    document = EncodedDocument(doc_id=doc_id, sentences=tuple(sentences), timestamp=timestamp)
    return document, offset


def write_encoded_collection(
    collection: EncodedCollection, directory: str, num_shards: int = 8
) -> None:
    """Write ``collection`` to ``directory`` in the paper's on-disk layout."""
    if num_shards < 1:
        raise CorpusError("num_shards must be >= 1")
    os.makedirs(directory, exist_ok=True)

    dictionary_path = os.path.join(directory, DICTIONARY_FILENAME)
    with open(dictionary_path, "w", encoding="utf-8") as handle:
        for line in collection.vocabulary.to_lines():
            handle.write(line + "\n")

    shards: List[bytearray] = [bytearray() for _ in range(num_shards)]
    for index, document in enumerate(collection.documents):
        shards[index % num_shards].extend(_encode_document(document))
    for shard_index, payload in enumerate(shards):
        with open(_shard_path(directory, shard_index), "wb") as handle:
            handle.write(bytes(payload))


@dataclass(frozen=True)
class DocumentEntry:
    """Index entry of one document: its header plus where its bytes live.

    Entries are what a :class:`ShardedEncodedCollection` keeps in memory —
    a handful of integers per document, independent of how much text the
    document holds.
    """

    doc_id: int
    timestamp: Optional[int]
    num_sentences: int
    num_tokens: int
    shard_index: int
    offset: int
    length: int


#: Bytes read per chunk while scanning shard headers.
_SCAN_CHUNK_BYTES = 256 * 1024


class _ShardScanner:
    """Chunk-buffered varint reader over one shard file.

    Decoding runs on an in-memory buffer refilled in large reads — one
    syscall per chunk, not one per byte — and sentence payloads are
    skipped by scanning continuation bits, so indexing a shard costs a
    fraction of decoding it while the resident window stays one chunk.
    """

    def __init__(self, handle, chunk_bytes: int = _SCAN_CHUNK_BYTES) -> None:
        self._handle = handle
        self._chunk_bytes = chunk_bytes
        self._buffer = b""
        self._pos = 0
        self._base = 0  # file offset of the buffer's first byte

    def tell(self) -> int:
        return self._base + self._pos

    def _refill(self) -> bool:
        """Drop consumed bytes and append one more chunk; False at EOF."""
        if self._pos:
            self._base += self._pos
            self._buffer = self._buffer[self._pos :]
            self._pos = 0
        chunk = self._handle.read(self._chunk_bytes)
        if not chunk:
            return False
        self._buffer += chunk
        return True

    def read_varint(self) -> Tuple[int, bool]:
        """Next varint as ``(value, at_eof)``; EOF only at a clean boundary."""
        while True:
            if self._pos < len(self._buffer):
                try:
                    value, self._pos = decode_varint(self._buffer, self._pos)
                    return value, False
                except SerializationError:
                    # A varint can straddle the chunk boundary; with ten or
                    # more bytes in hand the failure is genuine.
                    if len(self._buffer) - self._pos >= 10 or not self._refill():
                        raise
            elif not self._refill():
                return 0, True

    def skip_varints(self, count: int) -> None:
        """Skip ``count`` varints without decoding their values."""
        buffer, pos = self._buffer, self._pos
        while count:
            if pos >= len(buffer):
                self._pos = pos
                if not self._refill():
                    raise SerializationError("truncated varint in stream")
                buffer, pos = self._buffer, self._pos
                continue
            if not buffer[pos] & _CONTINUATION:
                count -= 1
            pos += 1
        self._pos = pos


def _scan_shard(path: str, shard_index: int) -> List[DocumentEntry]:
    """Stream one shard, indexing document headers without decoding content.

    Sentence payloads are skipped (their length prefixes are summed into
    the token count), so the scan's memory footprint is one read chunk
    regardless of document size.
    """
    entries: List[DocumentEntry] = []
    with open(path, "rb") as handle:
        scanner = _ShardScanner(handle)
        while True:
            offset = scanner.tell()
            doc_id, at_eof = scanner.read_varint()
            if at_eof:
                return entries
            raw_timestamp, at_eof = scanner.read_varint()
            if at_eof:
                raise CorpusError(f"truncated document header in {path!r}")
            num_sentences, at_eof = scanner.read_varint()
            if at_eof:
                raise CorpusError(f"truncated document header in {path!r}")
            num_tokens = 0
            for _ in range(num_sentences):
                sentence_length, at_eof = scanner.read_varint()
                if at_eof:
                    raise CorpusError(f"truncated sentence in {path!r}")
                num_tokens += sentence_length
                scanner.skip_varints(sentence_length)
            entries.append(
                DocumentEntry(
                    doc_id=doc_id,
                    timestamp=None if raw_timestamp == 0 else raw_timestamp - 1,
                    num_sentences=num_sentences,
                    num_tokens=num_tokens,
                    shard_index=shard_index,
                    offset=offset,
                    length=scanner.tell() - offset,
                )
            )


class ShardedEncodedCollection(EncodedCollection):
    """A shard-backed encoded collection whose documents stay on disk.

    Only the vocabulary and the per-document :class:`DocumentEntry` index
    are resident; every access decodes documents on demand, in document
    identifier order (matching the eager reader).  Aggregate properties
    (sentence, token and document counts, timestamps) come straight from
    the index, and :meth:`dataset` plans map splits from it without
    touching document bytes.
    """

    def __init__(
        self,
        directory: str,
        vocabulary: Vocabulary,
        shard_paths: List[str],
        entries: List[DocumentEntry],
    ) -> None:
        # Deliberately not calling EncodedCollection.__init__: documents
        # are never materialised, so every accessor touching the eager
        # class's internals is overridden below.  The internals themselves
        # are poisoned with None so a future EncodedCollection method that
        # reaches for them fails fast here instead of reporting an empty
        # collection.
        self._documents = None  # type: ignore[assignment]
        self._by_id = None  # type: ignore[assignment]
        self.vocabulary = vocabulary
        self._directory = directory
        self._shard_paths = tuple(shard_paths)
        self._entries = tuple(sorted(entries, key=lambda entry: entry.doc_id))
        self._by_doc_id: Dict[int, DocumentEntry] = {}
        for entry in self._entries:
            if entry.doc_id in self._by_doc_id:
                raise CorpusError(f"duplicate document identifier {entry.doc_id}")
            self._by_doc_id[entry.doc_id] = entry
        # The entries are frozen; aggregate once instead of per access.
        self._num_sentences = sum(entry.num_sentences for entry in self._entries)
        self._num_tokens = sum(entry.num_tokens for entry in self._entries)

    @property
    def directory(self) -> str:
        """The corpus directory this collection streams from."""
        return self._directory

    # ------------------------------------------------------------- decoding
    def _decode_entry(self, entry: DocumentEntry, handle=None) -> EncodedDocument:
        if handle is not None:
            handle.seek(entry.offset)
            data = handle.read(entry.length)
        else:
            with open(self._shard_paths[entry.shard_index], "rb") as shard:
                shard.seek(entry.offset)
                data = shard.read(entry.length)
        document, _ = _decode_document(data, 0)
        return document

    def _iter_documents(self) -> Iterator[EncodedDocument]:
        """Decode documents in identifier order, one shard handle per shard."""
        handles: Dict[int, object] = {}
        try:
            for entry in self._entries:
                handle = handles.get(entry.shard_index)
                if handle is None:
                    handle = open(self._shard_paths[entry.shard_index], "rb")
                    handles[entry.shard_index] = handle
                yield self._decode_entry(entry, handle=handle)
        finally:
            for handle in handles.values():
                handle.close()

    # -------------------------------------------------------------- access
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[EncodedDocument]:
        return self._iter_documents()

    def __getitem__(self, doc_id: int) -> EncodedDocument:
        if doc_id not in self._by_doc_id:
            raise KeyError(doc_id)
        return self._decode_entry(self._by_doc_id[doc_id])

    @property
    def documents(self) -> Tuple[EncodedDocument, ...]:
        """Every document, decoded — the non-streaming escape hatch."""
        return tuple(self._iter_documents())

    def records(self) -> Iterator[Tuple[int, Tuple]]:
        """Stream one ``(doc_id, term_id_sequence)`` record per sentence."""
        for document in self._iter_documents():
            for sentence in document.sentences:
                yield document.doc_id, sentence

    def dataset(self) -> "ShardedCorpusDataset":
        """The records as a dataset whose splits are planned on the index.

        Unlike the in-memory collections' view, a split here pickles as
        shard paths plus byte offsets, so process-backend workers read
        their slice of the corpus straight from the shard files.
        """
        return ShardedCorpusDataset(self)

    def timestamps(self) -> Dict[int, Optional[int]]:
        return {entry.doc_id: entry.timestamp for entry in self._entries}

    @property
    def num_token_occurrences(self) -> int:
        return self._num_tokens

    @property
    def num_sentences(self) -> int:
        return self._num_sentences


@dataclass(frozen=True)
class _DocumentSegment:
    """A contiguous range of one document's sentences, addressed on disk."""

    path: str
    offset: int
    length: int
    skip: int
    take: int


@dataclass(frozen=True)
class ShardedCorpusSplit:
    """One map split of a sharded corpus: document segments to decode.

    Picklable at a few dozen bytes per document touched; iterating decodes
    each segment's document from its shard (handles are reused per shard
    within the split) and yields its sentence records.
    """

    segments: Tuple[_DocumentSegment, ...]

    def __len__(self) -> int:
        return sum(segment.take for segment in self.segments)

    def __iter__(self) -> Iterator[Tuple[int, Tuple]]:
        handles: Dict[str, object] = {}
        try:
            for segment in self.segments:
                handle = handles.get(segment.path)
                if handle is None:
                    handle = open(segment.path, "rb")
                    handles[segment.path] = handle
                handle.seek(segment.offset)
                document, _ = _decode_document(handle.read(segment.length), 0)
                sentences = document.sentences[segment.skip : segment.skip + segment.take]
                for sentence in sentences:
                    yield document.doc_id, sentence
        finally:
            for handle in handles.values():
                handle.close()


class ShardedCorpusDataset(Dataset):
    """Streaming dataset view over a :class:`ShardedEncodedCollection`.

    ``split`` walks the document index only: split boundaries follow
    :func:`~repro.mapreduce.dataset.plan_split_sizes` over the global
    sentence sequence (the same planner every dataset flavour uses, so
    task boundaries cannot drift between corpus- and dataset-backed
    inputs), and a boundary falling inside a document becomes a sentence
    ``skip`` in that document's segment.
    """

    def __init__(self, collection: ShardedEncodedCollection) -> None:
        self._collection = collection

    def iter_records(self) -> Iterator[Tuple[int, Tuple]]:
        return self._collection.records()

    @property
    def num_records(self) -> int:
        return self._collection.num_sentences

    def split(self, num_splits: int) -> List[ShardedCorpusSplit]:
        collection = self._collection
        sizes = plan_split_sizes(self.num_records, num_splits)
        entries = collection._entries
        paths = collection._shard_paths
        splits: List[ShardedCorpusSplit] = []
        entry_index = 0
        assigned = 0  # sentences of the current document already assigned
        for size in sizes:
            segments: List[_DocumentSegment] = []
            needed = size
            while needed > 0:
                entry = entries[entry_index]
                available = entry.num_sentences - assigned
                if available == 0:
                    entry_index += 1
                    assigned = 0
                    continue
                take = min(needed, available)
                segments.append(
                    _DocumentSegment(
                        path=paths[entry.shard_index],
                        offset=entry.offset,
                        length=entry.length,
                        skip=assigned,
                        take=take,
                    )
                )
                needed -= take
                assigned += take
            splits.append(ShardedCorpusSplit(segments=tuple(segments)))
        return splits

    def release(self) -> None:
        raise DatasetError("a corpus-backed dataset cannot be released")

    @property
    def released(self) -> bool:
        return False


def _corpus_layout(directory: str) -> Tuple[str, List[str]]:
    """Locate the dictionary and shard files of a corpus directory."""
    dictionary_path = os.path.join(directory, DICTIONARY_FILENAME)
    if not os.path.exists(dictionary_path):
        raise CorpusError(f"no dictionary file found in {directory!r}")
    shard_paths: List[str] = []
    while True:
        path = _shard_path(directory, len(shard_paths))
        if not os.path.exists(path):
            break
        shard_paths.append(path)
    return dictionary_path, shard_paths


def read_encoded_collection(directory: str, materialize: bool = False) -> EncodedCollection:
    """Read a collection previously written by :func:`write_encoded_collection`.

    By default the documents stay on disk: the returned
    :class:`ShardedEncodedCollection` holds only the vocabulary and a
    per-document index, streaming (and splitting) the corpus from its
    shard layout.  ``materialize=True`` decodes everything up front into a
    fully-resident :class:`EncodedCollection`.
    """
    dictionary_path, shard_paths = _corpus_layout(directory)
    with open(dictionary_path, "r", encoding="utf-8") as handle:
        vocabulary = Vocabulary.from_lines(handle)

    if materialize:
        documents: List[EncodedDocument] = []
        for path in shard_paths:
            with open(path, "rb") as handle:
                data = handle.read()
            offset = 0
            while offset < len(data):
                document, offset = _decode_document(data, offset)
                documents.append(document)
        documents.sort(key=lambda document: document.doc_id)
        return EncodedCollection(documents, vocabulary)

    entries: List[DocumentEntry] = []
    for shard_index, path in enumerate(shard_paths):
        entries.extend(_scan_shard(path, shard_index))
    return ShardedEncodedCollection(directory, vocabulary, shard_paths, entries)
