"""On-disk format for encoded collections.

The paper's preprocessing stores "the term dictionary ... as a single text
file; documents are spread as key-value pairs of 64-bit document identifier
and content integer array over a total of 256 binary files".  This module
reproduces that layout at configurable shard count:

``<directory>/dictionary.txt``
    One ``term<TAB>frequency`` line per term, in term-identifier order.

``<directory>/part-NNNNN.bin``
    Binary shards.  Each record is: varint document identifier, varint
    timestamp-plus-one (0 means "no timestamp"), varint sentence count, then
    each sentence as a length-prefixed varint sequence of term identifiers.
"""

from __future__ import annotations

import os
from typing import List

from repro.corpus.collection import EncodedCollection, EncodedDocument
from repro.corpus.vocabulary import Vocabulary
from repro.exceptions import CorpusError
from repro.util.varint import decode_sequence, decode_varint, encode_sequence, encode_varint

DICTIONARY_FILENAME = "dictionary.txt"
SHARD_PATTERN = "part-{index:05d}.bin"


def _shard_path(directory: str, index: int) -> str:
    return os.path.join(directory, SHARD_PATTERN.format(index=index))


def _encode_document(document: EncodedDocument) -> bytes:
    payload = bytearray()
    payload.extend(encode_varint(document.doc_id))
    timestamp = 0 if document.timestamp is None else document.timestamp + 1
    payload.extend(encode_varint(timestamp))
    payload.extend(encode_varint(len(document.sentences)))
    for sentence in document.sentences:
        payload.extend(encode_sequence(sentence))
    return bytes(payload)


def _decode_document(data: bytes, offset: int) -> tuple:
    doc_id, offset = decode_varint(data, offset)
    raw_timestamp, offset = decode_varint(data, offset)
    timestamp = None if raw_timestamp == 0 else raw_timestamp - 1
    num_sentences, offset = decode_varint(data, offset)
    sentences = []
    for _ in range(num_sentences):
        sentence, offset = decode_sequence(data, offset)
        sentences.append(tuple(sentence))
    document = EncodedDocument(doc_id=doc_id, sentences=tuple(sentences), timestamp=timestamp)
    return document, offset


def write_encoded_collection(
    collection: EncodedCollection, directory: str, num_shards: int = 8
) -> None:
    """Write ``collection`` to ``directory`` in the paper's on-disk layout."""
    if num_shards < 1:
        raise CorpusError("num_shards must be >= 1")
    os.makedirs(directory, exist_ok=True)

    dictionary_path = os.path.join(directory, DICTIONARY_FILENAME)
    with open(dictionary_path, "w", encoding="utf-8") as handle:
        for line in collection.vocabulary.to_lines():
            handle.write(line + "\n")

    shards: List[bytearray] = [bytearray() for _ in range(num_shards)]
    for index, document in enumerate(collection.documents):
        shards[index % num_shards].extend(_encode_document(document))
    for shard_index, payload in enumerate(shards):
        with open(_shard_path(directory, shard_index), "wb") as handle:
            handle.write(bytes(payload))


def read_encoded_collection(directory: str) -> EncodedCollection:
    """Read a collection previously written by :func:`write_encoded_collection`."""
    dictionary_path = os.path.join(directory, DICTIONARY_FILENAME)
    if not os.path.exists(dictionary_path):
        raise CorpusError(f"no dictionary file found in {directory!r}")
    with open(dictionary_path, "r", encoding="utf-8") as handle:
        vocabulary = Vocabulary.from_lines(handle)

    documents: List[EncodedDocument] = []
    shard_index = 0
    while True:
        path = _shard_path(directory, shard_index)
        if not os.path.exists(path):
            break
        with open(path, "rb") as handle:
            data = handle.read()
        offset = 0
        while offset < len(data):
            document, offset = _decode_document(data, offset)
            documents.append(document)
        shard_index += 1

    documents.sort(key=lambda document: document.doc_id)
    return EncodedCollection(documents, vocabulary)
