"""Synthetic corpus generators standing in for NYT and ClueWeb09-B.

The paper evaluates on two licensed corpora that cannot be redistributed:

* The New York Times Annotated Corpus — 1.8 M well-curated news articles,
  mean sentence length ≈ 19 tokens (stddev ≈ 14), covering 1987–2007;
* ClueWeb09-B — 50 M heterogeneous English web pages crawled in 2009 with a
  much larger vocabulary and noisier text.

The generators below produce collections with the statistical properties the
algorithms are sensitive to — Zipf-distributed unigram frequencies, realistic
sentence-length distributions, a controllable rate of *long repeated phrases*
(quotations, recipes, chess openings for news; spam, error messages, stack
traces, boilerplate for the web), and duplicated boilerplate across web pages.
Both are deterministic given a seed, and both expose a ``scale`` knob so the
same relative experiments can be run at laptop scale.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.corpus.collection import DocumentCollection
from repro.corpus.document import Document
from repro.corpus import phrases
from repro.exceptions import CorpusError


@dataclass(frozen=True)
class ZipfVocabularyModel:
    """A Zipf-Mandelbrot unigram model over a synthetic vocabulary.

    Term ``i`` (0-based rank) has unnormalised weight ``1 / (i + shift)**exponent``.
    Terms are named ``t<rank>`` so tests can recover the rank from the token.
    """

    size: int
    exponent: float = 1.05
    shift: float = 2.7

    def __post_init__(self) -> None:
        if self.size < 1:
            raise CorpusError("vocabulary size must be >= 1")
        if self.exponent <= 0:
            raise CorpusError("Zipf exponent must be positive")

    def term(self, rank: int) -> str:
        """Surface form of the term with the given frequency rank."""
        return f"t{rank}"

    def cumulative_weights(self) -> List[float]:
        """Cumulative unnormalised weights used for inverse-CDF sampling."""
        weights: List[float] = []
        total = 0.0
        for rank in range(self.size):
            total += 1.0 / ((rank + self.shift) ** self.exponent)
            weights.append(total)
        return weights


class _ZipfSampler:
    """Inverse-CDF sampler over a :class:`ZipfVocabularyModel`."""

    def __init__(self, model: ZipfVocabularyModel, rng: random.Random) -> None:
        self.model = model
        self.rng = rng
        self._cumulative = model.cumulative_weights()
        self._total = self._cumulative[-1]

    def sample(self) -> str:
        import bisect

        point = self.rng.random() * self._total
        rank = bisect.bisect_left(self._cumulative, point)
        rank = min(rank, self.model.size - 1)
        return self.model.term(rank)

    def sample_many(self, count: int) -> List[str]:
        return [self.sample() for _ in range(count)]


def _sentence_length(rng: random.Random, mean: float, stddev: float) -> int:
    """Draw a sentence length from a log-normal fit to the given moments."""
    if mean <= 1:
        return 1
    variance = stddev ** 2
    mu = math.log(mean ** 2 / math.sqrt(variance + mean ** 2))
    sigma = math.sqrt(math.log(1 + variance / mean ** 2))
    length = int(round(rng.lognormvariate(mu, sigma)))
    return max(1, length)


@dataclass
class SyntheticCorpusConfig:
    """Shared knobs of the two corpus generators."""

    num_documents: int = 200
    vocabulary_size: int = 2_000
    sentences_per_document_mean: float = 12.0
    sentence_length_mean: float = 19.0
    sentence_length_stddev: float = 14.0
    phrase_probability: float = 0.05
    zipf_exponent: float = 1.05
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_documents < 1:
            raise CorpusError("num_documents must be >= 1")
        if not 0.0 <= self.phrase_probability <= 1.0:
            raise CorpusError("phrase_probability must be in [0, 1]")
        if self.zipf_exponent <= 0:
            raise CorpusError("zipf_exponent must be positive")


class _BaseGenerator:
    """Common machinery of the newswire and web generators."""

    #: Phrase bank injected into sentences.
    phrase_bank: Sequence[Tuple[str, ...]] = phrases.NEWSWIRE_PHRASES
    #: Timestamp range (inclusive) documents are drawn from.
    timestamp_range: Tuple[int, int] = (1987, 2007)

    def __init__(self, config: Optional[SyntheticCorpusConfig] = None, **overrides: object) -> None:
        if config is None:
            config = self.default_config()
        if overrides:
            config = SyntheticCorpusConfig(
                **{**config.__dict__, **overrides}  # type: ignore[arg-type]
            )
        self.config = config

    @classmethod
    def default_config(cls) -> SyntheticCorpusConfig:
        """The corpus-style-specific default configuration."""
        return SyntheticCorpusConfig()

    # ---------------------------------------------------------------- hooks
    def _document_sentences(
        self, rng: random.Random, sampler: _ZipfSampler
    ) -> List[Tuple[str, ...]]:
        """Generate the sentences of one document."""
        num_sentences = max(1, int(rng.expovariate(1.0 / self.config.sentences_per_document_mean)))
        sentences: List[Tuple[str, ...]] = []
        for _ in range(num_sentences):
            sentences.append(self._sentence(rng, sampler))
        return sentences

    def _sentence(self, rng: random.Random, sampler: _ZipfSampler) -> Tuple[str, ...]:
        """Generate one sentence, occasionally embedding a long phrase."""
        if rng.random() < self.config.phrase_probability:
            phrase = phrases.pick_phrase(rng, self.phrase_bank)
            # Surround the phrase with a little ordinary text so that the
            # phrase is a proper n-gram inside a longer sentence.
            prefix = tuple(sampler.sample_many(rng.randrange(0, 4)))
            suffix = tuple(sampler.sample_many(rng.randrange(0, 4)))
            return prefix + phrase + suffix
        length = _sentence_length(
            rng, self.config.sentence_length_mean, self.config.sentence_length_stddev
        )
        return tuple(sampler.sample_many(length))

    def _timestamp(self, rng: random.Random) -> int:
        low, high = self.timestamp_range
        return rng.randint(low, high)

    # ----------------------------------------------------------------- api
    def generate(self) -> DocumentCollection:
        """Generate the full document collection."""
        rng = random.Random(self.config.seed)
        model = ZipfVocabularyModel(
            size=self.config.vocabulary_size, exponent=self.config.zipf_exponent
        )
        sampler = _ZipfSampler(model, rng)
        collection = DocumentCollection()
        for doc_id in range(self.config.num_documents):
            sentences = self._document_sentences(rng, sampler)
            collection.add(
                Document.from_sentences(
                    doc_id, sentences, timestamp=self._timestamp(rng)
                )
            )
        return collection


class NewswireCorpusGenerator(_BaseGenerator):
    """NYT-like synthetic corpus: clean, longitudinal, modest vocabulary.

    Defaults follow Table I of the paper scaled down: mean sentence length
    ≈ 19 tokens with a heavy tail, quotations/recipes/chess openings as the
    long repeated n-grams, timestamps spread over 1987–2007.
    """

    phrase_bank = phrases.NEWSWIRE_PHRASES
    timestamp_range = (1987, 2007)


class WebCorpusGenerator(_BaseGenerator):
    """ClueWeb-like synthetic corpus: noisy, heterogeneous, boilerplate-heavy.

    Compared to the newswire generator it uses a larger vocabulary, shorter
    but higher-variance sentences (Table I: mean ≈ 17, stddev ≈ 17.6), a
    higher long-phrase rate (web spam, error messages, stack traces) and
    duplicates navigation boilerplate across many pages, which is what makes
    ClueWeb hard for the APRIORI methods at low τ.
    """

    phrase_bank = phrases.WEB_PHRASES
    timestamp_range = (2009, 2009)

    @classmethod
    def default_config(cls) -> SyntheticCorpusConfig:
        return SyntheticCorpusConfig(
            vocabulary_size=6_000,
            sentence_length_mean=17.0,
            sentence_length_stddev=17.5,
            phrase_probability=0.08,
            zipf_exponent=0.9,
        )

    def _document_sentences(
        self, rng: random.Random, sampler: _ZipfSampler
    ) -> List[Tuple[str, ...]]:
        sentences = super()._document_sentences(rng, sampler)
        # Most web pages share navigation boilerplate; prepend one snippet to
        # roughly half the documents (duplicated across pages by design).
        if rng.random() < 0.5:
            snippet = phrases.BOILERPLATE_SNIPPETS[
                rng.randrange(len(phrases.BOILERPLATE_SNIPPETS))
            ]
            sentences.insert(0, snippet)
        return sentences


def make_newswire_sample(num_documents: int = 200, seed: int = 42) -> DocumentCollection:
    """Convenience constructor for a small NYT-like sample collection."""
    return NewswireCorpusGenerator(num_documents=num_documents, seed=seed).generate()


def make_web_sample(num_documents: int = 200, seed: int = 7) -> DocumentCollection:
    """Convenience constructor for a small ClueWeb-like sample collection."""
    return WebCorpusGenerator(num_documents=num_documents, seed=seed).generate()
