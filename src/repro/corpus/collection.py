"""Document collections, raw and integer-encoded.

Two levels exist, mirroring the paper's preprocessing (Section V, "Sequence
Encoding"):

* :class:`DocumentCollection` holds :class:`~repro.corpus.document.Document`
  objects with string tokens; it is convenient for tests and small examples.
* :class:`EncodedCollection` holds :class:`EncodedDocument` objects whose
  sentences are tuples of integer term identifiers assigned in descending
  collection-frequency order by a :class:`~repro.corpus.vocabulary.Vocabulary`.

Both expose ``records()`` — the ``(document identifier, term sequence)``
pairs that all MapReduce jobs consume, one record per sentence because
sentence boundaries act as n-gram barriers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.corpus.document import Document
from repro.corpus.vocabulary import Vocabulary
from repro.exceptions import CorpusError
from repro.mapreduce.dataset import CollectionDataset

TermSequence = Tuple[int, ...]
Record = Tuple[int, Tuple]


@dataclass(frozen=True)
class EncodedDocument:
    """A document whose sentences are integer term-identifier sequences."""

    doc_id: int
    sentences: Tuple[TermSequence, ...]
    timestamp: Optional[int] = None

    @property
    def num_tokens(self) -> int:
        """Total number of term occurrences in the document."""
        return sum(len(sentence) for sentence in self.sentences)

    @property
    def num_sentences(self) -> int:
        return len(self.sentences)


class DocumentCollection:
    """An ordered collection of raw (string-token) documents."""

    def __init__(self, documents: Optional[Iterable[Document]] = None) -> None:
        self._documents: List[Document] = []
        self._by_id: Dict[int, Document] = {}
        if documents is not None:
            for document in documents:
                self.add(document)

    # ----------------------------------------------------------- mutation
    def add(self, document: Document) -> None:
        """Append ``document``; document identifiers must be unique."""
        if document.doc_id in self._by_id:
            raise CorpusError(f"duplicate document identifier {document.doc_id}")
        self._documents.append(document)
        self._by_id[document.doc_id] = document

    @classmethod
    def from_token_lists(
        cls,
        token_lists: Sequence[Sequence[str]],
        timestamps: Optional[Sequence[Optional[int]]] = None,
    ) -> "DocumentCollection":
        """Build a collection of single-sentence documents from token lists.

        This is the convenience constructor used throughout the tests and the
        paper's running example (three documents over the vocabulary
        ``{a, b, x}``).
        """
        if timestamps is not None and len(timestamps) != len(token_lists):
            raise CorpusError("timestamps must match token_lists in length")
        collection = cls()
        for index, tokens in enumerate(token_lists):
            timestamp = timestamps[index] if timestamps is not None else None
            collection.add(Document.from_tokens(index, tokens, timestamp=timestamp))
        return collection

    # ------------------------------------------------------------- access
    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents)

    def __getitem__(self, doc_id: int) -> Document:
        if doc_id not in self._by_id:
            raise KeyError(doc_id)
        return self._by_id[doc_id]

    @property
    def documents(self) -> Tuple[Document, ...]:
        return tuple(self._documents)

    def records(self) -> Iterator[Record]:
        """Yield one ``(doc_id, sentence_tokens)`` record per sentence."""
        for document in self._documents:
            for sentence in document.sentences:
                yield document.doc_id, sentence

    def dataset(self) -> CollectionDataset:
        """The collection's records as a splittable, streaming dataset."""
        return CollectionDataset(self, self.num_sentences)

    def timestamps(self) -> Dict[int, Optional[int]]:
        """Mapping from document identifier to timestamp."""
        return {document.doc_id: document.timestamp for document in self._documents}

    @property
    def num_token_occurrences(self) -> int:
        """Total number of token occurrences across all documents."""
        return sum(document.num_tokens for document in self._documents)

    @property
    def num_sentences(self) -> int:
        return sum(document.num_sentences for document in self._documents)

    def distinct_terms(self) -> set:
        """The set of distinct tokens occurring in the collection."""
        terms: set = set()
        for document in self._documents:
            for sentence in document.sentences:
                terms.update(sentence)
        return terms

    # ------------------------------------------------------------ sampling
    def sample(self, fraction: float, seed: int = 0) -> "DocumentCollection":
        """Return a random ``fraction`` of the documents (Figure 6 workload).

        Sampling is deterministic for a given ``seed`` and preserves document
        order, so 25 %/50 %/75 % samples of the same collection are nested in
        distribution even though they are drawn independently.
        """
        import random

        if not 0.0 < fraction <= 1.0:
            raise CorpusError(f"fraction must be in (0, 1], got {fraction}")
        if fraction == 1.0:
            return DocumentCollection(self._documents)
        rng = random.Random(seed)
        chosen = [doc for doc in self._documents if rng.random() < fraction]
        return DocumentCollection(chosen)

    # ------------------------------------------------------------ encoding
    def encode(self, vocabulary: Optional[Vocabulary] = None) -> "EncodedCollection":
        """Encode the collection into integer term-identifier sequences."""
        if vocabulary is None:
            vocabulary = Vocabulary.from_collection(self)
        encoded_documents = []
        for document in self._documents:
            encoded_sentences = tuple(
                tuple(vocabulary.term_id(token) for token in sentence)
                for sentence in document.sentences
            )
            encoded_documents.append(
                EncodedDocument(
                    doc_id=document.doc_id,
                    sentences=encoded_sentences,
                    timestamp=document.timestamp,
                )
            )
        return EncodedCollection(encoded_documents, vocabulary)


class EncodedCollection:
    """A collection of integer-encoded documents plus its vocabulary."""

    def __init__(
        self,
        documents: Iterable[EncodedDocument],
        vocabulary: Vocabulary,
    ) -> None:
        self._documents: List[EncodedDocument] = list(documents)
        self._by_id: Dict[int, EncodedDocument] = {}
        for document in self._documents:
            if document.doc_id in self._by_id:
                raise CorpusError(f"duplicate document identifier {document.doc_id}")
            self._by_id[document.doc_id] = document
        self.vocabulary = vocabulary

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[EncodedDocument]:
        return iter(self._documents)

    def __getitem__(self, doc_id: int) -> EncodedDocument:
        if doc_id not in self._by_id:
            raise KeyError(doc_id)
        return self._by_id[doc_id]

    @property
    def documents(self) -> Tuple[EncodedDocument, ...]:
        return tuple(self._documents)

    def records(self) -> Iterator[Record]:
        """Yield one ``(doc_id, term_id_sequence)`` record per sentence."""
        for document in self._documents:
            for sentence in document.sentences:
                yield document.doc_id, sentence

    def dataset(self) -> CollectionDataset:
        """The encoded records as a splittable, streaming dataset.

        This is the engine-facing view of the collection: map splits are
        planned from the sentence count alone and each split re-iterates
        only its contiguous slice of the record stream.
        """
        return CollectionDataset(self, self.num_sentences)

    def timestamps(self) -> Dict[int, Optional[int]]:
        """Mapping from document identifier to timestamp."""
        return {document.doc_id: document.timestamp for document in self._documents}

    @property
    def num_token_occurrences(self) -> int:
        return sum(document.num_tokens for document in self._documents)

    @property
    def num_sentences(self) -> int:
        return sum(document.num_sentences for document in self._documents)

    def decode_ngram(self, ngram: Sequence[int]) -> Tuple[str, ...]:
        """Translate an integer n-gram back into its surface form."""
        return tuple(self.vocabulary.term(term_id) for term_id in ngram)
