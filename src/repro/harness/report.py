"""Plain-text report formatting in the spirit of the paper's tables/figures.

The harness prints fixed-width tables (one row per measurement or one row
per method with one column per swept parameter value) so the benchmark
output can be compared side-by-side with the paper's plots and recorded in
``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.harness.measurement import RunMeasurement


def format_table(
    rows: Sequence[Mapping[str, object]], columns: Optional[Sequence[str]] = None
) -> str:
    """Format dictionaries as a fixed-width text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {column: len(str(column)) for column in columns}
    for row in rows:
        for column in columns:
            widths[column] = max(widths[column], len(str(row.get(column, ""))))
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    separator = "  ".join("-" * widths[column] for column in columns)
    lines = [header, separator]
    for row in rows:
        lines.append(
            "  ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def format_measurements(measurements: Iterable[RunMeasurement]) -> str:
    """One row per measurement, with the paper's three measures."""
    rows = [measurement.as_row() for measurement in measurements]
    columns = [
        "dataset",
        "algorithm",
        "tau",
        "sigma",
        "wallclock_s",
        "simulated_s",
        "records",
        "bytes",
        "jobs",
        "ngrams",
    ]
    if any(row.get("peak_mem_bytes") is not None for row in rows):
        columns.append("peak_mem_bytes")
    return format_table(rows, columns)


def format_sweep(
    sweep: Mapping[object, List[RunMeasurement]],
    metric: str = "simulated_s",
    parameter_label: str = "value",
) -> str:
    """One row per method, one column per swept parameter value.

    This mirrors the paper's line plots (Figures 4–7): each line (method) is
    a row; the x-axis values are the columns; cells hold the chosen metric.
    """
    values = list(sweep.keys())
    methods: List[str] = []
    for measurements in sweep.values():
        for measurement in measurements:
            if measurement.algorithm not in methods:
                methods.append(measurement.algorithm)
    rows = []
    for method in methods:
        row: Dict[str, object] = {parameter_label: method}
        for value in values:
            cell = ""
            for measurement in sweep[value]:
                if measurement.algorithm == method:
                    cell = measurement.as_row()[metric]
                    break
            row[str(value)] = cell
        rows.append(row)
    return format_table(rows, [parameter_label] + [str(value) for value in values])


def format_histogram(histogram: Mapping[tuple, int], base_label: str = "10") -> str:
    """Format the Figure 2 bucket histogram (length bucket × frequency bucket)."""
    if not histogram:
        return "(empty histogram)"
    length_buckets = sorted({bucket[0] for bucket in histogram})
    frequency_buckets = sorted({bucket[1] for bucket in histogram})
    rows: List[Dict[str, object]] = []
    for frequency_bucket in reversed(frequency_buckets):
        row: Dict[str, object] = {"cf bucket": f"10^{frequency_bucket}"}
        for length_bucket in length_buckets:
            row[f"len 10^{length_bucket}"] = histogram.get((length_bucket, frequency_bucket), 0)
        rows.append(row)
    return format_table(
        rows, ["cf bucket"] + [f"len 10^{bucket}" for bucket in length_buckets]
    )
