"""Experiment harness reproducing the paper's evaluation (Section VII).

The harness provides:

* :mod:`repro.harness.datasets` — scaled-down synthetic stand-ins for the
  NYT and ClueWeb09-B corpora with per-dataset default parameters;
* :mod:`repro.harness.measurement` — the measurement record (wallclock,
  bytes transferred, number of records) the paper reports for every run;
* :mod:`repro.harness.experiment` — running one method once and sweeping
  methods × parameters;
* :mod:`repro.harness.figures` — one driver per table/figure of the paper;
* :mod:`repro.harness.report` — plain-text tables in the paper's layout.
"""

from repro.harness.datasets import DatasetSpec, clueweb_like, nytimes_like
from repro.harness.experiment import ExperimentRunner
from repro.harness.measurement import RunMeasurement
from repro.harness.report import format_measurements, format_table

__all__ = [
    "DatasetSpec",
    "ExperimentRunner",
    "RunMeasurement",
    "clueweb_like",
    "format_measurements",
    "format_table",
    "nytimes_like",
]
