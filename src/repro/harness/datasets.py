"""Dataset presets for the experiments.

The paper evaluates on The New York Times Annotated Corpus (NYT) and
ClueWeb09-B (CW).  Neither can be redistributed, so the harness uses the
synthetic generators of :mod:`repro.corpus.synthetic` with presets matching
the corpora's character (Table I): NYT-like — clean, longitudinal, moderate
vocabulary, mean sentence length ≈ 19; CW-like — noisy, larger vocabulary,
shorter but higher-variance sentences, boilerplate and spam shared across
pages.  Sizes and τ values are scaled down so every experiment runs on one
machine in seconds; the *relative* parameter choices mirror the paper (CW
always uses a 10× higher τ than NYT, the language-model use case uses a low
τ with σ = 5, the analytics use case a higher τ with σ = 100).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Tuple

from repro.corpus.collection import DocumentCollection, EncodedCollection
from repro.corpus.synthetic import (
    NewswireCorpusGenerator,
    SyntheticCorpusConfig,
    WebCorpusGenerator,
)


@dataclass(frozen=True)
class DatasetSpec:
    """A named dataset plus the parameter choices the experiments use on it.

    Attributes mirror the roles the paper assigns per dataset: the τ used for
    the language-model use case, the τ used for the analytics use case and
    for the σ/scaling sweeps, the τ sweep of Figure 4 and the σ sweep of
    Figure 5.
    """

    name: str
    num_documents: int
    seed: int
    language_model_tau: int
    analytics_tau: int
    sweep_tau: Tuple[int, ...]
    sweep_sigma: Tuple[Optional[int], ...]
    default_tau: int
    generator: str = "newswire"

    def build(self, fraction: float = 1.0) -> EncodedCollection:
        """Generate (and cache) the encoded collection, optionally sampled."""
        collection = _generate(self.name, self.generator, self.num_documents, self.seed)
        if fraction < 1.0:
            collection = collection.sample(fraction, seed=self.seed)
        return collection.encode()

    def build_raw(self, fraction: float = 1.0) -> DocumentCollection:
        """Generate the raw (string-token) collection."""
        collection = _generate(self.name, self.generator, self.num_documents, self.seed)
        if fraction < 1.0:
            collection = collection.sample(fraction, seed=self.seed)
        return collection


@lru_cache(maxsize=8)
def _generate(name: str, generator: str, num_documents: int, seed: int) -> DocumentCollection:
    """Deterministically generate a named corpus (cached per process)."""
    if generator == "newswire":
        config = SyntheticCorpusConfig(
            num_documents=num_documents,
            vocabulary_size=2_000,
            sentence_length_mean=19.0,
            sentence_length_stddev=14.0,
            phrase_probability=0.08,
            seed=seed,
        )
        return NewswireCorpusGenerator(config).generate()
    if generator == "web":
        config = SyntheticCorpusConfig(
            num_documents=num_documents,
            vocabulary_size=6_000,
            sentence_length_mean=17.0,
            sentence_length_stddev=17.5,
            phrase_probability=0.10,
            zipf_exponent=0.9,
            seed=seed,
        )
        return WebCorpusGenerator(config).generate()
    raise ValueError(f"unknown generator {generator!r}")


def nytimes_like(num_documents: int = 150, seed: int = 42) -> DatasetSpec:
    """The NYT stand-in: clean newswire text, low τ values."""
    return DatasetSpec(
        name="NYT-like",
        num_documents=num_documents,
        seed=seed,
        language_model_tau=3,
        analytics_tau=5,
        sweep_tau=(3, 5, 10, 25, 100),
        sweep_sigma=(5, 10, 50, 100),
        default_tau=5,
        generator="newswire",
    )


def clueweb_like(num_documents: int = 200, seed: int = 7) -> DatasetSpec:
    """The ClueWeb09-B stand-in: noisy web text, 10× higher τ values."""
    return DatasetSpec(
        name="CW-like",
        num_documents=num_documents,
        seed=seed,
        language_model_tau=5,
        analytics_tau=10,
        sweep_tau=(5, 10, 25, 50, 200),
        sweep_sigma=(5, 10, 50, 100),
        default_tau=10,
        generator="web",
    )


def default_datasets(scale: float = 1.0) -> List[DatasetSpec]:
    """Both dataset presets, optionally scaled in document count."""
    nyt = nytimes_like(num_documents=max(10, int(150 * scale)))
    clueweb = clueweb_like(num_documents=max(10, int(200 * scale)))
    return [nyt, clueweb]
