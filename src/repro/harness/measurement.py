"""Measurement records for experiment runs.

Section VII.A of the paper lists the reported measures: (a) wallclock time,
(b) bytes transferred between map and reduce phases (``MAP_OUTPUT_BYTES``),
and (c) the number of key-value records transferred and sorted
(``MAP_OUTPUT_RECORDS``); for multi-job methods, (b) and (c) aggregate over
all jobs launched.  :class:`RunMeasurement` captures these three plus the
simulated-cluster wallclock used for the scaling experiments and some
context (dataset, parameters, result size).

Beyond the paper's measures, a run can carry the tracked peak of
Python-level allocations (``peak_memory_bytes``, measured with
:class:`~repro.util.memory.PeakMemoryTracker`) — the number the
materialisation benchmarks compare between the in-memory and the sharded
on-disk dataset modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.util.memory import PeakMemoryTracker

__all__ = ["PeakMemoryTracker", "RunMeasurement"]


@dataclass(frozen=True)
class RunMeasurement:
    """One algorithm run on one dataset with one parameter setting."""

    algorithm: str
    dataset: str
    min_frequency: int
    max_length: Optional[int]
    wallclock_seconds: float
    simulated_wallclock_seconds: float
    map_output_records: int
    map_output_bytes: int
    num_jobs: int
    num_ngrams: int
    peak_memory_bytes: Optional[int] = None
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def sigma_label(self) -> str:
        """Human-readable σ (``"inf"`` for unbounded)."""
        return "inf" if self.max_length is None else str(self.max_length)

    def as_row(self) -> Dict[str, object]:
        """Flat dictionary used by the report formatter."""
        return {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "tau": self.min_frequency,
            "sigma": self.sigma_label,
            "wallclock_s": round(self.wallclock_seconds, 3),
            "simulated_s": round(self.simulated_wallclock_seconds, 3),
            "records": self.map_output_records,
            "bytes": self.map_output_bytes,
            "jobs": self.num_jobs,
            "ngrams": self.num_ngrams,
            "peak_mem_bytes": self.peak_memory_bytes,
            **{key: round(value, 4) for key, value in self.extra.items()},
        }
