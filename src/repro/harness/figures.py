"""One driver per table / figure of the paper's evaluation (Section VII).

Every function returns plain data structures (measurements, sweeps,
histograms) and leaves formatting to :mod:`repro.harness.report`; the
benchmark scripts under ``benchmarks/`` call these drivers and print the
paper-style rows recorded in ``EXPERIMENTS.md``.

The experiments mirror the paper's settings with scaled-down datasets and τ
values (see :mod:`repro.harness.datasets`):

* Table I — dataset characteristics;
* Figure 2 — output characteristics (τ=5, σ=∞) as a 2-d exponential
  histogram over n-gram length and collection frequency;
* Figure 3 — the language-model (σ=5, low τ) and analytics (σ=100, higher τ)
  use cases, all four methods;
* Figure 4 — sweep of the minimum collection frequency τ at σ=5;
* Figure 5 — sweep of the maximum length σ at a per-dataset τ;
* Figure 6 — scaling the datasets (25/50/75/100 % document samples);
* Figure 7 — scaling computational resources (slots) via the cluster cost
  model applied to a 50 % sample.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algorithms import make_counter
from repro.algorithms.extensions import (
    ClosedNGramCounter,
    MaximalNGramCounter,
    SuffixSigmaTimeSeriesCounter,
)
from repro.config import ClusterConfig, ExecutionConfig, NGramJobConfig
from repro.corpus.stats import CollectionStatistics, compute_statistics
from repro.harness.datasets import DatasetSpec, default_datasets
from repro.harness.experiment import DEFAULT_METHODS, ExperimentRunner
from repro.harness.measurement import RunMeasurement

#: Fractions used by the dataset-scaling experiment (Figure 6).
DATASET_FRACTIONS: Tuple[float, ...] = (0.25, 0.5, 0.75, 1.0)

#: Slot counts used by the resource-scaling experiment (Figure 7).
SLOT_COUNTS: Tuple[int, ...] = (16, 32, 48, 64)


# ---------------------------------------------------------------- Table I
def table1_dataset_characteristics(
    datasets: Optional[Sequence[DatasetSpec]] = None,
) -> Dict[str, CollectionStatistics]:
    """Dataset characteristics (# documents, term occurrences, ...)."""
    datasets = list(datasets) if datasets is not None else default_datasets()
    return {spec.name: compute_statistics(spec.build_raw()) for spec in datasets}


# --------------------------------------------------------------- Figure 2
def figure2_output_characteristics(
    datasets: Optional[Sequence[DatasetSpec]] = None,
    min_frequency: int = 5,
    execution: Optional[ExecutionConfig] = None,
) -> Dict[str, Dict[Tuple[int, int], int]]:
    """Number of n-grams per (length, collection-frequency) bucket.

    Computed with SUFFIX-σ at τ=``min_frequency`` and σ=∞, exactly the
    setting of Figure 2.
    """
    datasets = list(datasets) if datasets is not None else default_datasets()
    histograms: Dict[str, Dict[Tuple[int, int], int]] = {}
    for spec in datasets:
        config = NGramJobConfig(min_frequency=min_frequency, max_length=None)
        counter = make_counter("SUFFIX-SIGMA", config, execution=execution)
        result = counter.run(spec.build())
        histograms[spec.name] = result.statistics.bucket_histogram()
    return histograms


# --------------------------------------------------------------- Figure 3
@dataclass
class UseCaseResult:
    """Measurements for the two use cases of Figure 3."""

    language_model: Dict[str, List[RunMeasurement]] = field(default_factory=dict)
    analytics: Dict[str, List[RunMeasurement]] = field(default_factory=dict)


def figure3_use_cases(
    datasets: Optional[Sequence[DatasetSpec]] = None,
    runner: Optional[ExperimentRunner] = None,
) -> UseCaseResult:
    """Language-model (σ=5) and text-analytics (σ=100) use cases.

    NAIVE is skipped for the analytics use case on the web-like dataset,
    matching the paper ("the method did not complete in reasonable time").
    """
    datasets = list(datasets) if datasets is not None else default_datasets()
    runner = runner if runner is not None else ExperimentRunner()
    result = UseCaseResult()
    for spec in datasets:
        collection = spec.build()
        result.language_model[spec.name] = runner.compare_methods(
            collection, spec.name, spec.language_model_tau, 5
        )
        skip = ("NAIVE",) if spec.generator == "web" else ()
        result.analytics[spec.name] = runner.compare_methods(
            collection, spec.name, spec.analytics_tau, 100, skip=skip
        )
    return result


# --------------------------------------------------------------- Figure 4
def figure4_vary_tau(
    datasets: Optional[Sequence[DatasetSpec]] = None,
    runner: Optional[ExperimentRunner] = None,
) -> Dict[str, Dict[object, List[RunMeasurement]]]:
    """Sweep the minimum collection frequency τ at σ=5 (Figure 4)."""
    datasets = list(datasets) if datasets is not None else default_datasets()
    runner = runner if runner is not None else ExperimentRunner()
    sweeps: Dict[str, Dict[object, List[RunMeasurement]]] = {}
    for spec in datasets:
        collection = spec.build()
        sweeps[spec.name] = runner.sweep_parameter(
            collection,
            spec.name,
            parameter="tau",
            values=spec.sweep_tau,
            fixed_tau=spec.default_tau,
            fixed_sigma=5,
        )
    return sweeps


# --------------------------------------------------------------- Figure 5
def figure5_vary_sigma(
    datasets: Optional[Sequence[DatasetSpec]] = None,
    runner: Optional[ExperimentRunner] = None,
) -> Dict[str, Dict[object, List[RunMeasurement]]]:
    """Sweep the maximum length σ at a per-dataset τ (Figure 5).

    As in the paper, NAIVE is skipped for σ > 5 on the web-like dataset.
    """
    datasets = list(datasets) if datasets is not None else default_datasets()
    runner = runner if runner is not None else ExperimentRunner()
    sweeps: Dict[str, Dict[object, List[RunMeasurement]]] = {}
    for spec in datasets:
        collection = spec.build()
        sweep: Dict[object, List[RunMeasurement]] = {}
        for sigma in spec.sweep_sigma:
            skip = (
                ("NAIVE",)
                if spec.generator == "web" and sigma is not None and sigma > 5
                else ()
            )
            sweep[sigma] = runner.compare_methods(
                collection, spec.name, spec.default_tau, sigma, skip=skip
            )
        sweeps[spec.name] = sweep
    return sweeps


# --------------------------------------------------------------- Figure 6
def figure6_scale_datasets(
    datasets: Optional[Sequence[DatasetSpec]] = None,
    runner: Optional[ExperimentRunner] = None,
    fractions: Sequence[float] = DATASET_FRACTIONS,
) -> Dict[str, Dict[object, List[RunMeasurement]]]:
    """Wallclock versus the fraction of documents processed (Figure 6)."""
    datasets = list(datasets) if datasets is not None else default_datasets()
    runner = runner if runner is not None else ExperimentRunner()
    sweeps: Dict[str, Dict[object, List[RunMeasurement]]] = {}
    for spec in datasets:
        sweep: Dict[object, List[RunMeasurement]] = {}
        for fraction in fractions:
            collection = spec.build(fraction=fraction)
            sweep[int(fraction * 100)] = runner.compare_methods(
                collection, spec.name, spec.default_tau, 5
            )
        sweeps[spec.name] = sweep
    return sweeps


# --------------------------------------------------------------- Figure 7
def figure7_scale_slots(
    datasets: Optional[Sequence[DatasetSpec]] = None,
    slot_counts: Sequence[int] = SLOT_COUNTS,
    fraction: float = 0.5,
    execution: Optional[ExecutionConfig] = None,
) -> Dict[str, Dict[object, List[RunMeasurement]]]:
    """Simulated wallclock versus the number of map/reduce slots (Figure 7).

    Each method runs once per dataset on a 50 % sample with a task count
    larger than the largest slot count; the simulated-cluster cost model then
    evaluates the same measured task metrics under every slot count, exactly
    how a scheduler with more slots would process the same tasks.
    ``execution`` selects the backend the measured runs execute on.
    """
    datasets = list(datasets) if datasets is not None else default_datasets()
    runner = ExperimentRunner(num_map_tasks=96, num_reducers=16, execution=execution)
    sweeps: Dict[str, Dict[object, List[RunMeasurement]]] = {}
    for spec in datasets:
        collection = spec.build(fraction=fraction)
        per_method_results = {}
        for method in DEFAULT_METHODS:
            _, result = runner.run_once(
                method, collection, spec.name, spec.default_tau, 5
            )
            per_method_results[method] = result
        sweep: Dict[object, List[RunMeasurement]] = {}
        for slots in slot_counts:
            cluster = ClusterConfig.with_slots(slots)
            measurements = []
            for method, result in per_method_results.items():
                measurements.append(
                    RunMeasurement(
                        algorithm=method,
                        dataset=spec.name,
                        min_frequency=spec.default_tau,
                        max_length=5,
                        wallclock_seconds=result.elapsed_seconds,
                        simulated_wallclock_seconds=result.simulated_wallclock(cluster),
                        map_output_records=result.map_output_records,
                        map_output_bytes=result.map_output_bytes,
                        num_jobs=result.num_jobs,
                        num_ngrams=len(result.statistics),
                    )
                )
            sweep[slots] = measurements
        sweeps[spec.name] = sweep
    return sweeps


# ------------------------------------------------------------- Extensions
@dataclass
class ExtensionsResult:
    """Result sizes of the maximality/closedness extension plus a time series sample."""

    all_ngrams: Dict[str, int] = field(default_factory=dict)
    closed_ngrams: Dict[str, int] = field(default_factory=dict)
    maximal_ngrams: Dict[str, int] = field(default_factory=dict)
    sample_time_series: Dict[str, Dict[Tuple, Dict[int, int]]] = field(default_factory=dict)


def extensions_overview(
    datasets: Optional[Sequence[DatasetSpec]] = None,
    min_frequency: Optional[int] = None,
    max_length: Optional[int] = 5,
    time_series_samples: int = 3,
) -> ExtensionsResult:
    """Compare |all| vs |closed| vs |maximal| and sample n-gram time series."""
    datasets = list(datasets) if datasets is not None else default_datasets()
    result = ExtensionsResult()
    for spec in datasets:
        collection = spec.build()
        tau = min_frequency if min_frequency is not None else spec.default_tau
        config = NGramJobConfig(min_frequency=tau, max_length=max_length)

        all_result = make_counter("SUFFIX-SIGMA", config).run(collection)
        closed_result = ClosedNGramCounter(config).run(collection)
        maximal_result = MaximalNGramCounter(config).run(collection)
        result.all_ngrams[spec.name] = len(all_result.statistics)
        result.closed_ngrams[spec.name] = len(closed_result.statistics)
        result.maximal_ngrams[spec.name] = len(maximal_result.statistics)

        timeseries_counter = SuffixSigmaTimeSeriesCounter(config)
        timeseries_counter.run(collection)
        top = all_result.statistics.top(time_series_samples, length=2)
        result.sample_time_series[spec.name] = {
            ngram: timeseries_counter.time_series.series(ngram).as_dict()
            for ngram, _ in top
        }
    return result


# -------------------------------------------------------------- Ablations
def ablation_implementation_choices(
    dataset: Optional[DatasetSpec] = None,
    min_frequency: Optional[int] = None,
    max_length: Optional[int] = 5,
    execution: Optional[ExecutionConfig] = None,
) -> List[RunMeasurement]:
    """Effect of the Section V implementation techniques.

    Compares, on the NYT-like dataset: NAIVE with and without the combiner,
    NAIVE and SUFFIX-σ with and without document splitting, and APRIORI-SCAN
    with the spilling key-value-store dictionary.  ``execution`` selects the
    backend every variant runs on.
    """
    spec = dataset if dataset is not None else default_datasets()[0]
    tau = min_frequency if min_frequency is not None else spec.default_tau
    collection = spec.build()
    measurements: List[RunMeasurement] = []

    variants = [
        ("NAIVE", {"use_combiner": True, "split_documents": False}, "NAIVE+combiner"),
        ("NAIVE", {"use_combiner": False, "split_documents": False}, "NAIVE-no-combiner"),
        ("NAIVE", {"use_combiner": True, "split_documents": True}, "NAIVE+split"),
        ("SUFFIX-SIGMA", {"split_documents": False}, "SUFFIX-SIGMA"),
        ("SUFFIX-SIGMA", {"split_documents": True}, "SUFFIX-SIGMA+split"),
        ("APRIORI-SCAN", {"split_documents": False}, "APRIORI-SCAN"),
        ("APRIORI-SCAN", {"split_documents": True}, "APRIORI-SCAN+split"),
    ]
    for method, overrides, label in variants:
        runner = ExperimentRunner(execution=execution, **{
            key: value
            for key, value in overrides.items()
            if key in ("use_combiner", "split_documents")
        })
        measurement, _ = runner.run_once(method, collection, spec.name, tau, max_length)
        measurements.append(
            RunMeasurement(
                algorithm=label,
                dataset=measurement.dataset,
                min_frequency=measurement.min_frequency,
                max_length=measurement.max_length,
                wallclock_seconds=measurement.wallclock_seconds,
                simulated_wallclock_seconds=measurement.simulated_wallclock_seconds,
                map_output_records=measurement.map_output_records,
                map_output_bytes=measurement.map_output_bytes,
                num_jobs=measurement.num_jobs,
                num_ngrams=measurement.num_ngrams,
            )
        )
    return measurements
