"""Running algorithms and sweeping parameters.

:class:`ExperimentRunner` executes one algorithm under one configuration on
one (already encoded) collection and converts the outcome into a
:class:`~repro.harness.measurement.RunMeasurement`; its sweep helpers iterate
methods × parameter values the way the paper's figures do.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.algorithms import ALGORITHMS, make_counter
from repro.algorithms.base import CountingResult
from repro.config import ClusterConfig, ExecutionConfig, NGramJobConfig, StoreConfig
from repro.exceptions import ExperimentError
from repro.harness.measurement import RunMeasurement

#: The order in which the paper lists the methods in its figures.
DEFAULT_METHODS: Tuple[str, ...] = (
    "NAIVE",
    "APRIORI-SCAN",
    "APRIORI-INDEX",
    "SUFFIX-SIGMA",
)


class ExperimentRunner:
    """Runs algorithms and records paper-style measurements."""

    def __init__(
        self,
        cluster: Optional[ClusterConfig] = None,
        num_reducers: int = 4,
        num_map_tasks: int = 8,
        use_combiner: bool = True,
        split_documents: bool = False,
        apriori_index_k: int = 4,
        execution: Optional[ExecutionConfig] = None,
        track_memory: bool = False,
        store_dir: Optional[str] = None,
        store: Optional[StoreConfig] = None,
    ) -> None:
        """``execution`` selects the MapReduce backend (runner, worker count,
        shuffle spill budget, dataset materialisation) every measured run
        executes on; ``None`` is the sequential in-memory default.  With
        ``track_memory`` every run also records its peak of Python-level
        allocations on the measurement.  With ``store_dir`` every run's
        statistics are persisted as a queryable n-gram store under
        ``store_dir/<dataset>-<algorithm>-tau<t>-sigma<s>`` (configured by
        ``store``), so experiment sweeps leave servable artifacts behind."""
        self.cluster = cluster if cluster is not None else ClusterConfig()
        self.num_reducers = num_reducers
        self.num_map_tasks = num_map_tasks
        self.use_combiner = use_combiner
        self.split_documents = split_documents
        self.apriori_index_k = apriori_index_k
        self.execution = execution
        self.track_memory = track_memory
        self.store_dir = store_dir
        self.store = store

    def _run_store_dir(
        self,
        algorithm: str,
        dataset_name: str,
        min_frequency: int,
        max_length: Optional[int],
    ) -> Optional[str]:
        if self.store_dir is None:
            return None
        sigma = "inf" if max_length is None else str(max_length)
        slug = f"{dataset_name}-{algorithm}-tau{min_frequency}-sigma{sigma}"
        safe = "".join(ch if ch.isalnum() or ch in "-_." else "-" for ch in slug)
        # Sweeps (e.g. figure 6's dataset fractions) repeat the same
        # (dataset, algorithm, tau, sigma) cell; suffix a run counter so a
        # later run never overwrites an earlier run's store.
        base = os.path.join(self.store_dir, safe.lower())
        candidate, attempt = base, 1
        while os.path.exists(candidate):
            attempt += 1
            candidate = f"{base}-{attempt}"
        return candidate

    # ------------------------------------------------------------ plumbing
    def _make_config(self, min_frequency: int, max_length: Optional[int]) -> NGramJobConfig:
        return NGramJobConfig(
            min_frequency=min_frequency,
            max_length=max_length,
            num_reducers=self.num_reducers,
            use_combiner=self.use_combiner,
            split_documents=self.split_documents,
            apriori_index_k=self.apriori_index_k,
        )

    def _measure(
        self,
        algorithm: str,
        dataset_name: str,
        result: CountingResult,
        cluster: Optional[ClusterConfig] = None,
    ) -> RunMeasurement:
        cluster = cluster if cluster is not None else self.cluster
        return RunMeasurement(
            algorithm=algorithm,
            dataset=dataset_name,
            min_frequency=result.config.min_frequency,
            max_length=result.config.max_length,
            wallclock_seconds=result.elapsed_seconds,
            simulated_wallclock_seconds=result.simulated_wallclock(cluster),
            map_output_records=result.map_output_records,
            map_output_bytes=result.map_output_bytes,
            num_jobs=result.num_jobs,
            num_ngrams=len(result.statistics),
            peak_memory_bytes=result.peak_memory_bytes,
        )

    # ----------------------------------------------------------------- API
    def run_once(
        self,
        algorithm: str,
        collection,
        dataset_name: str,
        min_frequency: int,
        max_length: Optional[int],
        cluster: Optional[ClusterConfig] = None,
    ) -> Tuple[RunMeasurement, CountingResult]:
        """Run ``algorithm`` once, returning the measurement and the result."""
        if algorithm not in ALGORITHMS:
            raise ExperimentError(f"unknown algorithm {algorithm!r}")
        config = self._make_config(min_frequency, max_length)
        counter = make_counter(algorithm, config, execution=self.execution)
        counter.num_map_tasks = self.num_map_tasks
        result = counter.run(
            collection,
            track_memory=self.track_memory,
            store_dir=self._run_store_dir(algorithm, dataset_name, min_frequency, max_length),
            store=self.store,
        )
        return self._measure(algorithm, dataset_name, result, cluster), result

    def compare_methods(
        self,
        collection,
        dataset_name: str,
        min_frequency: int,
        max_length: Optional[int],
        methods: Sequence[str] = DEFAULT_METHODS,
        skip: Iterable[str] = (),
    ) -> List[RunMeasurement]:
        """Run several methods with identical parameters (one figure bar group)."""
        skip = set(skip)
        measurements = []
        for method in methods:
            if method in skip:
                continue
            measurement, _ = self.run_once(
                method, collection, dataset_name, min_frequency, max_length
            )
            measurements.append(measurement)
        return measurements

    def sweep_parameter(
        self,
        collection,
        dataset_name: str,
        parameter: str,
        values: Sequence,
        fixed_tau: int,
        fixed_sigma: Optional[int],
        methods: Sequence[str] = DEFAULT_METHODS,
        skip: Iterable[str] = (),
    ) -> Dict[object, List[RunMeasurement]]:
        """Sweep one of τ/σ over ``values`` for every method.

        ``parameter`` must be ``"tau"`` or ``"sigma"``; the other parameter
        stays at its ``fixed_*`` value.
        """
        if parameter not in ("tau", "sigma"):
            raise ExperimentError("parameter must be 'tau' or 'sigma'")
        results: Dict[object, List[RunMeasurement]] = {}
        for value in values:
            tau = value if parameter == "tau" else fixed_tau
            sigma = value if parameter == "sigma" else fixed_sigma
            results[value] = self.compare_methods(
                collection, dataset_name, tau, sigma, methods=methods, skip=skip
            )
        return results
