"""Exporting experiment results to CSV and JSON.

The benchmark harness prints paper-style tables; for downstream analysis
(plotting, regression tracking across commits) the same data can be exported
as machine-readable files.  Both flat measurement lists and parameter sweeps
are supported.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Dict, Iterable, List, Mapping, Sequence

from repro.harness.measurement import RunMeasurement

#: Column order used for CSV exports (matches the report tables; the
#: peak-memory column is empty unless the run tracked memory).
CSV_COLUMNS: Sequence[str] = (
    "dataset",
    "algorithm",
    "tau",
    "sigma",
    "wallclock_s",
    "simulated_s",
    "records",
    "bytes",
    "jobs",
    "ngrams",
    "peak_mem_bytes",
)


def measurements_to_rows(measurements: Iterable[RunMeasurement]) -> List[Dict[str, object]]:
    """Flatten measurements into plain dictionaries (stable column set)."""
    return [measurement.as_row() for measurement in measurements]


def write_measurements_csv(
    measurements: Iterable[RunMeasurement], path: str, extra_columns: Sequence[str] = ()
) -> None:
    """Write measurements to ``path`` as CSV."""
    rows = measurements_to_rows(measurements)
    columns = list(CSV_COLUMNS) + [column for column in extra_columns if column not in CSV_COLUMNS]
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns, extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)


def write_measurements_json(measurements: Iterable[RunMeasurement], path: str) -> None:
    """Write measurements to ``path`` as a JSON array."""
    rows = measurements_to_rows(measurements)
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(rows, handle, indent=2, sort_keys=True)
        handle.write("\n")


def sweep_to_rows(
    sweep: Mapping[object, List[RunMeasurement]], parameter_name: str = "value"
) -> List[Dict[str, object]]:
    """Flatten a parameter sweep into one row per (parameter value, method)."""
    rows: List[Dict[str, object]] = []
    for value, measurements in sweep.items():
        for measurement in measurements:
            row = measurement.as_row()
            row[parameter_name] = value
            rows.append(row)
    return rows


def write_sweep_csv(
    sweep: Mapping[object, List[RunMeasurement]],
    path: str,
    parameter_name: str = "value",
) -> None:
    """Write a parameter sweep to ``path`` as CSV (one row per value × method)."""
    rows = sweep_to_rows(sweep, parameter_name)
    columns = [parameter_name] + list(CSV_COLUMNS)
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns, extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)


def read_measurements_json(path: str) -> List[Dict[str, object]]:
    """Read back a JSON export (plain dictionaries, not RunMeasurement objects)."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, list):
        raise ValueError(f"expected a JSON array in {path!r}")
    return data
