"""Applications built on top of the n-gram statistics.

The paper motivates n-gram statistics as "an important building block" for
information retrieval and natural language processing.  This package
implements the three applications its introduction and evaluation highlight,
each as a small library component driven by the statistics the core
algorithms produce:

* :mod:`repro.applications.language_model` — n-gram language models with
  back-off smoothing (the σ=5 / low-τ use case of Figure 3a);
* :mod:`repro.applications.coderivatives` — co-derivative / plagiarised
  document detection via long shared n-grams (Bernstein & Zobel, cited in
  Section VIII);
* :mod:`repro.applications.culturomics` — n-gram time-series analysis in the
  style of Michel et al. (Section VI.B).
"""

from repro.applications.language_model import NGramLanguageModel, build_language_model
from repro.applications.coderivatives import CoderivativePair, find_coderivative_pairs
from repro.applications.culturomics import (
    TrendReport,
    normalise_series,
    peak_bucket,
    trend_report,
)

__all__ = [
    "CoderivativePair",
    "NGramLanguageModel",
    "TrendReport",
    "build_language_model",
    "find_coderivative_pairs",
    "normalise_series",
    "peak_bucket",
    "trend_report",
]
