"""Co-derivative document detection via long shared n-grams.

Bernstein and Zobel (cited in Section VIII of the paper) identify long
n-grams as a means to spot co-derivative documents: two documents sharing a
sufficiently long word sequence almost certainly share provenance
(plagiarism, syndication, boilerplate reuse).  The detector here runs the
SUFFIX-σ inverted-index extension (n-gram → per-document occurrence counts),
keeps n-grams of a minimum length that occur in at least two documents, and
scores document pairs by their longest shared n-gram and the total amount of
shared text.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.algorithms.extensions.inverted_index import SuffixSigmaIndexCounter
from repro.config import NGramJobConfig
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class CoderivativePair:
    """A pair of documents suspected to be co-derivative."""

    left_doc_id: int
    right_doc_id: int
    longest_shared_length: int
    shared_ngrams: int
    shared_tokens: int

    @property
    def pair(self) -> Tuple[int, int]:
        return (self.left_doc_id, self.right_doc_id)


def find_coderivative_pairs(
    collection,
    min_shared_length: int = 8,
    min_documents: int = 2,
    max_pairs: Optional[int] = None,
) -> List[CoderivativePair]:
    """Rank document pairs by the long n-grams they share.

    Parameters
    ----------
    collection:
        Any collection exposing ``records()``.
    min_shared_length:
        Minimum n-gram length considered evidence of co-derivation.
    min_documents:
        Minimum number of documents an n-gram must occur in (τ is applied as
        a document frequency here, so 2 is the natural choice).
    max_pairs:
        Optionally truncate the ranked result.

    Notes
    -----
    Only *maximal-ish* evidence is aggregated: because every prefix of a
    shared n-gram is also shared, counting all of them would overweight long
    overlaps; instead, for each pair we record the longest shared n-gram, the
    number of distinct shared n-grams of qualifying length and the total
    shared tokens across those n-grams.
    """
    if min_shared_length < 1:
        raise ConfigurationError("min_shared_length must be >= 1")
    if min_documents < 2:
        raise ConfigurationError("min_documents must be >= 2 to define a pair")

    config = NGramJobConfig(min_frequency=min_documents, max_length=None)
    counter = SuffixSigmaIndexCounter(config)
    counter.run(collection)

    longest: Dict[Tuple[int, int], int] = defaultdict(int)
    shared_counts: Dict[Tuple[int, int], int] = defaultdict(int)
    shared_tokens: Dict[Tuple[int, int], int] = defaultdict(int)

    for ngram, postings in counter.document_postings.items():
        if len(ngram) < min_shared_length or len(postings) < min_documents:
            continue
        doc_ids = sorted(postings)
        for index, left in enumerate(doc_ids):
            for right in doc_ids[index + 1 :]:
                pair = (left, right)
                longest[pair] = max(longest[pair], len(ngram))
                shared_counts[pair] += 1
                shared_tokens[pair] += len(ngram)

    pairs = [
        CoderivativePair(
            left_doc_id=left,
            right_doc_id=right,
            longest_shared_length=longest[(left, right)],
            shared_ngrams=shared_counts[(left, right)],
            shared_tokens=shared_tokens[(left, right)],
        )
        for (left, right) in longest
    ]
    pairs.sort(key=lambda pair: (-pair.longest_shared_length, -pair.shared_tokens, pair.pair))
    if max_pairs is not None:
        pairs = pairs[:max_pairs]
    return pairs
