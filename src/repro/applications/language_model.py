"""n-gram language models built from collection-frequency statistics.

The paper's first use case (Section VII.D) computes 1..σ-gram statistics "for
which one would only look at n-grams up to a specific length and/or resort to
back-off models [Katz] to obtain more robust estimates".  This module turns
an :class:`~repro.ngrams.statistics.NGramStatistics` into a usable language
model with two smoothing strategies:

* **stupid backoff** (Brants et al., the paper the NAIVE baseline comes
  from): score(w | context) falls back to shorter contexts, multiplying by a
  fixed back-off factor; scores are not normalised probabilities but work
  well for ranking;
* **maximum likelihood** with optional additive (Laplace) smoothing, for
  contexts that are fully observed.

The model consumes whatever term type the statistics were computed over
(surface strings or integer term identifiers).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.ngrams.statistics import NGramStatistics

#: Default back-off factor recommended by Brants et al. for stupid backoff.
DEFAULT_BACKOFF = 0.4


@dataclass(frozen=True)
class ScoredSentence:
    """Log-score breakdown of one sentence."""

    tokens: Tuple
    log10_score: float
    per_token_scores: Tuple[float, ...]

    @property
    def perplexity_proxy(self) -> float:
        """10^(-average log score): lower is more fluent (not a true perplexity
        under stupid backoff because scores are unnormalised)."""
        if not self.per_token_scores:
            return float("inf")
        return 10 ** (-self.log10_score / len(self.per_token_scores))


class NGramLanguageModel:
    """A back-off n-gram language model over precomputed statistics.

    Parameters
    ----------
    statistics:
        n-gram collection frequencies; must contain at least the unigrams of
        every order up to ``order`` for useful scores (n-grams dropped by the
        τ threshold simply back off to shorter contexts).
    order:
        Maximum n-gram order used when scoring (σ of the counting run).
    total_tokens:
        Number of token occurrences in the training collection; used as the
        unigram denominator.  Defaults to the sum of unigram frequencies.
    backoff:
        Stupid-backoff multiplier applied per back-off step.
    smoothing:
        Additive smoothing constant for maximum-likelihood estimates.
    vocabulary_size:
        Number of distinct unigrams in the statistics; supplying it (along
        with ``total_tokens``) skips the construction-time scan over the
        statistics — for store-backed statistics that scan decodes the
        whole store.
    """

    def __init__(
        self,
        statistics: NGramStatistics,
        order: int = 5,
        total_tokens: Optional[int] = None,
        backoff: float = DEFAULT_BACKOFF,
        smoothing: float = 0.0,
        vocabulary_size: Optional[int] = None,
    ) -> None:
        if order < 1:
            raise ConfigurationError("language model order must be >= 1")
        if not 0.0 < backoff <= 1.0:
            raise ConfigurationError("backoff factor must be in (0, 1]")
        if smoothing < 0.0:
            raise ConfigurationError("smoothing must be >= 0")
        self.statistics = statistics
        self.order = order
        self.backoff = backoff
        self.smoothing = smoothing
        # One streaming pass computes both unigram aggregates — skipped
        # entirely when the caller supplies them (a store-backed model reads
        # them from the store manifest; for store statistics every items()
        # call re-reads the table).
        if total_tokens is None or vocabulary_size is None:
            scanned_vocabulary = 0
            scanned_total = 0
            for ngram, count in statistics.items():
                if len(ngram) == 1:
                    scanned_vocabulary += 1
                    scanned_total += count
            if total_tokens is None:
                total_tokens = scanned_total
            if vocabulary_size is None:
                vocabulary_size = scanned_vocabulary
        self.total_tokens = max(1, total_tokens)
        self._vocabulary_size = vocabulary_size

    # -------------------------------------------------------- construction
    @classmethod
    def from_store(
        cls,
        store,
        order: int = 5,
        total_tokens: Optional[int] = None,
        **model_kwargs,
    ) -> "NGramLanguageModel":
        """Build a model served straight from an on-disk n-gram store.

        ``store`` is an opened :class:`~repro.ngramstore.NGramStore` (or a
        store directory path); lookups stream through the store's block
        cache instead of a fully-resident statistics dict, so the model's
        memory footprint is the cache, not the table.  Stores persisted by
        a counting run carry the unigram aggregates in their manifest, so
        construction is O(1); stores without them are scanned once.
        Scores are identical to a dict-backed model over the same
        statistics given the same ``total_tokens``.
        """
        import os

        from repro.ngramstore.reader import NGramStore, StoreStatistics

        if isinstance(store, (str, os.PathLike)):
            store = NGramStore.open(os.fspath(store))
        metadata = store.metadata
        if total_tokens is None:
            total_tokens = metadata.get("unigram_total")
        model_kwargs.setdefault("vocabulary_size", metadata.get("vocabulary_size"))
        return cls(
            StoreStatistics(store),
            order=order,
            total_tokens=total_tokens,
            **model_kwargs,
        )

    # ------------------------------------------------------------- scoring
    def unigram_probability(self, term) -> float:
        """Smoothed unigram probability of ``term``."""
        count = self.statistics.frequency((term,))
        numerator = count + self.smoothing
        denominator = self.total_tokens + self.smoothing * max(1, self._vocabulary_size)
        if numerator == 0:
            # Unknown term: back off to a uniform floor over an open vocabulary.
            return 1.0 / (denominator + 1)
        return numerator / denominator

    def conditional_probability(self, context: Sequence, term) -> float:
        """Maximum-likelihood P(term | context) with additive smoothing.

        Returns 0.0 when the context itself was never observed (callers that
        want back-off behaviour should use :meth:`score`).
        """
        context = tuple(context)[-(self.order - 1) :] if self.order > 1 else ()
        if not context:
            return self.unigram_probability(term)
        context_count = self.statistics.frequency(context)
        if context_count == 0:
            return 0.0
        joint_count = self.statistics.frequency(context + (term,))
        numerator = joint_count + self.smoothing
        denominator = context_count + self.smoothing * max(1, self._vocabulary_size)
        return numerator / denominator

    def score(self, context: Sequence, term) -> float:
        """Stupid-backoff score S(term | context) in (0, 1]."""
        context = tuple(context)[-(self.order - 1) :] if self.order > 1 else ()
        multiplier = 1.0
        while context:
            context_count = self.statistics.frequency(context)
            joint_count = self.statistics.frequency(context + (term,))
            if context_count > 0 and joint_count > 0:
                return multiplier * joint_count / context_count
            context = context[1:]
            multiplier *= self.backoff
        return multiplier * self.unigram_probability(term)

    def score_sentence(self, tokens: Sequence) -> ScoredSentence:
        """Log10 stupid-backoff score of a full sentence."""
        tokens = tuple(tokens)
        per_token: List[float] = []
        for index, term in enumerate(tokens):
            context = tokens[max(0, index - self.order + 1) : index]
            per_token.append(math.log10(self.score(context, term)))
        return ScoredSentence(
            tokens=tokens,
            log10_score=sum(per_token),
            per_token_scores=tuple(per_token),
        )

    def compare(self, sentences: Iterable[Sequence]) -> List[ScoredSentence]:
        """Score several sentences and return them ordered best-first."""
        scored = [self.score_sentence(sentence) for sentence in sentences]
        return sorted(scored, key=lambda item: -item.log10_score)

    # ---------------------------------------------------------- generation
    def complete(self, prefix_terms: Sequence, k: Optional[int] = None) -> List[Tuple]:
        """The ``k`` best exact continuations of ``prefix_terms``.

        Unlike :meth:`continuations` this never backs off to shorter
        contexts and ranks with the deterministic ``(-count, token)``
        tie-break of :func:`repro.ngramstore.api.complete_scan` — the exact
        semantics of the server's ``complete`` operation, so a model, a
        local store, and every wire transport return byte-identical
        completions over the same statistics.  Store-backed statistics
        answer with one bounded prefix scan; dict-backed statistics feed
        the same canonical scan a key-sorted slice.  Results are
        :class:`~repro.ngramstore.api.Completion` ``(token, value)`` pairs.
        """
        from repro.ngramstore.api import DEFAULT_COMPLETE_K, complete_scan, validate_complete_k

        k = validate_complete_k(DEFAULT_COMPLETE_K if k is None else k)
        context = tuple(prefix_terms)
        store = getattr(self.statistics, "store", None)
        if store is not None:
            records = store.prefix(context)
        else:
            records = sorted(
                (tuple(ngram), count)
                for ngram, count in self.statistics.items()
                if tuple(ngram)[: len(context)] == context
            )
        completions, _ = complete_scan(records, len(context), k)
        return completions

    def continuations(self, context: Sequence, top_k: int = 5) -> List[Tuple]:
        """The most likely next terms after ``context`` (by stupid backoff).

        Candidates are drawn from observed extensions of the longest matching
        context; the unigram distribution is the fallback.
        """
        context = tuple(context)[-(self.order - 1) :] if self.order > 1 else ()
        # Store-backed statistics answer "observed extensions of context"
        # with one bounded prefix scan instead of a pass over every n-gram.
        store = getattr(self.statistics, "store", None)
        while context:
            source = store.prefix(context) if store is not None else self.statistics.items()
            extensions = [
                (ngram[-1], count)
                for ngram, count in source
                if len(ngram) == len(context) + 1 and ngram[:-1] == context
            ]
            if extensions:
                extensions.sort(key=lambda item: -item[1])
                return [term for term, _ in extensions[:top_k]]
            context = context[1:]
        unigrams = [
            (ngram[0], count) for ngram, count in self.statistics.items() if len(ngram) == 1
        ]
        unigrams.sort(key=lambda item: -item[1])
        return [term for term, _ in unigrams[:top_k]]


def build_language_model(
    collection,
    order: int = 5,
    min_frequency: int = 2,
    algorithm: str = "SUFFIX-SIGMA",
    **model_kwargs,
) -> NGramLanguageModel:
    """Count n-grams in ``collection`` and wrap them in a language model.

    This is the end-to-end path of the paper's language-model use case:
    σ = ``order``, τ = ``min_frequency``, counted with SUFFIX-σ by default.
    """
    from repro.algorithms import count_ngrams

    result = count_ngrams(
        collection, min_frequency=min_frequency, max_length=order, algorithm=algorithm
    )
    total_tokens = sum(len(sequence) for _, sequence in collection.records())
    return NGramLanguageModel(
        result.statistics, order=order, total_tokens=total_tokens, **model_kwargs
    )
