"""Time-series analysis over n-gram statistics ("culturomics").

Section VI.B motivates aggregations beyond counting with the n-gram time
series of Michel et al.: how often an n-gram occurs in documents published in
each year.  This module adds the analysis conveniences such studies need on
top of :class:`~repro.ngrams.timeseries.TimeSeries`: normalisation by yearly
totals, peak detection, and a simple linear-trend report for
rising/declining phrases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.ngrams.timeseries import NGramTimeSeriesCollection, TimeSeries


def normalise_series(
    series: TimeSeries, yearly_totals: Mapping[int, int]
) -> Dict[int, float]:
    """Relative frequency per bucket: occurrences divided by that bucket's total.

    Buckets with a zero (or missing) total are omitted, mirroring how the
    culturomics viewer normalises by the number of words published per year.
    """
    normalised: Dict[int, float] = {}
    for bucket, count in series.as_dict().items():
        total = yearly_totals.get(bucket, 0)
        if total > 0:
            normalised[bucket] = count / total
    return normalised


def peak_bucket(series: TimeSeries) -> Optional[int]:
    """The bucket with the most occurrences (earliest wins ties); None if empty."""
    observations = series.as_dict()
    if not observations:
        return None
    return min(observations, key=lambda bucket: (-observations[bucket], bucket))


def _linear_slope(points: List[Tuple[int, float]]) -> float:
    """Least-squares slope of (bucket, value) points (0.0 for fewer than 2 points)."""
    if len(points) < 2:
        return 0.0
    n = len(points)
    mean_x = sum(x for x, _ in points) / n
    mean_y = sum(y for _, y in points) / n
    denominator = sum((x - mean_x) ** 2 for x, _ in points)
    if denominator == 0:
        return 0.0
    numerator = sum((x - mean_x) * (y - mean_y) for x, y in points)
    return numerator / denominator


@dataclass(frozen=True)
class TrendReport:
    """Trend summary of one n-gram's time series."""

    ngram: Tuple
    total: int
    peak: Optional[int]
    slope: float
    first_bucket: Optional[int]
    last_bucket: Optional[int]

    @property
    def rising(self) -> bool:
        """Whether occurrences grow over time (positive least-squares slope)."""
        return self.slope > 0

    @property
    def declining(self) -> bool:
        """Whether occurrences shrink over time."""
        return self.slope < 0


def trend_report(
    collection: NGramTimeSeriesCollection,
    yearly_totals: Optional[Mapping[int, int]] = None,
    min_total: int = 1,
) -> List[TrendReport]:
    """Build trend reports for every n-gram in a time-series collection.

    When ``yearly_totals`` is given, slopes are computed on normalised
    (relative-frequency) series so that corpus growth over time does not
    masquerade as a rising phrase.
    """
    if min_total < 1:
        raise ConfigurationError("min_total must be >= 1")
    reports: List[TrendReport] = []
    for ngram, series in collection.items():
        if series.total < min_total:
            continue
        if yearly_totals is not None:
            values: Mapping[int, float] = normalise_series(series, yearly_totals)
        else:
            values = {bucket: float(count) for bucket, count in series.as_dict().items()}
        points = sorted(values.items())
        buckets = series.buckets()
        reports.append(
            TrendReport(
                ngram=ngram,
                total=series.total,
                peak=peak_bucket(series),
                slope=_linear_slope([(bucket, value) for bucket, value in points]),
                first_bucket=buckets[0] if buckets else None,
                last_bucket=buckets[-1] if buckets else None,
            )
        )
    reports.sort(key=lambda report: -report.slope)
    return reports


def yearly_token_totals(collection) -> Dict[int, int]:
    """Total token occurrences per timestamp bucket of a document collection."""
    totals: Dict[int, int] = {}
    timestamps = collection.timestamps() if hasattr(collection, "timestamps") else {}
    for document in collection:
        bucket = timestamps.get(document.doc_id)
        if bucket is None:
            continue
        totals[bucket] = totals.get(bucket, 0) + document.num_tokens
    return totals
