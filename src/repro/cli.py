"""Command-line interface.

Installed as ``repro-ngrams`` (or ``python -m repro``).  Sub-commands:

``generate``
    Generate a synthetic corpus (NYT-like or ClueWeb-like), encode it and
    write it to a directory in the paper's on-disk layout.

``stats``
    Print Table-I style characteristics of a corpus directory.

``count``
    Compute n-gram statistics of a corpus directory with any of the four
    algorithms, optionally restricted to maximal or closed n-grams.

``experiment``
    Run one of the paper's experiments (table1, fig2 ... fig7, extensions,
    ablations) on the built-in synthetic datasets and print paper-style
    tables.

``query``
    Point/prefix/top-k lookups against an n-gram store directory written by
    ``count --store-dir`` (see :mod:`repro.ngramstore`) — or against a
    running server via ``--server HOST:PORT`` (socket) or ``--url``
    (HTTP), through the same unified ``StoreAPI``.

``serve``
    Long-lived multi-client query server over one store: newline-delimited
    JSON over TCP (or REST with ``--http``), a process-wide shared block
    cache, per-request latency metrics, graceful shutdown on
    SIGINT/SIGTERM.  ``--num-shards``/``--shard-index`` serve one shard of
    a range-sharded deployment (see :mod:`repro.ngramstore.router`).

``loadgen``
    Seeded workload replay (hot-key zipf, prefix-heavy, batched, mixed)
    against a store directory or any serving deployment, reporting
    histogram-derived per-mix latency percentiles and failing on SLO
    violations (see :mod:`repro.ngramstore.loadgen`).

``merge-stores``
    K-way merge of several stores into one (summing duplicate keys) —
    compaction for incremental corpus growth from per-shard counting runs.
    Exact at any τ when the inputs carry residual sidecar tables (built
    with ``count --store-tau``); ``--allow-lower-bound`` keeps the old
    lossy behaviour for legacy residual-less stores.

``ingest``
    Count one corpus batch into a new τ=1 delta generation of an LSM
    store directory (``--init`` creates the store first).  The store
    stays queryable throughout — ``query``/``serve``/``loadgen`` sum
    all live generations transparently.

``compact``
    Fold LSM store generations together with the exact residual merge:
    size-tiered by default, ``--all`` collapses everything into one
    generation at the store's τ.

``rethreshold``
    Re-apply a different frequency threshold τ to one store, exactly:
    a single-input merge that re-splits the main/residual tables at the
    new τ — byte-identical to recounting the corpus at that τ (requires a
    residual-exact input, see ``merge-stores``).

``diff-stores`` / ``intersect-stores``
    Cross-store analytics (see :mod:`repro.ngramstore.analytics`): one
    streaming co-scan over two stores' exact tables.  ``diff`` keeps the
    n-grams of A absent from B (with A's counts); ``intersect`` keeps the
    shared n-grams with per-store counts.  Results print as records
    (``--mode ratio`` for corpus-size-normalised comparisons) or land in
    a new queryable store directory via ``--output``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.algorithms import make_counter
from repro.algorithms.extensions import ClosedNGramCounter, MaximalNGramCounter
from repro.config import (
    MATERIALIZE_MODES,
    RUNNER_NAMES,
    SHARD_CODECS,
    ExecutionConfig,
    NGramJobConfig,
    StoreConfig,
    parse_spill_threshold,
)
from repro.corpus.io import read_encoded_collection, write_encoded_collection
from repro.exceptions import ReproError
from repro.corpus.stats import compute_statistics
from repro.harness import figures
from repro.harness.datasets import clueweb_like, nytimes_like
from repro.harness.report import (
    format_histogram,
    format_measurements,
    format_sweep,
    format_table,
)


def _add_execution_arguments(parser: argparse.ArgumentParser) -> None:
    """Runner-backend flags shared by the ``count`` and ``experiment`` commands."""
    parser.add_argument(
        "--runner",
        choices=RUNNER_NAMES,
        default="local",
        help="MapReduce execution backend (default: local, sequential)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for the threads/processes runners",
    )
    parser.add_argument(
        "--spill-threshold",
        type=str,
        default=None,
        metavar="BUDGET",
        help="shuffle spill budget: bytes (65536, 64kb, 8mb) or a record "
        "count (100k, 2m, 5000r); past it, sorted runs spill to disk "
        "(default: keep the whole shuffle in memory)",
    )
    parser.add_argument(
        "--shard-codec",
        choices=SHARD_CODECS,
        default="none",
        help="stream compression for on-disk shard files and spill runs "
        "(zstd needs the optional zstandard package)",
    )
    parser.add_argument(
        "--materialize",
        choices=MATERIALIZE_MODES,
        default="memory",
        help="where job inputs/outputs live: in-memory record lists (default) "
        "or sharded varint-framed datasets on disk",
    )
    parser.add_argument(
        "--track-memory",
        action="store_true",
        help="record the peak of Python-level allocations per run "
        "(reported and included in exports)",
    )


def _add_store_layout_arguments(parser: argparse.ArgumentParser) -> None:
    """Output-store layout flags shared by the store-writing commands."""
    parser.add_argument(
        "--partitions", type=int, default=4, help="range partitions of the output store"
    )
    parser.add_argument(
        "--codec",
        choices=SHARD_CODECS,
        default="none",
        help="per-block compression codec of the output tables",
    )
    parser.add_argument(
        "--records-per-block", type=int, default=1024, help="records per data block"
    )
    parser.add_argument(
        "--bloom-bits",
        type=int,
        default=10,
        metavar="BITS",
        help="Bloom-filter bits per key in the output tables' block "
        "indexes (0 disables the filters)",
    )
    parser.add_argument(
        "--sample-size",
        type=int,
        default=1024,
        help="keys sampled when deriving partition boundaries",
    )


def _store_config_from_args(args: argparse.Namespace) -> StoreConfig:
    return StoreConfig(
        num_partitions=args.partitions,
        codec=args.codec,
        records_per_block=args.records_per_block,
        sample_size=args.sample_size,
        bloom_bits_per_key=args.bloom_bits,
    )


def _execution_from_args(args: argparse.Namespace) -> Optional[ExecutionConfig]:
    """Build an ExecutionConfig from CLI flags (None for the plain default)."""
    if args.workers is not None and args.runner == "local":
        # Silently running sequentially would corrupt any speed-up comparison.
        raise SystemExit("error: --workers requires --runner threads or processes")
    if (
        args.runner == "local"
        and args.workers is None
        and args.spill_threshold is None
        and args.shard_codec == "none"
        and args.materialize == "memory"
    ):
        return None
    spill_bytes, spill_records = None, None
    if args.spill_threshold is not None:
        try:
            spill_bytes, spill_records = parse_spill_threshold(args.spill_threshold)
        except ReproError as error:
            raise SystemExit(f"error: {error}")
    return ExecutionConfig(
        runner=args.runner,
        max_workers=args.workers,
        spill_threshold_bytes=spill_bytes,
        spill_threshold_records=spill_records,
        shard_codec=args.shard_codec,
        materialize=args.materialize,
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ngrams",
        description="Computing n-gram statistics in MapReduce (EDBT 2013) reproduction",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic corpus")
    generate.add_argument("--dataset", choices=("nyt", "cw"), default="nyt")
    generate.add_argument("--documents", type=int, default=150)
    generate.add_argument("--seed", type=int, default=42)
    generate.add_argument("--output", required=True, help="output directory")
    generate.add_argument("--shards", type=int, default=8)

    stats = subparsers.add_parser("stats", help="print corpus characteristics (Table I)")
    stats.add_argument("--input", required=True, help="corpus directory")

    count = subparsers.add_parser("count", help="compute n-gram statistics")
    count.add_argument("--input", required=True, help="corpus directory")
    count.add_argument("--tau", type=int, default=5, help="minimum collection frequency")
    count.add_argument("--sigma", type=int, default=None, help="maximum n-gram length")
    count.add_argument(
        "--algorithm",
        default="SUFFIX-SIGMA",
        help="NAIVE, APRIORI-SCAN, APRIORI-INDEX or SUFFIX-SIGMA",
    )
    count.add_argument("--maximal", action="store_true", help="only maximal n-grams")
    count.add_argument("--closed", action="store_true", help="only closed n-grams")
    count.add_argument("--document-frequency", action="store_true")
    count.add_argument("--top", type=int, default=20, help="print only the top-k n-grams")
    count.add_argument("--output", default=None, help="write all n-grams to this TSV file")
    count.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="persist the run's statistics as a queryable n-gram store "
        "(sorted block-compressed tables; query with the 'query' command)",
    )
    count.add_argument(
        "--store-partitions",
        type=int,
        default=4,
        help="range partitions (= table files) of the persisted store",
    )
    count.add_argument(
        "--store-codec",
        choices=SHARD_CODECS,
        default="none",
        help="per-block compression codec of the persisted store tables",
    )
    count.add_argument(
        "--store-bloom-bits",
        type=int,
        default=10,
        metavar="BITS",
        help="Bloom-filter bits per key in the persisted store's block "
        "indexes (0 disables the filters)",
    )
    count.add_argument(
        "--store-tau",
        type=int,
        default=1,
        metavar="TAU",
        help="store-side frequency threshold: keys with counts below TAU "
        "go to a residual sidecar table so later merges stay exact "
        "(requires --tau 1 so the raw counts exist; default: 1, no residual)",
    )
    count.add_argument(
        "--materialize-corpus",
        action="store_true",
        help="decode the whole corpus into memory up front instead of "
        "streaming it from its on-disk shard layout (the default)",
    )
    count.add_argument(
        "--export-json",
        default=None,
        metavar="PATH",
        help="write the run's measurements (counters, wallclock, peak memory) "
        "to this JSON file",
    )
    _add_execution_arguments(count)

    experiment = subparsers.add_parser("experiment", help="run one of the paper's experiments")
    experiment.add_argument(
        "name",
        choices=(
            "table1",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "extensions",
            "ablations",
        ),
    )
    experiment.add_argument("--scale", type=float, default=1.0, help="dataset scale factor")
    experiment.add_argument(
        "--export", default=None, help="also write measurements to this CSV file (fig3/fig4/fig5/fig6/fig7/ablations)"
    )
    experiment.add_argument(
        "--export-json",
        default=None,
        metavar="PATH",
        help="also write measurements to this JSON file (fig3/fig4/fig5/fig6/fig7/ablations)",
    )
    experiment.add_argument(
        "--fractions",
        default=None,
        metavar="CSV",
        help="comma-separated dataset fractions for fig6 (e.g. 0.25,0.5)",
    )
    _add_execution_arguments(experiment)

    query = subparsers.add_parser(
        "query", help="query an n-gram store written by 'count --store-dir'"
    )
    query.add_argument(
        "store",
        nargs="?",
        default=None,
        help="store directory (omit when querying a remote via --server/--url)",
    )
    query.add_argument(
        "--server",
        metavar="HOST:PORT",
        default=None,
        help="query a running 'repro serve' socket server instead of a local store",
    )
    query.add_argument(
        "--protocol",
        choices=("auto", "binary", "json"),
        default="auto",
        help="wire protocol for --server: negotiate binary with JSON "
        "fallback (auto, default), require binary, or force newline-JSON",
    )
    query.add_argument(
        "--url",
        metavar="URL",
        default=None,
        help="query a running 'repro serve --http' server instead of a local store",
    )
    query_mode = query.add_mutually_exclusive_group(required=True)
    query_mode.add_argument(
        "--get", metavar="NGRAM", help="point lookup of one n-gram (space-separated terms)"
    )
    query_mode.add_argument(
        "--prefix",
        metavar="TOKENS",
        help="every stored n-gram starting with these terms, in key order",
    )
    query_mode.add_argument(
        "--top-k", type=int, metavar="K", help="the K top n-grams store-wide"
    )
    query_mode.add_argument(
        "--stats", action="store_true", help="print store metadata and exit"
    )
    query.add_argument(
        "--order",
        choices=("frequency", "key"),
        default="frequency",
        help="ranking for --top-k (default: frequency)",
    )
    query.add_argument(
        "--limit", type=int, default=None, help="cap on printed --prefix results"
    )
    query.add_argument(
        "--ids",
        action="store_true",
        help="treat query terms as integer term identifiers and print identifiers "
        "(default: use the store's vocabulary when present)",
    )
    query.add_argument(
        "--cache-blocks",
        type=int,
        default=None,
        help="LRU block-cache capacity per table (default: 32)",
    )

    serve = subparsers.add_parser(
        "serve", help="serve an n-gram store to concurrent clients over TCP"
    )
    serve.add_argument("store", help="store directory")
    serve.add_argument("--host", default="127.0.0.1", help="interface to bind")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default: 0 = OS-assigned; the bound port is printed)",
    )
    serve.add_argument(
        "--http",
        action="store_true",
        help="serve the REST adapter (GET routes + POST /query) instead of the "
        "newline-JSON socket protocol",
    )
    serve.add_argument(
        "--num-shards",
        type=int,
        default=1,
        metavar="N",
        help="range sharding: serve only one shard of an N-way split of the "
        "store's partitions (default: 1 = the whole store)",
    )
    serve.add_argument(
        "--shard-index",
        type=int,
        default=0,
        metavar="I",
        help="which shard to serve, in [0, N) (with --num-shards)",
    )
    serve.add_argument(
        "--extra-store",
        default=None,
        metavar="DIR",
        help="mount a second store (same vocabulary) as the comparison side "
        "of the 'compare' operation — point diff/intersect lookups answer "
        "from both stores in one request",
    )
    serve.add_argument(
        "--cache-blocks",
        type=int,
        default=256,
        help="capacity of the process-wide block cache shared by all partitions",
    )
    serve.add_argument(
        "--max-clients",
        type=int,
        default=32,
        help="concurrently served connections (excess connects queue in the backlog)",
    )
    serve.add_argument(
        "--ready-file",
        default=None,
        metavar="PATH",
        help="write 'host port' to this file once listening (for scripts/CI)",
    )
    serve.add_argument(
        "--metrics-file",
        default=None,
        metavar="PATH",
        help="write the aggregated request/latency metrics JSON here on shutdown",
    )
    serve.add_argument(
        "--metrics-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="also rewrite --metrics-file every SECONDS while serving "
        "(atomic replace, so pollers never see a torn snapshot)",
    )
    serve.add_argument(
        "--slow-query-ms",
        type=float,
        default=None,
        metavar="MS",
        help="log requests slower than MS milliseconds (0 logs everything)",
    )
    serve.add_argument(
        "--slow-query-log",
        default=None,
        metavar="PATH",
        help="append slow-query JSON lines here (with --slow-query-ms; "
        "default: entries are kept in memory only)",
    )

    loadgen = subparsers.add_parser(
        "loadgen",
        help="replay a seeded workload against a store or serving deployment, "
        "asserting SLO targets",
    )
    loadgen.add_argument(
        "store",
        nargs="?",
        default=None,
        help="store directory to replay against in-process "
        "(omit when targeting servers via --connect/--url)",
    )
    loadgen.add_argument(
        "--connect",
        action="append",
        default=None,
        metavar="HOST:PORT",
        help="socket server endpoint (repeat for replicas/sharded topologies)",
    )
    loadgen.add_argument(
        "--url",
        action="append",
        default=None,
        metavar="URL",
        help="HTTP server URL (repeat for replicas/sharded topologies)",
    )
    loadgen.add_argument(
        "--topology",
        choices=("single", "replicas", "sharded"),
        default="single",
        help="how multiple endpoints compose: identical replicas behind a "
        "ReplicaPool, or range shards behind a ShardRouter",
    )
    loadgen.add_argument(
        "--mixes",
        default=None,
        metavar="NAMES",
        help="comma-separated workload mixes to replay "
        "(default: hot_key,prefix_heavy,batch,mixed)",
    )
    loadgen.add_argument(
        "--requests", type=int, default=200, help="requests per mix (default: 200)"
    )
    loadgen.add_argument(
        "--concurrency", type=int, default=4, help="closed-loop workers (default: 4)"
    )
    loadgen.add_argument("--seed", type=int, default=1, help="workload PRNG seed")
    loadgen.add_argument(
        "--batch-size", type=int, default=8, help="keys per multi_get batch"
    )
    loadgen.add_argument(
        "--universe",
        type=int,
        default=256,
        help="distinct keys sampled from the store (hottest first)",
    )
    loadgen.add_argument(
        "--zipf-s", type=float, default=1.2, help="hot-key skew exponent"
    )
    loadgen.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="write the JSON report here (e.g. reports/BENCH_loadgen.json)",
    )
    loadgen.add_argument(
        "--slo-p50-ms", type=float, default=None, help="fail if any mix's p50 exceeds MS"
    )
    loadgen.add_argument(
        "--slo-p95-ms", type=float, default=None, help="fail if any mix's p95 exceeds MS"
    )
    loadgen.add_argument(
        "--slo-p99-ms", type=float, default=None, help="fail if any mix's p99 exceeds MS"
    )
    loadgen.add_argument(
        "--slo-min-throughput",
        type=float,
        default=None,
        metavar="RPS",
        help="fail if any mix's closed-loop throughput falls below RPS",
    )

    merge = subparsers.add_parser(
        "merge-stores",
        help="k-way merge several n-gram stores into one (sums duplicate keys)",
    )
    merge.add_argument("inputs", nargs="+", help="input store directories")
    merge.add_argument("--output", required=True, help="merged store directory")
    _add_store_layout_arguments(merge)
    merge.add_argument(
        "--tau",
        type=int,
        default=None,
        metavar="TAU",
        help="frequency threshold of the merged store (requires "
        "residual-exact inputs; default: the max of the inputs' thresholds)",
    )
    merge.add_argument(
        "--allow-lower-bound",
        action="store_true",
        help="permit merging residual-less stores built with a threshold "
        "> 1: merged counts are then only lower bounds near the threshold, "
        "and the output is stamped counts=lower_bound",
    )

    rethreshold = subparsers.add_parser(
        "rethreshold",
        help="re-apply a different frequency threshold tau to one store, "
        "exactly (single-input merge over main+residual)",
    )
    rethreshold.add_argument("store", help="input store directory (residual-exact)")
    rethreshold.add_argument("--output", required=True, help="rethresholded store directory")
    rethreshold.add_argument(
        "--tau",
        type=int,
        required=True,
        metavar="TAU",
        help="new frequency threshold; counts below it move to the output's "
        "residual sidecar, counts at or above it to the main table",
    )
    _add_store_layout_arguments(rethreshold)

    for kind, title in (
        ("diff-stores", "the n-grams of store A absent from store B"),
        ("intersect-stores", "the n-grams shared by stores A and B"),
    ):
        analytics = subparsers.add_parser(
            kind,
            help=f"stream or materialise {title} (exact ordered co-scan)",
        )
        analytics.add_argument("store_a", help="left store directory (A)")
        analytics.add_argument("store_b", help="right store directory (B)")
        analytics.add_argument(
            "--output",
            default=None,
            metavar="DIR",
            help="write the result as a queryable store directory instead of "
            "printing records",
        )
        analytics.add_argument(
            "--min-frequency",
            type=int,
            default=1,
            metavar="TAU",
            help="keep only records whose count reaches TAU "
            "(both stores' counts for intersect; default: 1 = everything)",
        )
        analytics.add_argument(
            "--mode",
            choices=("count", "ratio"),
            default="count",
            help="printed value: raw counts, or counts normalised by each "
            "store's corpus size (manifest unigram_total) — 'ratio' is a "
            "report, so it cannot combine with --output",
        )
        analytics.add_argument(
            "--limit",
            type=int,
            default=None,
            metavar="N",
            help="print at most N records (default: all)",
        )
        analytics.add_argument(
            "--ids",
            action="store_true",
            help="print integer term ids instead of surface terms",
        )
        analytics.add_argument(
            "--allow-thresholded",
            action="store_true",
            help="permit comparing residual-less stores built with a "
            "threshold > 1: the co-scan then sees their filtered serving "
            "views, so absence claims below tau are unreliable",
        )
        _add_store_layout_arguments(analytics)

    ingest = subparsers.add_parser(
        "ingest",
        help="count a corpus batch into a new delta generation of an LSM store",
    )
    ingest.add_argument("store", help="LSM store directory")
    ingest.add_argument("--input", required=True, help="corpus directory to ingest")
    ingest.add_argument(
        "--init",
        action="store_true",
        help="create the LSM store first (fails if it already exists)",
    )
    ingest.add_argument(
        "--tau", type=int, default=5, help="store frequency threshold (with --init)"
    )
    ingest.add_argument(
        "--sigma", type=int, default=None, help="maximum n-gram length (with --init)"
    )
    ingest.add_argument(
        "--algorithm",
        default="SUFFIX-SIGMA",
        help="counting algorithm for delta batches (with --init)",
    )
    ingest.add_argument(
        "--store-partitions",
        type=int,
        default=4,
        help="range partitions per generation (with --init)",
    )
    ingest.add_argument(
        "--store-codec",
        choices=SHARD_CODECS,
        default="none",
        help="per-block compression codec of generation tables (with --init)",
    )
    ingest.add_argument(
        "--store-bloom-bits",
        type=int,
        default=10,
        metavar="BITS",
        help="Bloom-filter bits per key in generation block indexes (with --init)",
    )
    _add_execution_arguments(ingest)

    compact = subparsers.add_parser(
        "compact",
        help="fold LSM store generations together with the exact residual merge",
    )
    compact.add_argument("store", help="LSM store directory")
    compact.add_argument(
        "--all",
        dest="all_generations",
        action="store_true",
        help="collapse every generation into one (default: size-tiered pick)",
    )
    compact.add_argument(
        "--tier-ratio",
        type=int,
        default=None,
        metavar="RATIO",
        help="size-tiered bucketing ratio (default: 4)",
    )
    compact.add_argument(
        "--min-tier",
        type=int,
        default=None,
        metavar="N",
        help="minimum generations per compaction (default: 2)",
    )
    compact.add_argument(
        "--stats-json",
        default=None,
        metavar="PATH",
        help="write the compaction stats JSON here as well as stdout",
    )

    coderivatives = subparsers.add_parser(
        "coderivatives", help="find co-derivative document pairs via long shared n-grams"
    )
    coderivatives.add_argument("--input", required=True, help="corpus directory")
    coderivatives.add_argument("--min-length", type=int, default=8)
    coderivatives.add_argument("--top", type=int, default=10)

    trends = subparsers.add_parser(
        "trends", help="rank n-grams by their time-series trend (culturomics)"
    )
    trends.add_argument("--input", required=True, help="corpus directory")
    trends.add_argument("--tau", type=int, default=5)
    trends.add_argument("--sigma", type=int, default=3)
    trends.add_argument("--top", type=int, default=10)
    return parser


# ----------------------------------------------------------------- actions
def _cmd_generate(args: argparse.Namespace) -> int:
    if args.dataset == "nyt":
        spec = nytimes_like(num_documents=args.documents, seed=args.seed)
    else:
        spec = clueweb_like(num_documents=args.documents, seed=args.seed)
    collection = spec.build()
    write_encoded_collection(collection, args.output, num_shards=args.shards)
    statistics = compute_statistics(collection)
    print(f"wrote {spec.name} corpus to {args.output}")
    print(format_table([dict(statistics.as_rows())]))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    collection = read_encoded_collection(args.input)
    statistics = compute_statistics(collection)
    for label, value in statistics.as_rows():
        print(f"{label:30s} {value}")
    return 0


def _cmd_count(args: argparse.Namespace) -> int:
    if args.maximal and args.closed:
        print("error: --maximal and --closed are mutually exclusive", file=sys.stderr)
        return 2
    if args.store_tau > 1 and args.tau != 1:
        # Residual capture needs the raw τ=1 counts: the algorithms prune
        # below --tau at emit time, so the sub-threshold keys the residual
        # table must hold would never reach the store build.
        print(
            "error: --store-tau > 1 requires --tau 1 (count everything, "
            "let the store build apply the threshold)",
            file=sys.stderr,
        )
        return 2
    collection = read_encoded_collection(args.input, materialize=args.materialize_corpus)
    config = NGramJobConfig(
        min_frequency=args.tau,
        max_length=args.sigma,
        count_document_frequency=args.document_frequency,
    )
    execution = _execution_from_args(args)
    if args.maximal:
        counter = MaximalNGramCounter(config, execution=execution)
    elif args.closed:
        counter = ClosedNGramCounter(config, execution=execution)
    else:
        counter = make_counter(args.algorithm, config, execution=execution)
    store = (
        StoreConfig(
            num_partitions=args.store_partitions,
            codec=args.store_codec,
            bloom_bits_per_key=args.store_bloom_bits,
            min_frequency=args.store_tau,
        )
        if args.store_dir is not None
        else None
    )
    result = counter.run(
        collection,
        track_memory=args.track_memory,
        store_dir=args.store_dir,
        store=store,
    )
    decoded = result.statistics.decoded(collection.vocabulary)

    peak = (
        f", peak_mem={result.peak_memory_bytes}"
        if result.peak_memory_bytes is not None
        else ""
    )
    print(
        f"{counter.name}: {len(decoded)} n-grams "
        f"(tau={args.tau}, sigma={args.sigma or 'inf'}, jobs={result.num_jobs}, "
        f"records={result.map_output_records}, bytes={result.map_output_bytes}{peak})"
    )
    for ngram, frequency in decoded.top(args.top):
        print(f"{frequency:10d}  {' '.join(ngram)}")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            for ngram, frequency in sorted(decoded.items(), key=lambda item: -item[1]):
                handle.write(f"{frequency}\t{' '.join(ngram)}\n")
        print(f"wrote {len(decoded)} n-grams to {args.output}")
    if args.export_json:
        payload = {
            "algorithm": counter.name,
            "tau": args.tau,
            "sigma": args.sigma,
            "num_ngrams": len(decoded),
            "num_jobs": result.num_jobs,
            "map_output_records": result.map_output_records,
            "map_output_bytes": result.map_output_bytes,
            "elapsed_seconds": result.elapsed_seconds,
            "peak_memory_bytes": result.peak_memory_bytes,
            "counters": result.counters.as_dict(),
        }
        parent = os.path.dirname(args.export_json)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(args.export_json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote measurements to {args.export_json}")
    if args.store_dir:
        from repro.ngramstore import load_manifest

        # Boundary sampling may dedup quantiles on skewed/small runs, so
        # report the partition count the build actually produced.
        manifest = load_manifest(args.store_dir)
        print(
            f"wrote n-gram store to {args.store_dir} "
            f"({manifest['num_partitions']} partitions, codec={args.store_codec})"
        )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.ngramstore.lsm import open_store_auto
    from repro.ngramstore.table import DEFAULT_CACHE_BLOCKS

    sources = sum(1 for source in (args.store, args.server, args.url) if source)
    if sources != 1:
        print(
            "error: pass exactly one of a store directory, --server or --url",
            file=sys.stderr,
        )
        return 2
    try:
        if args.server is not None:
            from repro.ngramstore.server import StoreClient

            host, _, port = args.server.rpartition(":")
            if not host or not port.isdigit():
                print(
                    f"error: --server expects HOST:PORT, got {args.server!r}",
                    file=sys.stderr,
                )
                return 2
            api = StoreClient(host, int(port), protocol=args.protocol)
        elif args.url is not None:
            from repro.ngramstore.http import HttpStoreClient

            api = HttpStoreClient(args.url)
        else:
            cache_blocks = (
                args.cache_blocks if args.cache_blocks is not None else DEFAULT_CACHE_BLOCKS
            )
            api = open_store_auto(args.store, cache_blocks=cache_blocks)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    # One code path for local stores and both remote transports: everything
    # below speaks StoreAPI.  With a persisted vocabulary the term-keyed
    # operations run wherever the dictionary lives (server-side for
    # remotes — clients never download it); --ids (or a vocabulary-less
    # store) falls back to raw keys.
    with api:
        try:
            stats = api.stats()
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        use_terms = (not args.ids) and bool(stats.get("has_vocabulary"))

        def encode(tokens: List[str]) -> tuple:
            try:
                return tuple(int(token) for token in tokens)
            except ValueError:
                # No vocabulary in the store: keys are whatever the counting
                # run used (surface strings for raw collections).
                return tuple(tokens)

        def render(ngram: tuple) -> str:
            return " ".join(str(term) for term in ngram)

        def render_value(value: object) -> str:
            # Stores hold counts in the common case, but build_store accepts
            # arbitrary values (e.g. time-series dicts) — print those as-is.
            if isinstance(value, int):
                return f"{value:10d}"
            return str(value)

        if args.stats:
            print(f"store          {stats['store_dir']}")
            print(f"n-grams        {stats['num_records']}")
            print(f"partitions     {stats['num_partitions']}")
            print(f"codec          {stats['codec']}")
            print(f"vocabulary     {'yes' if stats.get('has_vocabulary') else 'no'}")
            for key, value in sorted(stats.get("metadata", {}).items()):
                print(f"{key:14s} {value}")
            return 0
        try:
            if args.get is not None:
                tokens = args.get.split()
                if use_terms:
                    frequency = api.get_terms(tokens)
                    rendered = " ".join(tokens)
                else:
                    ngram = encode(tokens)
                    frequency = api.get(ngram)
                    rendered = render(ngram)
                if frequency is None:
                    print(f"not found: {args.get}")
                    return 1
                print(f"{render_value(frequency)}  {rendered}")
            elif args.prefix is not None:
                tokens = args.prefix.split()
                if use_terms:
                    records = api.prefix_terms(tokens, limit=args.limit)
                else:
                    records = api.prefix(encode(tokens), limit=args.limit)
                matches = 0
                for ngram, frequency in records:
                    print(f"{render_value(frequency)}  {render(ngram)}")
                    matches += 1
                print(f"{matches} n-grams with prefix {args.prefix!r}")
            else:
                if use_terms:
                    records = api.top_k_terms(args.top_k, order=args.order)
                else:
                    records = api.top_k(args.top_k, order=args.order)
                for ngram, frequency in records:
                    print(f"{render_value(frequency)}  {render(ngram)}")
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.config import ServerConfig
    from repro.ngramstore.http import NGramStoreHTTPServer
    from repro.ngramstore.reader import NGramStore
    from repro.ngramstore.router import ShardView
    from repro.ngramstore.server import NGramStoreServer
    from repro.ngramstore.table import BlockCache

    try:
        config = ServerConfig(
            host=args.host,
            port=args.port,
            cache_blocks=args.cache_blocks,
            max_clients=args.max_clients,
            protocol="http" if args.http else "socket",
            num_shards=args.num_shards,
            shard_index=args.shard_index,
            slow_query_ms=args.slow_query_ms,
            slow_query_log=args.slow_query_log,
            extra_store=args.extra_store,
        )
        if args.metrics_interval is not None:
            if args.metrics_interval <= 0:
                raise ReproError(
                    f"--metrics-interval must be positive, got {args.metrics_interval}"
                )
            if not args.metrics_file:
                raise ReproError("--metrics-interval requires --metrics-file")
        if config.num_shards > 1:
            from repro.ngramstore.lsm import is_lsm_dir

            if is_lsm_dir(args.store):
                # Range sharding slices one store's partition list; an LSM
                # directory has one list per generation, so there is no
                # single slice to own.  Compact --all first, then shard.
                raise ReproError(
                    f"{args.store!r} is an LSM store directory; range-sharded "
                    "serving needs a single-generation store — run "
                    "`repro compact --all` first"
                )
            # Sharded: open the store behind a shared cache and serve only
            # the owned slice of its partitions.
            cache = BlockCache(config.cache_blocks)
            target: object = ShardView(
                NGramStore.open(args.store, cache=cache),
                config.shard_index,
                config.num_shards,
            )
        else:
            target = args.store
        server_cls = NGramStoreHTTPServer if args.http else NGramStoreServer
        server = server_cls(target, config=config)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        host, port = server.start()
    except OSError as error:
        # Bind failures (port in use, privileged port) get the same clean
        # exit as every other failure mode of the command.
        print(f"error: cannot listen on {args.host}:{args.port}: {error}", file=sys.stderr)
        return 2
    shard_note = (
        f", shard={config.shard_index}/{config.num_shards}"
        if config.num_shards > 1
        else ""
    )
    print(
        f"serving {args.store} on {host}:{port} "
        f"({server.store.num_records} n-grams, {server.store.num_partitions} partitions, "
        f"cache={args.cache_blocks} blocks, max-clients={args.max_clients}, "
        f"protocol={config.protocol}{shard_note})",
        flush=True,
    )
    if args.ready_file:
        # The contents, not the file's existence, signal readiness: write to
        # a sibling then rename so pollers never read a half-written line.
        parent = os.path.dirname(args.ready_file)
        if parent:
            os.makedirs(parent, exist_ok=True)
        staging = args.ready_file + ".tmp"
        with open(staging, "w", encoding="utf-8") as handle:
            handle.write(f"{host} {port}\n")
        os.replace(staging, args.ready_file)

    stop = threading.Event()

    def _request_stop(signum, frame):  # noqa: ARG001 - signal handler shape
        stop.set()

    def _snapshot():
        metrics = server.metrics.snapshot()
        metrics["cache"] = server.cache_summary()
        return metrics

    def _write_metrics(metrics):
        # Atomic replace: a SIGTERM mid-write or a concurrent poller must
        # never leave/see a torn snapshot file.
        parent = os.path.dirname(args.metrics_file)
        if parent:
            os.makedirs(parent, exist_ok=True)
        staging = args.metrics_file + ".tmp"
        with open(staging, "w", encoding="utf-8") as handle:
            json.dump(metrics, handle, indent=2, sort_keys=True)
        os.replace(staging, args.metrics_file)

    if args.metrics_file and args.metrics_interval is not None:

        def _periodic_snapshots():
            while not stop.wait(args.metrics_interval):
                _write_metrics(_snapshot())

        threading.Thread(
            target=_periodic_snapshots, name="metrics-snapshots", daemon=True
        ).start()

    # Signal handlers only install on the main thread — which is where a
    # CLI entry point runs.  (In-process callers on other threads should
    # drive NGramStoreServer directly; this command has no other stop
    # hook.)  The KeyboardInterrupt catch covers a Ctrl-C landing in the
    # window before the SIGINT handler is installed.
    if threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGINT, _request_stop)
        signal.signal(signal.SIGTERM, _request_stop)
    try:
        try:
            stop.wait()
        except KeyboardInterrupt:
            pass
    finally:
        # The final snapshot must land even when shutdown is messy (a
        # second signal mid-close, a store that fails to close): snapshot
        # before close, write before re-raising anything.
        stop.set()
        metrics = _snapshot()
        if args.metrics_file:
            _write_metrics(metrics)
        server.close()
    print(json.dumps(metrics, indent=2, sort_keys=True))
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.ngramstore.loadgen import (
        MIXES,
        LoadgenConfig,
        SLOTargets,
        check_slos,
        run_loadgen,
    )

    targets = [args.store is not None, bool(args.connect), bool(args.url)]
    if sum(targets) != 1:
        print(
            "error: pick exactly one target: a store directory, --connect, or --url",
            file=sys.stderr,
        )
        return 2

    def parse_endpoint(endpoint: str) -> tuple:
        host, _, port = endpoint.rpartition(":")
        if not host or not port.isdigit():
            raise ReproError(f"--connect expects HOST:PORT, got {endpoint!r}")
        return host, int(port)

    try:
        config = LoadgenConfig(
            mixes=tuple(args.mixes.split(",")) if args.mixes else MIXES,
            requests_per_mix=args.requests,
            concurrency=args.concurrency,
            seed=args.seed,
            batch_size=args.batch_size,
            universe=args.universe,
            zipf_s=args.zipf_s,
        )
        if args.store is not None:
            from repro.ngramstore.lsm import open_store_auto

            # A direct store is safe to share across the worker threads.
            factory = None
            generator = open_store_auto(args.store)
            label = args.store
        else:
            if args.connect:
                from repro.ngramstore.server import StoreClient

                endpoints = [parse_endpoint(endpoint) for endpoint in args.connect]
                builders = [
                    (lambda host=host, port=port: StoreClient(host, port))
                    for host, port in endpoints
                ]
                label = ",".join(f"{host}:{port}" for host, port in endpoints)
            else:
                from repro.ngramstore.http import HttpStoreClient

                builders = [(lambda url=url: HttpStoreClient(url)) for url in args.url]
                label = ",".join(args.url)
            if len(builders) == 1:
                factory = builders[0]
            elif args.topology == "replicas":
                from repro.ngramstore.router import ReplicaPool

                def factory():
                    return ReplicaPool([build() for build in builders])

            elif args.topology == "sharded":
                from repro.ngramstore.router import ShardRouter

                def factory():
                    return ShardRouter([build() for build in builders])

            else:
                print(
                    "error: multiple endpoints need --topology replicas or sharded",
                    file=sys.stderr,
                )
                return 2
            label = f"{args.topology}({label})" if len(builders) > 1 else label
            generator = factory()
        try:
            report = run_loadgen(generator, config, factory=factory, target=label)
        finally:
            generator.close()
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    slo = SLOTargets(
        p50_ms=args.slo_p50_ms,
        p95_ms=args.slo_p95_ms,
        p99_ms=args.slo_p99_ms,
        min_throughput=args.slo_min_throughput,
    )
    violations = check_slos(report, slo)
    report["slo"] = {
        "p50_ms": slo.p50_ms,
        "p95_ms": slo.p95_ms,
        "p99_ms": slo.p99_ms,
        "min_throughput": slo.min_throughput,
    }
    report["slo_violations"] = violations
    report["ok"] = not violations
    if args.report:
        parent = os.path.dirname(args.report)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
    print(json.dumps(report, indent=2, sort_keys=True))
    if violations:
        for violation in violations:
            print(f"SLO violation: {violation}", file=sys.stderr)
        return 1
    return 0


def _cmd_merge_stores(args: argparse.Namespace) -> int:
    from repro.ngramstore import NGramStore
    from repro.ngramstore.merge import merge_stores

    try:
        merge_stores(
            args.inputs,
            args.output,
            store=_store_config_from_args(args),
            min_frequency=args.tau,
            allow_lower_bound=args.allow_lower_bound,
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    with NGramStore.open(args.output) as merged:
        residual = merged.manifest.get("residual")
        residual_note = (
            f", residual={residual['num_records']} sub-τ records"
            if residual
            else ""
        )
        print(
            f"merged {len(args.inputs)} stores into {args.output} "
            f"({merged.num_records} n-grams, {merged.num_partitions} partitions, "
            f"codec={args.codec}{residual_note})"
        )
    return 0


def _cmd_rethreshold(args: argparse.Namespace) -> int:
    from repro.ngramstore import NGramStore
    from repro.ngramstore.merge import merge_stores

    try:
        merge_stores(
            [args.store],
            args.output,
            store=_store_config_from_args(args),
            min_frequency=args.tau,
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    with NGramStore.open(args.output) as result:
        residual = result.manifest.get("residual")
        residual_note = (
            f", residual={residual['num_records']} sub-τ records" if residual else ""
        )
        print(
            f"rethresholded {args.store} at tau={args.tau} into {args.output} "
            f"({result.num_records} n-grams, {result.num_partitions} partitions"
            f"{residual_note})"
        )
    return 0


def _analytics_totals(store_a, store_b):
    """Both stores' corpus sizes for ratio mode, loudly when unavailable."""
    totals = []
    for store in (store_a, store_b):
        total = store.metadata.get("unigram_total")
        if not isinstance(total, int) or isinstance(total, bool) or total <= 0:
            raise ReproError(
                f"--mode ratio needs the corpus size, but {store.store_dir!r} "
                "carries no unigram_total metadata (stores written by "
                "count --store-dir do)"
            )
        totals.append(total)
    return tuple(totals)


def _cmd_analytics(args: argparse.Namespace) -> int:
    from itertools import islice

    from repro.ngramstore import NGramStore
    from repro.ngramstore.analytics import (
        diff_records,
        diff_stores,
        intersect_records,
        intersect_stores,
    )

    kind = "diff" if args.command == "diff-stores" else "intersect"
    if args.output is not None and args.mode == "ratio":
        print(
            "error: --mode ratio prints a normalised report; a store holds "
            "counts — drop --output or --mode ratio",
            file=sys.stderr,
        )
        return 2
    if args.limit is not None and args.limit < 0:
        print(f"error: --limit must be >= 0, got {args.limit}", file=sys.stderr)
        return 2
    try:
        if args.output is not None:
            write = diff_stores if kind == "diff" else intersect_stores
            write(
                args.store_a,
                args.store_b,
                args.output,
                store=_store_config_from_args(args),
                min_frequency=args.min_frequency,
                allow_thresholded=args.allow_thresholded,
            )
            with NGramStore.open(args.output) as result:
                print(
                    f"wrote {kind} of {args.store_a} vs {args.store_b} to "
                    f"{args.output} ({result.num_records} n-grams, "
                    f"{result.num_partitions} partitions, codec={args.codec})"
                )
            return 0
        stream = diff_records if kind == "diff" else intersect_records
        with NGramStore.open(args.store_a) as store_a, NGramStore.open(
            args.store_b
        ) as store_b:
            totals = (
                _analytics_totals(store_a, store_b) if args.mode == "ratio" else None
            )
            surface = store_a.vocabulary is not None and not args.ids
            records = stream(
                store_a,
                store_b,
                min_frequency=args.min_frequency,
                allow_thresholded=args.allow_thresholded,
            )
            if args.limit is not None:
                records = islice(records, args.limit)
            printed = 0
            for key, value in records:
                rendered = (
                    " ".join(store_a.render_ngrams([key])[0])
                    if surface
                    else " ".join(str(token) for token in key)
                )
                if kind == "diff":
                    count_a = value
                    cells = (
                        f"{count_a}"
                        if totals is None
                        else f"{count_a / totals[0]:.3e}"
                    )
                else:
                    count_a, count_b = value
                    if totals is None:
                        cells = f"{count_a}\t{count_b}"
                    else:
                        relative_a = count_a / totals[0]
                        relative_b = count_b / totals[1]
                        cells = f"{relative_a / relative_b:.6f}"
                print(f"{cells}\t{rendered}")
                printed += 1
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Streaming into a closed pipe (e.g. `| head`) is a normal way to
        # consume these reports; exit quietly with the conventional status.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141
    print(f"{printed} {kind} records", file=sys.stderr)
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.ngramstore.lsm import LSMStore

    try:
        execution = _execution_from_args(args)
        if args.init:
            store = LSMStore.init(
                args.store,
                min_frequency=args.tau,
                max_length=args.sigma,
                algorithm=args.algorithm,
                store=StoreConfig(
                    num_partitions=args.store_partitions,
                    codec=args.store_codec,
                    bloom_bits_per_key=args.store_bloom_bits,
                ),
            )
            print(f"initialised LSM store at {args.store} (tau={store.min_frequency})")
        else:
            store = LSMStore.open(args.store)
        collection = read_encoded_collection(args.input)
        entry = store.ingest(collection, source=args.input, execution=execution)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(
        f"ingested {args.input} as generation {entry['name']} "
        f"({entry['num_records']} records, "
        f"{len(store.generations)} live generations)"
    )
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    from repro.ngramstore.lsm import DEFAULT_MIN_TIER, DEFAULT_TIER_RATIO, LSMStore

    tier_ratio = args.tier_ratio if args.tier_ratio is not None else DEFAULT_TIER_RATIO
    min_tier = args.min_tier if args.min_tier is not None else DEFAULT_MIN_TIER
    try:
        store = LSMStore.open(args.store)
        stats = store.compact(
            all_generations=args.all_generations,
            tier_ratio=tier_ratio,
            min_tier=min_tier,
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if stats is None:
        print(
            f"nothing to compact in {args.store} "
            f"({len(store.generations)} generations)"
        )
        return 0
    if args.stats_json:
        parent = os.path.dirname(args.stats_json)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(args.stats_json, "w", encoding="utf-8") as handle:
            json.dump(stats, handle, indent=2, sort_keys=True)
    print(json.dumps(stats, indent=2, sort_keys=True))
    return 0


def _export_measurements(measurements, path: Optional[str]) -> None:
    if not path:
        return
    from repro.harness.export import write_measurements_csv

    write_measurements_csv(measurements, path)
    print(f"wrote {len(list(measurements))} measurements to {path}")


def _parse_fractions(text: Optional[str]):
    if not text:
        return None
    try:
        fractions = tuple(float(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise SystemExit(f"error: invalid --fractions value {text!r}")
    if not fractions or any(not 0 < fraction <= 1 for fraction in fractions):
        raise SystemExit("error: --fractions must be in (0, 1]")
    return fractions


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.harness.datasets import default_datasets
    from repro.harness.experiment import ExperimentRunner

    datasets = default_datasets(scale=args.scale)
    execution = _execution_from_args(args)
    if execution is not None and args.name in ("table1", "extensions"):
        # table1 launches no MapReduce jobs; the extensions overview includes
        # the time-series counter, whose mapper closure cannot cross a
        # process boundary.  Fail loudly instead of silently ignoring flags.
        raise SystemExit(
            "error: --runner/--workers/--spill-threshold/--materialize are "
            f"not supported for {args.name}"
        )
    runner = ExperimentRunner(execution=execution, track_memory=args.track_memory)
    fractions = _parse_fractions(args.fractions)
    exported: List = []
    if args.name == "table1":
        for name, statistics in figures.table1_dataset_characteristics(datasets).items():
            print(f"== {name} ==")
            for label, value in statistics.as_rows():
                print(f"{label:30s} {value}")
    elif args.name == "fig2":
        for name, histogram in figures.figure2_output_characteristics(
            datasets, execution=execution
        ).items():
            print(f"== {name} ==")
            print(format_histogram(histogram))
    elif args.name == "fig3":
        result = figures.figure3_use_cases(datasets, runner=runner)
        print("== language model use case (sigma=5) ==")
        for name, measurements in result.language_model.items():
            print(format_measurements(measurements))
            exported.extend(measurements)
        print("== analytics use case (sigma=100) ==")
        for name, measurements in result.analytics.items():
            print(format_measurements(measurements))
            exported.extend(measurements)
    elif args.name in ("fig4", "fig5", "fig6", "fig7"):
        if args.name == "fig4":
            sweeps = figures.figure4_vary_tau(datasets, runner=runner)
        elif args.name == "fig5":
            sweeps = figures.figure5_vary_sigma(datasets, runner=runner)
        elif args.name == "fig6":
            sweeps = figures.figure6_scale_datasets(
                datasets,
                runner=runner,
                fractions=fractions if fractions is not None else figures.DATASET_FRACTIONS,
            )
        else:
            sweeps = figures.figure7_scale_slots(datasets, execution=execution)
        for name, sweep in sweeps.items():
            print(f"== {name} ==")
            print(format_sweep(sweep, metric="simulated_s", parameter_label="method"))
            print(format_sweep(sweep, metric="records", parameter_label="method"))
            for measurements in sweep.values():
                exported.extend(measurements)
    elif args.name == "extensions":
        result = figures.extensions_overview(datasets)
        rows = [
            {
                "dataset": name,
                "all": result.all_ngrams[name],
                "closed": result.closed_ngrams[name],
                "maximal": result.maximal_ngrams[name],
            }
            for name in result.all_ngrams
        ]
        print(format_table(rows))
    elif args.name == "ablations":
        measurements = figures.ablation_implementation_choices(datasets[0], execution=execution)
        print(format_measurements(measurements))
        exported.extend(measurements)
    if getattr(args, "export", None) and exported:
        _export_measurements(exported, args.export)
    if getattr(args, "export_json", None) and exported:
        from repro.harness.export import write_measurements_json

        write_measurements_json(exported, args.export_json)
        print(f"wrote {len(exported)} measurements to {args.export_json}")
    return 0


def _cmd_coderivatives(args: argparse.Namespace) -> int:
    from repro.applications.coderivatives import find_coderivative_pairs

    # Co-derivative mining accesses documents repeatedly; decode the corpus
    # once instead of re-reading shards per lookup.
    collection = read_encoded_collection(args.input, materialize=True)
    pairs = find_coderivative_pairs(
        collection, min_shared_length=args.min_length, max_pairs=args.top
    )
    if not pairs:
        print("no co-derivative document pairs found")
        return 0
    rows = [
        {
            "left": pair.left_doc_id,
            "right": pair.right_doc_id,
            "longest shared n-gram": pair.longest_shared_length,
            "shared n-grams": pair.shared_ngrams,
            "shared tokens": pair.shared_tokens,
        }
        for pair in pairs
    ]
    print(format_table(rows))
    return 0


def _cmd_trends(args: argparse.Namespace) -> int:
    from repro.algorithms.extensions import SuffixSigmaTimeSeriesCounter
    from repro.applications.culturomics import trend_report, yearly_token_totals

    # The trend report iterates the collection twice (counting run, then
    # yearly totals); decode it once instead of re-reading shards per pass.
    collection = read_encoded_collection(args.input, materialize=True)
    config = NGramJobConfig(min_frequency=args.tau, max_length=args.sigma)
    counter = SuffixSigmaTimeSeriesCounter(config)
    counter.run(collection)
    totals = yearly_token_totals(collection)
    reports = trend_report(counter.time_series, yearly_totals=totals or None, min_total=args.tau)

    def describe(report) -> dict:
        surface = " ".join(collection.vocabulary.term(term_id) for term_id in report.ngram)
        return {
            "n-gram": surface,
            "total": report.total,
            "peak": report.peak,
            "slope": round(report.slope, 6),
        }

    print("== rising n-grams ==")
    print(format_table([describe(report) for report in reports[: args.top]]))
    print("== declining n-grams ==")
    print(format_table([describe(report) for report in reports[-args.top :][::-1]]))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro-ngrams`` command."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "stats": _cmd_stats,
        "count": _cmd_count,
        "experiment": _cmd_experiment,
        "query": _cmd_query,
        "serve": _cmd_serve,
        "loadgen": _cmd_loadgen,
        "merge-stores": _cmd_merge_stores,
        "rethreshold": _cmd_rethreshold,
        "diff-stores": _cmd_analytics,
        "intersect-stores": _cmd_analytics,
        "ingest": _cmd_ingest,
        "compact": _cmd_compact,
        "coderivatives": _cmd_coderivatives,
        "trends": _cmd_trends,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
