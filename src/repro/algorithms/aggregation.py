"""Aggregation strategies for the SUFFIX-σ reducer.

Algorithm 4 aggregates plain occurrence counts on its ``counts`` stack.
Section VI.B observes that the same lazy stack-based aggregation works for
any associative, commutative combination of per-suffix contributions — the
paper's example is n-gram *time series* (counts per publication year), and
it also mentions inverted-index style aggregations and document frequencies.

A strategy defines what one stack element is, how per-suffix contributions
are created from the reducer's value list, how a popped child element is
folded into its parent, which scalar magnitude is compared against τ, and
what value is finally emitted.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Optional, Sequence, Tuple


class SuffixAggregation:
    """Strategy interface for the SUFFIX-σ reducer's second stack."""

    def empty(self) -> Any:
        """The neutral element pushed for interior stack positions."""
        raise NotImplementedError

    def from_values(self, values: Sequence[Any]) -> Any:
        """Element representing the contribution of one suffix's value list."""
        raise NotImplementedError

    def merge(self, parent: Any, child: Any) -> Any:
        """Fold a popped child element into its parent element."""
        raise NotImplementedError

    def magnitude(self, element: Any) -> int:
        """Scalar compared against the minimum collection frequency τ."""
        raise NotImplementedError

    def output_value(self, element: Any) -> Any:
        """The value emitted alongside the n-gram."""
        raise NotImplementedError


class CountAggregation(SuffixAggregation):
    """Plain occurrence counting — the ``counts`` stack of Algorithm 4."""

    def empty(self) -> int:
        return 0

    def from_values(self, values: Sequence[Any]) -> int:
        return len(values)

    def merge(self, parent: int, child: int) -> int:
        return parent + child

    def magnitude(self, element: int) -> int:
        return element

    def output_value(self, element: int) -> int:
        return element


class DistinctDocumentAggregation(SuffixAggregation):
    """Document-frequency counting: values are document identifiers."""

    def empty(self) -> set:
        return set()

    def from_values(self, values: Sequence[Any]) -> set:
        return set(values)

    def merge(self, parent: set, child: set) -> set:
        if not parent:
            return set(child)
        parent.update(child)
        return parent

    def magnitude(self, element: set) -> int:
        return len(element)

    def output_value(self, element: set) -> int:
        return len(element)


class TimeSeriesAggregation(SuffixAggregation):
    """n-gram time series: values are ``(doc_id, timestamp)`` pairs.

    The magnitude compared against τ is the total number of occurrences
    (documents without a timestamp still count towards the total but do not
    contribute an observation).
    """

    def empty(self) -> Tuple[int, Counter]:
        return (0, Counter())

    def from_values(self, values: Sequence[Tuple[int, Optional[int]]]) -> Tuple[int, Counter]:
        observations: Counter = Counter()
        for _, timestamp in values:
            if timestamp is not None:
                observations[timestamp] += 1
        return (len(values), observations)

    def merge(self, parent: Tuple[int, Counter], child: Tuple[int, Counter]) -> Tuple[int, Counter]:
        total = parent[0] + child[0]
        observations = parent[1]
        observations.update(child[1])
        return (total, observations)

    def magnitude(self, element: Tuple[int, Counter]) -> int:
        return element[0]

    def output_value(self, element: Tuple[int, Counter]) -> Tuple[int, dict]:
        return (element[0], dict(element[1]))


class DocumentPostingAggregation(SuffixAggregation):
    """Inverted-index style aggregation: per-document occurrence counts.

    Values are document identifiers; the emitted value maps each document to
    the number of occurrences of the n-gram in it ("how often ... it occurs
    in individual documents", Section VI.B).
    """

    def empty(self) -> Counter:
        return Counter()

    def from_values(self, values: Sequence[int]) -> Counter:
        return Counter(values)

    def merge(self, parent: Counter, child: Counter) -> Counter:
        if not parent:
            return Counter(child)
        parent.update(child)
        return parent

    def magnitude(self, element: Counter) -> int:
        return sum(element.values())

    def output_value(self, element: Counter) -> dict:
        return dict(element)
