"""NAIVE n-gram counting (Algorithm 1 of the paper).

Word counting extended to variable-length n-grams: the mapper emits *every*
n-gram of length ≤ σ contained in the document (once per occurrence); the
reducer counts occurrences and keeps those reaching τ.  This is essentially
the method Brants et al. used at Google for training large language models.

Its weakness, analysed in Section III.A, is the sheer volume of intermediate
data: per document ``d`` it emits ``O(|d|·σ)`` records totalling
``Σ_{|s| ≤ σ} cf(s)`` key-value pairs over the collection — all of which
must be transferred and sorted by the framework.

Two practical refinements from Section V are supported:

* local pre-aggregation with a combiner (``config.use_combiner``); the
  mapper then emits partial counts instead of document identifiers;
* document splitting at infrequent terms (``config.split_documents``).
"""

from __future__ import annotations

from functools import partial
from typing import Any, Optional, Tuple

from repro.algorithms.base import NGramCounter, SupportsRecords
from repro.algorithms.common import CountSumCombiner, FrequencyReducer
from repro.config import ExecutionConfig, NGramJobConfig
from repro.mapreduce.job import JobSpec, Mapper, TaskContext
from repro.mapreduce.pipeline import JobPipeline
from repro.ngrams.statistics import NGramStatistics


class NaiveMapper(Mapper):
    """Emits every n-gram of length ≤ σ, once per occurrence."""

    def __init__(self, max_length: Optional[int], emit_partial_counts: bool) -> None:
        self.max_length = max_length
        self.emit_partial_counts = emit_partial_counts

    def map(self, key: Any, value: Tuple, context: TaskContext) -> None:
        doc_id = key[0] if isinstance(key, tuple) else key
        sequence = value
        n = len(sequence)
        # Input sequences are tuples, so a slice already is one — no copy.
        for begin in range(n):
            end_limit = n if self.max_length is None else min(begin + self.max_length, n)
            for end in range(begin + 1, end_limit + 1):
                ngram = sequence[begin:end]
                if self.emit_partial_counts:
                    context.emit(ngram, 1)
                else:
                    context.emit(ngram, doc_id)


class NaiveCounter(NGramCounter):
    """The NAIVE baseline (Algorithm 1)."""

    name = "NAIVE"

    def __init__(
        self,
        config: NGramJobConfig,
        num_map_tasks: int = 4,
        execution: Optional[ExecutionConfig] = None,
    ) -> None:
        super().__init__(config, num_map_tasks=num_map_tasks, execution=execution)

    def _job_spec(self) -> JobSpec:
        config = self.config
        emit_partial_counts = config.use_combiner and not config.count_document_frequency
        # functools.partial (not a lambda) keeps the factories picklable for
        # the process-based runner.
        return JobSpec(
            name="naive",
            mapper_factory=partial(NaiveMapper, config.max_length, emit_partial_counts),
            reducer_factory=partial(
                FrequencyReducer,
                config.min_frequency,
                values_are_counts=emit_partial_counts,
                document_frequency=config.count_document_frequency,
            ),
            combiner_factory=CountSumCombiner if emit_partial_counts else None,
            num_reducers=config.num_reducers,
            num_map_tasks=self.num_map_tasks,
        )

    def _execute(
        self,
        records: Any,
        pipeline: JobPipeline,
        collection: SupportsRecords,
    ) -> NGramStatistics:
        result = pipeline.run_job(self._job_spec(), records)
        return NGramStatistics.from_pairs(result.iter_output())
