"""Mapper/reducer building blocks shared by several algorithms.

NAIVE and APRIORI-SCAN both end with the same reduce step: count the values
received for an n-gram and emit the n-gram when the count reaches τ
(Algorithms 1 and 2 share their reducer verbatim in the paper).  The classes
here implement that reducer in its three flavours — plain occurrence
counting, pre-aggregated partial counts (when a combiner is used) and
document frequency — plus the combiner itself.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.mapreduce.job import Combiner, Reducer, TaskContext


class FrequencyReducer(Reducer):
    """Counts values per n-gram and emits the n-gram when the count ≥ τ."""

    def __init__(
        self,
        min_frequency: int,
        values_are_counts: bool = False,
        document_frequency: bool = False,
    ) -> None:
        self.min_frequency = min_frequency
        self.values_are_counts = values_are_counts
        self.document_frequency = document_frequency

    def reduce(self, key: Any, values: Iterable[Any], context: TaskContext) -> None:
        values = list(values)
        if self.document_frequency:
            frequency = len(set(values))
        elif self.values_are_counts:
            frequency = sum(values)
        else:
            frequency = len(values)
        if frequency >= self.min_frequency:
            context.emit(key, frequency)


class CountSumCombiner(Combiner):
    """Map-side pre-aggregation: sums partial counts per n-gram.

    Only applicable when the mapper emits partial counts (integer ``1``\\ s)
    rather than document identifiers; the reducer must then be configured
    with ``values_are_counts=True``.
    """

    def reduce(self, key: Any, values: Iterable[Any], context: TaskContext) -> None:
        context.emit(key, sum(values))
