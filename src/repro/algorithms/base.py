"""Shared infrastructure of the four n-gram counting algorithms.

Every algorithm is an :class:`NGramCounter`: it streams input records from a
document collection (optionally applying the document-splitting optimisation
of Section V), materialises them once under the execution configuration's
policy — an in-memory list or a sharded on-disk
:class:`~repro.mapreduce.dataset.FileDataset` — runs one or more MapReduce
jobs through a :class:`~repro.mapreduce.pipeline.JobPipeline`, and returns a
:class:`CountingResult` bundling the computed statistics with the measured
counters and per-job metrics — the exact quantities the paper's experiments
report (wallclock, bytes transferred, number of records).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, List, Optional, Tuple

from repro.algorithms.doc_split import split_sequence_at_infrequent_terms, unigram_frequencies
from repro.config import ClusterConfig, ExecutionConfig, NGramJobConfig, StoreConfig
from repro.exceptions import ConfigurationError
from repro.mapreduce.backends import make_runner
from repro.mapreduce.cluster import ClusterCostModel
from repro.mapreduce.counters import Counters
from repro.mapreduce.dataset import Dataset
from repro.mapreduce.pipeline import JobPipeline, PipelineResult
from repro.ngrams.statistics import NGramStatistics
from repro.util.memory import PeakMemoryTracker
from repro.util.timer import Timer

Record = Tuple[Any, Tuple]


class SupportsRecords:
    """Structural protocol for algorithm inputs (anything with ``records()``)."""

    def records(self) -> Iterable[Record]:  # pragma: no cover - interface only
        raise NotImplementedError


@dataclass
class CountingResult:
    """Outcome of one algorithm run.

    Attributes
    ----------
    algorithm:
        Canonical algorithm name (``"NAIVE"``, ``"APRIORI-SCAN"``, ...).
    config:
        The :class:`~repro.config.NGramJobConfig` the run used.
    statistics:
        The computed n-gram statistics (collection or document frequencies).
    pipeline:
        Per-job results: counters, metrics and outputs of every MapReduce job
        the method launched.
    elapsed_seconds:
        Measured in-process wallclock of the whole computation.
    peak_memory_bytes:
        High-water mark of Python-level allocations during the run
        (``None`` unless the run was started with ``track_memory=True``).
    store_dir:
        Directory the run's statistics were persisted to as a queryable
        n-gram store (``None`` unless the run was given a ``store_dir``).
    """

    algorithm: str
    config: NGramJobConfig
    statistics: NGramStatistics
    pipeline: PipelineResult
    elapsed_seconds: float
    peak_memory_bytes: Optional[int] = None
    store_dir: Optional[str] = None

    @property
    def counters(self) -> Counters:
        """Counters aggregated over every job the method launched."""
        return self.pipeline.counters

    @property
    def num_jobs(self) -> int:
        """Number of MapReduce jobs launched (1 for NAIVE and SUFFIX-σ)."""
        return self.pipeline.num_jobs

    @property
    def map_output_records(self) -> int:
        """The paper's "# records" measure (aggregated over all jobs)."""
        return self.counters.map_output_records

    @property
    def map_output_bytes(self) -> int:
        """The paper's "bytes transferred" measure (aggregated over all jobs)."""
        return self.counters.map_output_bytes

    def simulated_wallclock(self, cluster: ClusterConfig) -> float:
        """Simulated cluster wallclock under ``cluster`` (Figure 6/7 metric)."""
        model = ClusterCostModel(cluster)
        return model.estimate_pipeline(self.pipeline.job_metrics)


class NGramCounter:
    """Abstract base class of the four counting algorithms.

    ``execution`` selects the MapReduce backend the counter's pipelines run
    on (sequential, thread pool or process pool, plus the shuffle's spill
    budget and the dataset materialisation mode); ``None`` is the
    sequential in-memory default.
    """

    #: Canonical name used in reports; subclasses override.
    name: str = "ABSTRACT"

    def __init__(
        self,
        config: NGramJobConfig,
        num_map_tasks: int = 4,
        execution: Optional[ExecutionConfig] = None,
    ) -> None:
        if num_map_tasks < 1:
            raise ConfigurationError("num_map_tasks must be >= 1")
        self.config = config
        self.num_map_tasks = num_map_tasks
        self.execution = execution

    # ------------------------------------------------------------ plumbing
    def iter_input_records(self, collection: SupportsRecords) -> Iterator[Record]:
        """Stream input records, applying document splitting if enabled.

        The collection yields ``(doc_id, term_sequence)`` pairs, one per
        sentence (sentence boundaries are n-gram barriers).  With
        ``config.split_documents`` the sequences are additionally split at
        terms occurring fewer than τ times (this costs one extra streaming
        pass over the collection for the unigram frequencies).  The yielded
        records are keyed by ``(doc_id, sequence_index)`` so that every
        input sequence has a globally unique identifier — APRIORI-INDEX
        needs this to keep positions from different sentences of the same
        document apart.

        Nothing is materialised here: the pipeline decides whether the
        stream ends up as an in-memory list or a sharded on-disk dataset.
        """
        if self.config.split_documents:
            frequencies = unigram_frequencies(collection.records())
            frequent_terms = {
                term
                for term, count in frequencies.items()
                if count >= self.config.min_frequency
            }

            def stream() -> Iterator[Tuple[Any, Tuple]]:
                for doc_id, sequence in collection.records():
                    for fragment in split_sequence_at_infrequent_terms(
                        sequence, frequent_terms
                    ):
                        yield doc_id, fragment

            source: Iterable[Tuple[Any, Tuple]] = stream()
        else:
            source = collection.records()
        for sequence_index, (doc_id, sequence) in enumerate(source):
            yield (doc_id, sequence_index), tuple(sequence)

    def prepare_records(self, collection: SupportsRecords) -> List[Record]:
        """Materialise the input records (compatibility helper for callers
        that want a plain list; the engine itself streams through
        :meth:`iter_input_records`)."""
        return list(self.iter_input_records(collection))

    def _new_pipeline(self) -> JobPipeline:
        if self.execution is None:
            return JobPipeline(default_map_tasks=self.num_map_tasks)
        runner = make_runner(self.execution, default_map_tasks=self.num_map_tasks)
        return JobPipeline(runner=runner, retention=self.execution.retention)

    # ----------------------------------------------------------------- API
    def run(
        self,
        collection: SupportsRecords,
        track_memory: bool = False,
        store_dir: Optional[str] = None,
        store: Optional[StoreConfig] = None,
    ) -> CountingResult:
        """Run the algorithm over ``collection`` and return its result.

        With ``track_memory`` the run is wrapped in a
        :class:`~repro.util.memory.PeakMemoryTracker` and the traced peak
        lands on :attr:`CountingResult.peak_memory_bytes`.  With
        ``store_dir`` the computed statistics are additionally persisted as
        a queryable on-disk n-gram store (see :mod:`repro.ngramstore`),
        configured by ``store`` and built under this counter's execution
        configuration.
        """
        pipeline = self._new_pipeline()
        tracker = PeakMemoryTracker() if track_memory else None
        if tracker is not None:
            tracker.start()
        try:
            with Timer() as timer:
                dataset = pipeline.materialize_input(
                    self.iter_input_records(collection), name=f"{self.name.lower()}-input"
                )
                statistics = self._execute(dataset, pipeline, collection)
                # The statistics are collected; drop the materialised input
                # (in disk mode this deletes the on-disk corpus copy) rather
                # than letting it live as long as the result objects.
                dataset.release()
        finally:
            peak = tracker.stop() if tracker is not None else None
        # Persist outside both the timer and the tracker: the measured
        # wallclock and peak stay exactly what the counting run produced.
        if store_dir is not None:
            self._persist_store(statistics, store_dir, collection, store)
        return CountingResult(
            algorithm=self.name,
            config=self.config,
            statistics=statistics,
            pipeline=pipeline.result,
            elapsed_seconds=timer.elapsed,
            peak_memory_bytes=peak,
            store_dir=store_dir,
        )

    def _persist_store(
        self,
        statistics: NGramStatistics,
        store_dir: str,
        collection: SupportsRecords,
        store: Optional[StoreConfig],
    ) -> str:
        """Persist ``statistics`` as an n-gram store under ``store_dir``.

        The total-order-sort build job runs in a *separate* pipeline (same
        execution configuration) so the counting run's measured counters
        and metrics — the quantities the paper's experiments report — stay
        exactly what the counting jobs produced.
        """
        from repro.ngramstore.build import build_store

        if store is not None and store.min_frequency > 1 and self.config.min_frequency != 1:
            # The algorithms prune below τ at emit time, so a counting run
            # with min_frequency > 1 never produces the [1, τ) counts the
            # residual sidecar must hold — the split belongs to the store
            # build (count at τ=1, threshold at persist).
            raise ConfigurationError(
                f"store min_frequency={store.min_frequency} needs the raw τ=1 "
                f"count table, but the counting run filters at "
                f"min_frequency={self.config.min_frequency}; count with "
                "min_frequency=1 and let the store build apply the threshold"
            )

        vocabulary = getattr(collection, "vocabulary", None)
        # Unigram aggregates are recorded in the manifest so store-backed
        # language models construct without scanning the store.
        unigram_total = 0
        vocabulary_size = 0
        for ngram, count in statistics.items():
            if len(ngram) == 1:
                unigram_total += count
                vocabulary_size += 1
        return build_store(
            statistics.items(),
            store_dir,
            store=store,
            execution=self.execution,
            metadata={
                "algorithm": self.name,
                "min_frequency": self.config.min_frequency,
                "max_length": self.config.max_length,
                "num_ngrams": len(statistics),
                "unigram_total": unigram_total,
                "vocabulary_size": vocabulary_size,
            },
            vocabulary=vocabulary,
            name=self.name.lower(),
        )

    # ------------------------------------------------------------ subclass
    def _execute(
        self,
        records: Dataset,
        pipeline: JobPipeline,
        collection: SupportsRecords,
    ) -> NGramStatistics:
        """Run the algorithm's MapReduce job(s); return the statistics.

        ``records`` is the materialised input dataset; implementations pass
        it (or a previous job's ``output_dataset``) to ``pipeline.run_job``,
        which streams it split by split.  Plain record lists are accepted
        too, for direct calls from tests.
        """
        raise NotImplementedError
