"""SUFFIX-σ — the paper's contribution (Algorithm 4).

The method needs a single MapReduce job:

* The **mapper** emits, for every position of an input sequence, the suffix
  starting there, truncated to σ terms, with the document identifier as the
  value.  A sequence of ``n`` terms therefore yields only ``n`` records (the
  NAIVE method emits up to ``n·σ``).
* The **partitioner** assigns suffixes to reducers by their *first term
  only*, so one reducer sees every suffix that can contribute to the
  collection frequency of any n-gram starting with that term.
* The **sort comparator** orders suffixes in *reverse lexicographic* order
  (larger terms first; a longer sequence before its proper prefixes).  This
  guarantees that when the reducer processes suffix ``s``, every n-gram that
  is not a prefix of ``s`` can never gain further occurrences — so it can be
  emitted immediately and forgotten.
* The **reducer** maintains two synchronised stacks — the terms of the
  current suffix and one aggregation element per prefix — and lazily pushes
  counts upward as prefixes are popped, emitting every n-gram whose count
  reaches τ exactly once.

The reducer's aggregation is pluggable (see
:mod:`repro.algorithms.aggregation`), which is how the extensions of Section
VI — document frequencies, n-gram time series, per-document postings — reuse
the same job structure.  The maximality/closedness extension (Section VI.A)
adds an emission filter plus a second, reversed post-filtering job and is
implemented in :mod:`repro.algorithms.extensions.maximal`.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from repro.algorithms.aggregation import CountAggregation, SuffixAggregation
from repro.algorithms.base import NGramCounter, SupportsRecords
from repro.config import ExecutionConfig, NGramJobConfig
from repro.mapreduce.job import JobSpec, Mapper, Partitioner, Reducer, TaskContext
from repro.mapreduce.pipeline import JobPipeline
from repro.ngrams.ordering import ReverseLexicographicOrder
from repro.ngrams.sequence import is_prefix, longest_common_prefix
from repro.ngrams.statistics import NGramStatistics
from repro.util.hashing import stable_hash


class SuffixMapper(Mapper):
    """Emits every suffix of the input sequence, truncated to σ terms.

    ``value_function`` maps ``(doc_id, key)`` to the emitted value; the
    default emits the document identifier, as in Algorithm 4.
    """

    def __init__(
        self,
        max_length: Optional[int],
        value_function: Optional[Callable[[Any], Any]] = None,
    ) -> None:
        self.max_length = max_length
        self.value_function = value_function

    def map(self, key: Any, value: Tuple, context: TaskContext) -> None:
        doc_id = key[0] if isinstance(key, tuple) else key
        emitted_value = doc_id if self.value_function is None else self.value_function(doc_id)
        sequence = value
        n = len(sequence)
        # Input sequences are tuples, so a slice already is one — no copy.
        for begin in range(n):
            end = n if self.max_length is None else min(begin + self.max_length, n)
            context.emit(sequence[begin:end], emitted_value)


class FirstTermPartitioner(Partitioner):
    """Partitions suffixes by their first term only (Algorithm 4's ``partition``)."""

    def partition(self, key: Sequence, num_partitions: int) -> int:
        if len(key) == 0:
            return 0
        return stable_hash(key[0]) % num_partitions


class PrefixEmissionFilter:
    """Emission filter implementing prefix-maximality / prefix-closedness.

    Section VI.A: with suffixes processed in reverse lexicographic order, let
    ``r`` be the last n-gram emitted.  For maximality the next n-gram ``s``
    is emitted only if it is not a prefix of ``r``; for closedness only if it
    is not a prefix of ``r`` with the same collection frequency.
    """

    MAXIMAL = "maximal"
    CLOSED = "closed"

    def __init__(self, mode: str) -> None:
        if mode not in (self.MAXIMAL, self.CLOSED):
            raise ValueError(f"unknown emission filter mode {mode!r}")
        self.mode = mode
        self._last_ngram: Optional[Tuple] = None
        self._last_magnitude: Optional[int] = None

    def should_emit(self, ngram: Tuple, magnitude: int) -> bool:
        """Decide whether ``ngram`` (with frequency ``magnitude``) is emitted."""
        emit = True
        if self._last_ngram is not None and is_prefix(ngram, self._last_ngram):
            if self.mode == self.MAXIMAL:
                emit = False
            elif magnitude == self._last_magnitude:
                emit = False
        if emit:
            self._last_ngram = ngram
            self._last_magnitude = magnitude
        return emit


class SuffixSigmaReducer(Reducer):
    """The stack-based reducer of Algorithm 4 with pluggable aggregation."""

    def __init__(
        self,
        min_frequency: int,
        aggregation: Optional[SuffixAggregation] = None,
        emission_filter: Optional[PrefixEmissionFilter] = None,
    ) -> None:
        self.min_frequency = min_frequency
        self.aggregation = aggregation if aggregation is not None else CountAggregation()
        self.emission_filter = emission_filter
        self._terms: List[Any] = []
        self._elements: List[Any] = []

    # ----------------------------------------------------------- internals
    def _pop_and_emit(self, context: TaskContext) -> None:
        ngram = tuple(self._terms)
        element = self._elements[-1]
        magnitude = self.aggregation.magnitude(element)
        if magnitude >= self.min_frequency:
            if self.emission_filter is None or self.emission_filter.should_emit(
                ngram, magnitude
            ):
                context.emit(ngram, self.aggregation.output_value(element))
        self._terms.pop()
        popped = self._elements.pop()
        if self._elements:
            self._elements[-1] = self.aggregation.merge(self._elements[-1], popped)

    # ------------------------------------------------------------ contract
    def reduce(self, key: Sequence, values: Iterable[Any], context: TaskContext) -> None:
        suffix = tuple(key)
        values = list(values)
        # Pop (and emit) every stacked n-gram that is not a prefix of the
        # current suffix: no unseen suffix can contribute to it any more.
        while longest_common_prefix(suffix, self._terms) < len(self._terms):
            self._pop_and_emit(context)

        contribution = self.aggregation.from_values(values) if values else None
        if len(self._terms) == len(suffix):
            # The whole suffix is already on the stack (it equals the stack
            # contents); add this group's contribution to its element.
            if contribution is not None and self._elements:
                self._elements[-1] = self.aggregation.merge(
                    self._elements[-1], contribution
                )
            return
        # Push the new terms of the suffix; only the deepest position carries
        # this group's contribution, interior positions start neutral.
        for index in range(len(self._terms), len(suffix)):
            self._terms.append(suffix[index])
            if index == len(suffix) - 1 and contribution is not None:
                self._elements.append(contribution)
            else:
                self._elements.append(self.aggregation.empty())

    def cleanup(self, context: TaskContext) -> None:
        # Flush the remaining stack by processing a virtual empty suffix
        # (Algorithm 4's cleanup() calls reduce(∅, ∅)).
        self.reduce((), [], context)


class SuffixSigmaReducerFactory:
    """Picklable per-task factory of :class:`SuffixSigmaReducer` instances.

    Each call builds a fresh reducer with a fresh aggregation (and emission
    filter, when configured) so that no state is shared between reduce
    tasks — also across process boundaries, where a plain lambda closure
    could not be pickled.
    """

    def __init__(
        self,
        min_frequency: int,
        aggregation_factory: Callable[[], SuffixAggregation],
        filter_factory: Optional[Callable[[], PrefixEmissionFilter]] = None,
    ) -> None:
        self.min_frequency = min_frequency
        self.aggregation_factory = aggregation_factory
        self.filter_factory = filter_factory

    def __call__(self) -> SuffixSigmaReducer:
        emission_filter = self.filter_factory() if self.filter_factory is not None else None
        return SuffixSigmaReducer(
            self.min_frequency,
            aggregation=self.aggregation_factory(),
            emission_filter=emission_filter,
        )


class SuffixSigmaCounter(NGramCounter):
    """The SUFFIX-σ method (Algorithm 4)."""

    name = "SUFFIX-SIGMA"

    def __init__(
        self,
        config: NGramJobConfig,
        num_map_tasks: int = 4,
        aggregation_factory: Optional[Callable[[], SuffixAggregation]] = None,
        execution: Optional[ExecutionConfig] = None,
    ) -> None:
        super().__init__(config, num_map_tasks=num_map_tasks, execution=execution)
        self.aggregation_factory = aggregation_factory

    # ------------------------------------------------------------ plumbing
    def _make_aggregation_factory(self) -> Callable[[], SuffixAggregation]:
        """Zero-arg factory of per-task aggregations (picklable by default)."""
        if self.aggregation_factory is not None:
            return self.aggregation_factory
        if self.config.count_document_frequency:
            from repro.algorithms.aggregation import DistinctDocumentAggregation

            return DistinctDocumentAggregation
        return CountAggregation

    def _make_aggregation(self) -> SuffixAggregation:
        return self._make_aggregation_factory()()

    def _mapper_value_function(
        self, collection: SupportsRecords
    ) -> Optional[Callable[[Any], Any]]:
        """Hook for extensions that emit values beyond the document identifier."""
        return None

    def _emission_filter_factory(self) -> Optional[Callable[[], PrefixEmissionFilter]]:
        """Hook for the maximality/closedness extension."""
        return None

    def job_spec(self, collection: SupportsRecords) -> JobSpec:
        """The single MapReduce job of SUFFIX-σ."""
        config = self.config
        value_function = self._mapper_value_function(collection)
        filter_factory = self._emission_filter_factory()
        return JobSpec(
            name="suffix-sigma",
            mapper_factory=partial(SuffixMapper, config.max_length, value_function),
            reducer_factory=SuffixSigmaReducerFactory(
                config.min_frequency,
                aggregation_factory=self._make_aggregation_factory(),
                filter_factory=filter_factory,
            ),
            partitioner=FirstTermPartitioner(),
            sort_comparator=ReverseLexicographicOrder(),
            num_reducers=config.num_reducers,
            num_map_tasks=self.num_map_tasks,
        )

    # ----------------------------------------------------------------- run
    def _execute(
        self,
        records: Any,
        pipeline: JobPipeline,
        collection: SupportsRecords,
    ) -> NGramStatistics:
        result = pipeline.run_job(self.job_spec(collection), records)
        return self._collect_statistics(result.iter_output(), pipeline)

    def _collect_statistics(
        self, output: Iterable[Tuple[Tuple, Any]], pipeline: JobPipeline
    ) -> NGramStatistics:
        """Convert job output into statistics; extensions may post-process."""
        statistics = NGramStatistics()
        for ngram, value in output:
            statistics.set(ngram, value if isinstance(value, int) else len(value))
        return statistics
