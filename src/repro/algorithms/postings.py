"""Positional posting lists used by APRIORI-INDEX (Algorithm 3).

A :class:`Posting` records where an n-gram occurs within one input sequence
(one sentence / document fragment); a :class:`PostingList` aggregates the
postings of an n-gram over the whole collection.  The central operation is
:meth:`PostingList.join`: the posting lists of two (k-1)-grams that overlap
in k-2 terms are joined into the posting list of the resulting k-gram by
keeping the positions where the left operand is immediately followed by the
right operand.

Both classes expose ``serialized_size`` so the MapReduce byte accounting
charges them with the size a compact varint serialisation would occupy,
matching how the paper measures bytes transferred for APRIORI-INDEX.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Tuple

from repro.exceptions import ReproError
from repro.util.varint import encoded_length

SequenceKey = Tuple[int, int]


@dataclass(frozen=True)
class Posting:
    """Occurrences of an n-gram inside one input sequence.

    Attributes
    ----------
    doc_id:
        Identifier of the document the sequence belongs to (used for
        document-frequency counting).
    seq_id:
        Identifier of the input sequence (sentence / fragment) within the
        collection.  Positions from different sequences must never be
        considered adjacent, so joins require equal ``(doc_id, seq_id)``.
    positions:
        Start offsets of the n-gram within the sequence, strictly increasing.
    """

    doc_id: int
    seq_id: int
    positions: Tuple[int, ...]

    def __post_init__(self) -> None:
        if any(b <= a for a, b in zip(self.positions, self.positions[1:])):
            raise ReproError("posting positions must be strictly increasing")

    @property
    def frequency(self) -> int:
        """Number of occurrences recorded by this posting."""
        return len(self.positions)

    def serialized_size(self) -> int:
        """Bytes of a varint serialisation (doc id, seq id, gap-encoded positions)."""
        size = encoded_length(self.doc_id) + encoded_length(self.seq_id)
        size += encoded_length(len(self.positions))
        previous = 0
        for position in self.positions:
            size += encoded_length(position - previous)
            previous = position
        return size


class PostingList:
    """The postings of one n-gram across the collection, sorted by sequence."""

    def __init__(self, postings: Iterable[Posting] = ()) -> None:
        merged: Dict[Tuple[int, int], List[int]] = {}
        doc_ids: Dict[Tuple[int, int], int] = {}
        for posting in postings:
            key = (posting.doc_id, posting.seq_id)
            merged.setdefault(key, []).extend(posting.positions)
            doc_ids[key] = posting.doc_id
        self._postings: List[Posting] = [
            Posting(doc_id=doc_id, seq_id=seq_id, positions=tuple(sorted(set(positions))))
            for (doc_id, seq_id), positions in sorted(merged.items())
        ]

    # -------------------------------------------------------------- access
    @property
    def postings(self) -> Tuple[Posting, ...]:
        return tuple(self._postings)

    def __len__(self) -> int:
        return len(self._postings)

    def __iter__(self) -> Iterator[Posting]:
        return iter(self._postings)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PostingList):
            return NotImplemented
        return self._postings == other._postings

    @property
    def collection_frequency(self) -> int:
        """Total number of occurrences (the ``cf()`` of Algorithm 3)."""
        return sum(posting.frequency for posting in self._postings)

    @property
    def document_frequency(self) -> int:
        """Number of distinct documents with at least one occurrence."""
        return len({posting.doc_id for posting in self._postings})

    def serialized_size(self) -> int:
        """Bytes of a varint serialisation of the whole list."""
        return encoded_length(len(self._postings)) + sum(
            posting.serialized_size() for posting in self._postings
        )

    # ---------------------------------------------------------------- ops
    def join(self, other: "PostingList") -> "PostingList":
        """Adjacency join: occurrences of ``self`` immediately followed by ``other``.

        ``self`` holds the postings of the left (k-1)-gram and ``other``
        those of the right (k-1)-gram (overlapping in k-2 terms).  The result
        contains, per sequence, the start positions ``p`` of the left operand
        such that the right operand starts at ``p + 1`` — exactly the
        positions of the joined k-gram.
        """
        other_by_key = {
            (posting.doc_id, posting.seq_id): set(posting.positions) for posting in other
        }
        joined: List[Posting] = []
        for posting in self._postings:
            right_positions = other_by_key.get((posting.doc_id, posting.seq_id))
            if not right_positions:
                continue
            positions = tuple(
                position
                for position in posting.positions
                if position + 1 in right_positions
            )
            if positions:
                joined.append(
                    Posting(doc_id=posting.doc_id, seq_id=posting.seq_id, positions=positions)
                )
        return PostingList(joined)

    def merge(self, other: "PostingList") -> "PostingList":
        """Union of two posting lists of the same n-gram."""
        return PostingList(list(self._postings) + list(other._postings))

    def documents(self) -> List[int]:
        """Sorted distinct document identifiers."""
        return sorted({posting.doc_id for posting in self._postings})

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PostingList(cf={self.collection_frequency}, df={self.document_frequency})"
