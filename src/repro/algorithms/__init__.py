"""The paper's n-gram counting algorithms.

Four methods compute the same statistics (all n-grams with collection
frequency ≥ τ and length ≤ σ):

* :class:`NaiveCounter` — word counting extended to variable-length n-grams
  (Algorithm 1);
* :class:`AprioriScanCounter` — one scan of the collection per n-gram
  length, pruning candidates with the APRIORI principle (Algorithm 2);
* :class:`AprioriIndexCounter` — builds an inverted index with positional
  information and derives longer n-grams by joining posting lists
  (Algorithm 3);
* :class:`SuffixSigmaCounter` — the paper's contribution: emit truncated
  suffixes, partition by first term, sort in reverse lexicographic order and
  aggregate prefix counts with two stacks (Algorithm 4).

:func:`count_ngrams` is a convenience façade selecting a method by name.
"""

from typing import Optional, Union

from repro.algorithms.base import CountingResult, NGramCounter
from repro.algorithms.naive import NaiveCounter
from repro.algorithms.apriori_scan import AprioriScanCounter
from repro.algorithms.apriori_index import AprioriIndexCounter
from repro.algorithms.suffix_sigma import SuffixSigmaCounter
from repro.config import NGramJobConfig
from repro.exceptions import ConfigurationError

#: Registry of counter classes by their canonical (paper) name.
ALGORITHMS = {
    NaiveCounter.name: NaiveCounter,
    AprioriScanCounter.name: AprioriScanCounter,
    AprioriIndexCounter.name: AprioriIndexCounter,
    SuffixSigmaCounter.name: SuffixSigmaCounter,
}


def make_counter(algorithm: str, config: NGramJobConfig, **kwargs: object) -> NGramCounter:
    """Instantiate the counter registered under ``algorithm`` (case-insensitive)."""
    normalised = algorithm.strip().upper().replace("_", "-")
    aliases = {
        "SUFFIX-SIGMA": SuffixSigmaCounter.name,
        "SUFFIXSIGMA": SuffixSigmaCounter.name,
        "SUFFIX": SuffixSigmaCounter.name,
        "NAIVE": NaiveCounter.name,
        "APRIORI-SCAN": AprioriScanCounter.name,
        "APRIORI-INDEX": AprioriIndexCounter.name,
    }
    name = aliases.get(normalised, normalised)
    if name not in ALGORITHMS:
        raise ConfigurationError(
            f"unknown algorithm {algorithm!r}; choose one of {sorted(ALGORITHMS)}"
        )
    return ALGORITHMS[name](config, **kwargs)  # type: ignore[arg-type]


def count_ngrams(
    collection,
    min_frequency: int = 1,
    max_length: Optional[int] = None,
    algorithm: Union[str, type] = "SUFFIX-SIGMA",
    **config_overrides,
) -> CountingResult:
    """Count n-grams in ``collection`` with the requested algorithm.

    Parameters
    ----------
    collection:
        Any object exposing ``records()`` yielding ``(doc_id, term_sequence)``
        pairs — a :class:`~repro.corpus.collection.DocumentCollection`, an
        :class:`~repro.corpus.collection.EncodedCollection`, or a test double.
    min_frequency / max_length:
        The paper's τ and σ parameters.
    algorithm:
        Either a canonical name (``"NAIVE"``, ``"APRIORI-SCAN"``,
        ``"APRIORI-INDEX"``, ``"SUFFIX-SIGMA"``) or a counter class.
    config_overrides:
        Additional :class:`~repro.config.NGramJobConfig` fields.
    """
    config = NGramJobConfig(
        min_frequency=min_frequency, max_length=max_length, **config_overrides
    )
    if isinstance(algorithm, str):
        counter = make_counter(algorithm, config)
    else:
        counter = algorithm(config)
    return counter.run(collection)


__all__ = [
    "ALGORITHMS",
    "AprioriIndexCounter",
    "AprioriScanCounter",
    "CountingResult",
    "NGramCounter",
    "NaiveCounter",
    "SuffixSigmaCounter",
    "count_ngrams",
    "make_counter",
]
