"""APRIORI-INDEX (Algorithm 3 of the paper).

Instead of rescanning the collection for every n-gram length, APRIORI-INDEX
incrementally builds an inverted index with positional information:

* **Phase 1** (``k ≤ K``): one job per length ``k`` scans the input, emits a
  positional posting per sequence for every k-gram, and keeps the k-grams
  whose collection frequency reaches τ together with their posting lists.
* **Phase 2** (``k > K``): one job per length ``k`` operates on the previous
  iteration's output only.  The mapper emits every frequent (k-1)-gram twice
  — keyed by its length-(k-2) prefix (tagged as a right-extension candidate)
  and by its suffix (tagged as a left-extension candidate).  The reducer
  joins every compatible pair of posting lists, producing the k-grams that
  occur at least τ times, with their posting lists.

The method therefore resembles SPADE's breadth-first lattice traversal.  Its
practical difficulty, discussed in the paper, is that reducers must buffer
many potentially large posting lists; the counter optionally uses a
spilling key-value store for that buffer.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.algorithms.base import NGramCounter, SupportsRecords
from repro.algorithms.postings import Posting, PostingList
from repro.config import ExecutionConfig, NGramJobConfig
from repro.exceptions import ConfigurationError
from repro.mapreduce.job import JobSpec, Mapper, Reducer, TaskContext
from repro.mapreduce.pipeline import JobPipeline
from repro.ngrams.statistics import NGramStatistics

#: Tags distinguishing how a (k-1)-gram extends the reducer key (Algorithm 3
#: calls these the ``r-seq`` and ``l-seq`` subtypes).
RIGHT_EXTENSION = "r"
LEFT_EXTENSION = "l"


class IndexingMapper(Mapper):
    """Phase-1 mapper: positional postings of every k-gram of a sequence."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k

    def map(self, key: Any, value: Tuple, context: TaskContext) -> None:
        doc_id, seq_id = key if isinstance(key, tuple) else (key, 0)
        sequence = value
        positions: Dict[Tuple, List[int]] = {}
        for begin in range(len(sequence) - self.k + 1):
            ngram = tuple(sequence[begin : begin + self.k])
            positions.setdefault(ngram, []).append(begin)
        for ngram, offsets in positions.items():
            context.emit(ngram, Posting(doc_id=doc_id, seq_id=seq_id, positions=tuple(offsets)))


class IndexingReducer(Reducer):
    """Phase-1 reducer: keep k-grams whose frequency reaches τ, with postings."""

    def __init__(self, min_frequency: int, document_frequency: bool = False) -> None:
        self.min_frequency = min_frequency
        self.document_frequency = document_frequency

    def reduce(self, key: Any, values: Iterable[Posting], context: TaskContext) -> None:
        posting_list = PostingList(values)
        frequency = (
            posting_list.document_frequency
            if self.document_frequency
            else posting_list.collection_frequency
        )
        if frequency >= self.min_frequency:
            context.emit(key, posting_list)


class ExtensionMapper(Mapper):
    """Phase-2 mapper: re-key every frequent (k-1)-gram by prefix and suffix."""

    def map(self, key: Tuple, value: PostingList, context: TaskContext) -> None:
        ngram = tuple(key)
        context.emit(ngram[:-1], (RIGHT_EXTENSION, ngram, value))
        context.emit(ngram[1:], (LEFT_EXTENSION, ngram, value))


class JoiningReducer(Reducer):
    """Phase-2 reducer: join compatible posting lists into k-gram posting lists."""

    def __init__(self, min_frequency: int, document_frequency: bool = False) -> None:
        self.min_frequency = min_frequency
        self.document_frequency = document_frequency

    def reduce(self, key: Any, values: Iterable[Tuple], context: TaskContext) -> None:
        left_candidates: List[Tuple[Tuple, PostingList]] = []
        right_candidates: List[Tuple[Tuple, PostingList]] = []
        for tag, ngram, posting_list in values:
            if tag == LEFT_EXTENSION:
                left_candidates.append((ngram, posting_list))
            else:
                right_candidates.append((ngram, posting_list))
        for left_ngram, left_postings in left_candidates:
            for right_ngram, right_postings in right_candidates:
                joined = left_postings.join(right_postings)
                frequency = (
                    joined.document_frequency
                    if self.document_frequency
                    else joined.collection_frequency
                )
                if frequency >= self.min_frequency:
                    result = left_ngram + (right_ngram[-1],)
                    context.emit(result, joined)


class AprioriIndexCounter(NGramCounter):
    """The APRIORI-INDEX baseline (Algorithm 3).

    Parameters
    ----------
    config:
        Job parameters; ``config.apriori_index_k`` is the phase boundary
        ``K`` (the paper's experiments use K = 4).
    keep_index:
        When true, the full positional inverted index of all frequent
        n-grams is retained on :attr:`inverted_index` after :meth:`run`.
    """

    name = "APRIORI-INDEX"

    def __init__(
        self,
        config: NGramJobConfig,
        num_map_tasks: int = 4,
        keep_index: bool = False,
        execution: Optional[ExecutionConfig] = None,
    ) -> None:
        super().__init__(config, num_map_tasks=num_map_tasks, execution=execution)
        if config.max_length is not None and config.apriori_index_k < 1:
            raise ConfigurationError("apriori_index_k must be >= 1")
        self.keep_index = keep_index
        self.inverted_index: Dict[Tuple, PostingList] = {}

    # ------------------------------------------------------------ plumbing
    def _phase1_job(self, k: int) -> JobSpec:
        config = self.config
        return JobSpec(
            name=f"apriori-index-scan-k{k}",
            mapper_factory=partial(IndexingMapper, k),
            reducer_factory=partial(
                IndexingReducer, config.min_frequency, config.count_document_frequency
            ),
            num_reducers=config.num_reducers,
            num_map_tasks=self.num_map_tasks,
        )

    def _phase2_job(self, k: int) -> JobSpec:
        config = self.config
        return JobSpec(
            name=f"apriori-index-join-k{k}",
            mapper_factory=ExtensionMapper,
            reducer_factory=partial(
                JoiningReducer, config.min_frequency, config.count_document_frequency
            ),
            num_reducers=config.num_reducers,
            num_map_tasks=self.num_map_tasks,
        )

    def _record_output(
        self, statistics: NGramStatistics, output: Iterable[Tuple[Tuple, PostingList]]
    ) -> None:
        for ngram, posting_list in output:
            frequency = (
                posting_list.document_frequency
                if self.config.count_document_frequency
                else posting_list.collection_frequency
            )
            statistics.set(ngram, frequency)
            if self.keep_index:
                self.inverted_index[ngram] = posting_list

    # ----------------------------------------------------------------- run
    def _execute(
        self,
        records: Any,
        pipeline: JobPipeline,
        collection: SupportsRecords,
    ) -> NGramStatistics:
        statistics = NGramStatistics()
        self.inverted_index = {}
        max_length = self.config.max_length
        boundary = self.config.apriori_index_k

        # Phase-2 jobs stream the previous job's output dataset; under the
        # pipeline's default retention policy it is released (in-memory
        # buffers freed, shards deleted) once the next job has consumed it.
        previous_output = None
        k = 1
        while max_length is None or k <= max_length:
            if k <= boundary:
                result = pipeline.run_job(self._phase1_job(k), records)
            else:
                if previous_output is None or previous_output.num_records == 0:
                    break
                result = pipeline.run_job(self._phase2_job(k), previous_output)
            if result.is_empty():
                break
            self._record_output(statistics, result.iter_output())
            previous_output = result.output_dataset
            k += 1
        return statistics
