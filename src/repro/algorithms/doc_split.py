"""The "Document Splits" optimisation (Section V).

Collection frequencies of individual terms can be exploited to reduce work:
every input sequence is split at terms whose collection frequency is below
τ.  This is safe by the APRIORI principle — no frequent n-gram can contain
an infrequent term — and it shortens the sequences every method has to
process, which matters most for large σ.

In a Hadoop deployment the unigram frequencies come from the preprocessing
step that builds the term dictionary (identifiers are assigned in descending
collection-frequency order, so the frequency of every term is known).  Here
:func:`unigram_frequencies` recomputes them from the input records when no
vocabulary is supplied.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Sequence, Tuple

Record = Tuple[Tuple[int, int], Tuple]


def unigram_frequencies(records: Iterable[Tuple[object, Sequence]]) -> Counter:
    """Collection frequency of every term across ``records``."""
    counts: Counter = Counter()
    for _, sequence in records:
        counts.update(sequence)
    return counts


def split_sequence_at_infrequent_terms(
    sequence: Sequence, frequent_terms: "set | Dict | frozenset"
) -> List[Tuple]:
    """Split ``sequence`` into maximal runs of frequent terms.

    Terms not contained in ``frequent_terms`` act as barriers and are dropped
    (as unigrams they are infrequent, so nothing frequent is lost).  Empty
    fragments are discarded.
    """
    fragments: List[Tuple] = []
    current: List = []
    for term in sequence:
        if term in frequent_terms:
            current.append(term)
        elif current:
            fragments.append(tuple(current))
            current = []
    if current:
        fragments.append(tuple(current))
    return fragments


def split_records(
    records: Sequence[Tuple[object, Sequence]],
    min_frequency: int,
    term_frequencies: Counter | None = None,
) -> List[Tuple[object, Tuple]]:
    """Apply document splitting to a full record list.

    Returns new ``(doc_id, fragment)`` records; a record producing several
    fragments contributes several output records with the same document
    identifier, which is exactly how the optimisation behaves on a cluster
    (fragments are independent input sequences).
    """
    if term_frequencies is None:
        term_frequencies = unigram_frequencies(records)
    frequent_terms = {
        term for term, count in term_frequencies.items() if count >= min_frequency
    }
    output: List[Tuple[object, Tuple]] = []
    for doc_id, sequence in records:
        for fragment in split_sequence_at_infrequent_terms(sequence, frequent_terms):
            output.append((doc_id, fragment))
    return output
