"""APRIORI-SCAN (Algorithm 2 of the paper).

The method performs one distributed scan of the document collection per
n-gram length ``k``.  In the k-th scan the mapper emits only those k-grams
whose two constituent (k-1)-grams were found frequent in the previous scan —
the APRIORI principle guarantees nothing frequent is lost.  The previous
scan's output is shipped to every mapper through the distributed cache (or a
shared key-value store).

The method terminates after σ scans or as soon as a scan produces no output.
Each scan is a separate MapReduce job, so the method pays the per-job fixed
cost repeatedly and always reads the *entire* input, even when late
iterations produce only a handful of frequent n-grams — the weakness the
paper's experiments expose for small τ / large σ.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Iterable, Optional, Tuple

from repro.algorithms.base import NGramCounter, SupportsRecords
from repro.algorithms.common import CountSumCombiner, FrequencyReducer
from repro.config import ExecutionConfig, NGramJobConfig
from repro.kvstore import SpillingKVStore
from repro.mapreduce.job import JobSpec, Mapper, TaskContext
from repro.mapreduce.pipeline import JobPipeline
from repro.ngrams.statistics import NGramStatistics

#: Name under which the dictionary of frequent (k-1)-grams is published.
DICTIONARY_CACHE_KEY = "apriori-scan/frequent-(k-1)-grams"


class AprioriScanMapper(Mapper):
    """Emits the k-grams whose constituent (k-1)-grams are both frequent."""

    def __init__(self, k: int, emit_partial_counts: bool) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.emit_partial_counts = emit_partial_counts
        self._dictionary = None

    def setup(self, context: TaskContext) -> None:
        if self.k > 1:
            self._dictionary = context.cache.get(DICTIONARY_CACHE_KEY)

    def map(self, key: Any, value: Tuple, context: TaskContext) -> None:
        doc_id = key[0] if isinstance(key, tuple) else key
        sequence = value
        k = self.k
        # Input sequences are tuples, so slices already are — no copies.
        for begin in range(len(sequence) - k + 1):
            if k > 1:
                left = sequence[begin : begin + k - 1]
                right = sequence[begin + 1 : begin + k]
                if left not in self._dictionary or right not in self._dictionary:
                    continue
            ngram = sequence[begin : begin + k]
            if self.emit_partial_counts:
                context.emit(ngram, 1)
            else:
                context.emit(ngram, doc_id)


class AprioriScanCounter(NGramCounter):
    """The APRIORI-SCAN baseline (Algorithm 2)."""

    name = "APRIORI-SCAN"

    def __init__(
        self,
        config: NGramJobConfig,
        num_map_tasks: int = 4,
        dictionary_memory_budget: Optional[int] = None,
        execution: Optional[ExecutionConfig] = None,
    ) -> None:
        """``dictionary_memory_budget``: when set, the dictionary of frequent
        (k-1)-grams is kept in a :class:`~repro.kvstore.SpillingKVStore` with
        that in-memory entry budget instead of a plain frozen set, mirroring
        the Berkeley-DB-backed dictionary of the paper's implementation."""
        super().__init__(config, num_map_tasks=num_map_tasks, execution=execution)
        self.dictionary_memory_budget = dictionary_memory_budget

    # ------------------------------------------------------------ plumbing
    def _job_spec(self, k: int) -> JobSpec:
        config = self.config
        emit_partial_counts = config.use_combiner and not config.count_document_frequency
        return JobSpec(
            name=f"apriori-scan-k{k}",
            mapper_factory=partial(AprioriScanMapper, k, emit_partial_counts),
            reducer_factory=partial(
                FrequencyReducer,
                config.min_frequency,
                values_are_counts=emit_partial_counts,
                document_frequency=config.count_document_frequency,
            ),
            combiner_factory=CountSumCombiner if emit_partial_counts else None,
            num_reducers=config.num_reducers,
            num_map_tasks=self.num_map_tasks,
        )

    def _build_dictionary(self, frequent_ngrams: Iterable[Tuple]) -> Any:
        """Package the frequent (k-1)-grams for lookup by the next scan.

        ``frequent_ngrams`` is consumed as a stream: with a memory budget
        the n-grams go straight into the :class:`SpillingKVStore` (which
        migrates itself to disk past the budget), and the frozenset path
        builds from the iterator — neither materialises an intermediate
        list of the dictionary.
        """
        if self.dictionary_memory_budget is None:
            return frozenset(frequent_ngrams)
        store = SpillingKVStore(memory_budget=self.dictionary_memory_budget)
        for ngram in frequent_ngrams:
            store.put(ngram, True)
        return store

    # ----------------------------------------------------------------- run
    def _execute(
        self,
        records: Any,
        pipeline: JobPipeline,
        collection: SupportsRecords,
    ) -> NGramStatistics:
        statistics = NGramStatistics()
        max_length = self.config.max_length
        k = 1
        while True:
            job = self._job_spec(k)
            # The input dataset is reused by every scan; in disk mode it is
            # written once and streamed per job.
            result = pipeline.run_job(job, records)
            if result.is_empty():
                break
            # First streaming pass: record the scan's statistics.
            for ngram, frequency in result.iter_output():
                statistics.set(ngram, frequency)
            if max_length is not None and k >= max_length:
                break
            # Second streaming pass (datasets re-iterate; in disk mode this
            # re-reads the output shards): the frequent k-grams flow straight
            # into the next scan's dictionary without an intermediate list.
            dictionary = self._build_dictionary(
                ngram for ngram, _ in result.iter_output()
            )
            pipeline.cache.publish(DICTIONARY_CACHE_KEY, dictionary)
            k += 1
        return statistics
