"""Per-document occurrence counts with SUFFIX-σ (Section VI.B).

"Build an inverted index that records for every n-gram how often ... it
occurs in individual documents": the reducer aggregates, per n-gram, a
mapping from document identifier to occurrence count, using the same lazy
stack mechanism as plain counting.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.algorithms.aggregation import DocumentPostingAggregation
from repro.algorithms.suffix_sigma import SuffixSigmaCounter
from repro.config import NGramJobConfig
from repro.mapreduce.pipeline import JobPipeline
from repro.ngrams.statistics import NGramStatistics


class SuffixSigmaIndexCounter(SuffixSigmaCounter):
    """SUFFIX-σ building an n-gram → {document → occurrences} index.

    After :meth:`run`, :attr:`document_postings` maps every frequent n-gram
    to a dictionary of per-document occurrence counts; the returned
    statistics hold the total collection frequencies.
    """

    name = "SUFFIX-SIGMA-INDEX"

    def __init__(self, config: NGramJobConfig, num_map_tasks: int = 4) -> None:
        super().__init__(
            config,
            num_map_tasks=num_map_tasks,
            aggregation_factory=DocumentPostingAggregation,
        )
        self.document_postings: Dict[Tuple, Dict[int, int]] = {}

    def _collect_statistics(
        self, output: List[Tuple[Tuple, Any]], pipeline: JobPipeline
    ) -> NGramStatistics:
        self.document_postings = {}
        statistics = NGramStatistics()
        for ngram, postings in output:
            statistics.set(ngram, sum(postings.values()))
            self.document_postings[ngram] = dict(postings)
        return statistics
