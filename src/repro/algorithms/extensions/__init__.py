"""Extensions of SUFFIX-σ (Section VI of the paper).

* :mod:`repro.algorithms.extensions.maximal` — maximal and closed n-grams
  via the prefix-filter + reversed post-filter construction of Section VI.A;
* :mod:`repro.algorithms.extensions.timeseries` — n-gram time series
  (occurrences per publication year), Section VI.B;
* :mod:`repro.algorithms.extensions.inverted_index` — per-document
  occurrence counts (an inverted index keyed by n-gram), Section VI.B;
* :mod:`repro.algorithms.extensions.docfreq` — document frequencies instead
  of collection frequencies (Section II notes all methods support this).
"""

from repro.algorithms.extensions.maximal import ClosedNGramCounter, MaximalNGramCounter
from repro.algorithms.extensions.timeseries import SuffixSigmaTimeSeriesCounter
from repro.algorithms.extensions.inverted_index import SuffixSigmaIndexCounter
from repro.algorithms.extensions.docfreq import document_frequencies

__all__ = [
    "ClosedNGramCounter",
    "MaximalNGramCounter",
    "SuffixSigmaIndexCounter",
    "SuffixSigmaTimeSeriesCounter",
    "document_frequencies",
]
