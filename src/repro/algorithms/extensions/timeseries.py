"""n-gram time series with SUFFIX-σ (Section VI.B).

The mapper emits every suffix along with the document identifier *and* the
document's timestamp; the reducer replaces the ``counts`` stack with a stack
of time series that are aggregated lazily exactly like counts.  The benefit
over extending NAIVE, which the paper points out, is that the metadata is
transferred once per *suffix* rather than once per contained n-gram.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.algorithms.aggregation import TimeSeriesAggregation
from repro.algorithms.base import SupportsRecords
from repro.algorithms.suffix_sigma import SuffixSigmaCounter
from repro.config import NGramJobConfig
from repro.mapreduce.pipeline import JobPipeline
from repro.ngrams.statistics import NGramStatistics
from repro.ngrams.timeseries import NGramTimeSeriesCollection, TimeSeries


class SuffixSigmaTimeSeriesCounter(SuffixSigmaCounter):
    """SUFFIX-σ computing, per frequent n-gram, occurrences per time bucket.

    After :meth:`run`, :attr:`time_series` holds the
    :class:`~repro.ngrams.timeseries.NGramTimeSeriesCollection`; the returned
    :class:`~repro.algorithms.base.CountingResult` statistics contain the
    total collection frequencies (so the τ/σ contract is unchanged).
    """

    name = "SUFFIX-SIGMA-TIMESERIES"

    def __init__(self, config: NGramJobConfig, num_map_tasks: int = 4) -> None:
        super().__init__(
            config,
            num_map_tasks=num_map_tasks,
            aggregation_factory=TimeSeriesAggregation,
        )
        self.time_series = NGramTimeSeriesCollection()

    def _mapper_value_function(
        self, collection: SupportsRecords
    ) -> Optional[Callable[[Any], Any]]:
        timestamps: Dict[int, Optional[int]] = {}
        if hasattr(collection, "timestamps"):
            timestamps = collection.timestamps()
        return lambda doc_id: (doc_id, timestamps.get(doc_id))

    def _collect_statistics(
        self, output: List[Tuple[Tuple, Any]], pipeline: JobPipeline
    ) -> NGramStatistics:
        self.time_series = NGramTimeSeriesCollection()
        statistics = NGramStatistics()
        for ngram, (total, observations) in output:
            statistics.set(ngram, total)
            self.time_series.set(ngram, TimeSeries.from_mapping(observations))
        return statistics
