"""Maximal and closed n-grams (Section VI.A).

An n-gram ``r`` is *maximal* when no frequent n-gram ``s`` exists with
``r ⊑ s`` (proper contiguous super-sequence); it is *closed* when no such
``s`` exists with the same collection frequency.  Both sets can be much
smaller than the full result; closed n-grams lose no information because
omitted n-grams can be reconstructed with their exact frequencies.

SUFFIX-σ computes them in two steps, both reusing its machinery:

1. **Prefix filtering** inside the normal SUFFIX-σ reducer: because n-grams
   are emitted in reverse lexicographic order, an n-gram that is a prefix of
   the previously emitted one (with equal frequency, for closedness) is
   suppressed.  The surviving n-grams are the *prefix-maximal* /
   *prefix-closed* ones.
2. **A post-filtering MapReduce job**: every surviving n-gram is reversed,
   partitioned by its (new) first term and sorted in reverse lexicographic
   order; applying the same filter now suppresses n-grams that are a suffix
   of a longer surviving n-gram.  Reversing the survivors back yields the
   maximal / closed n-grams.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.algorithms.base import SupportsRecords
from repro.algorithms.suffix_sigma import (
    FirstTermPartitioner,
    PrefixEmissionFilter,
    SuffixSigmaCounter,
)
from repro.mapreduce.job import JobSpec, Mapper, Reducer, TaskContext
from repro.mapreduce.pipeline import JobPipeline
from repro.ngrams.ordering import ReverseLexicographicOrder
from repro.ngrams.statistics import NGramStatistics


class ReversingMapper(Mapper):
    """Post-filter mapper: reverses each n-gram, forwarding its frequency."""

    def map(self, key: Sequence, value: Any, context: TaskContext) -> None:
        context.emit(tuple(reversed(tuple(key))), value)


class ReversedFilterReducer(Reducer):
    """Post-filter reducer: keeps suffix-maximal / suffix-closed n-grams.

    Keys arrive reversed and in reverse lexicographic order, so the same
    prefix-based filter used inside SUFFIX-σ now removes n-grams that are a
    *suffix* of a longer surviving n-gram.  Emitted n-grams are restored to
    their original order.
    """

    def __init__(self, mode: str) -> None:
        self._filter = PrefixEmissionFilter(mode)

    def reduce(self, key: Sequence, values: Iterable[int], context: TaskContext) -> None:
        reversed_ngram = tuple(key)
        frequency = sum(values) if not isinstance(values, int) else values
        if self._filter.should_emit(reversed_ngram, frequency):
            context.emit(tuple(reversed(reversed_ngram)), frequency)


class MaximalNGramCounter(SuffixSigmaCounter):
    """SUFFIX-σ restricted to maximal n-grams."""

    name = "SUFFIX-SIGMA-MAXIMAL"
    filter_mode = PrefixEmissionFilter.MAXIMAL

    def _emission_filter_factory(self) -> Optional[Callable[[], PrefixEmissionFilter]]:
        return partial(PrefixEmissionFilter, self.filter_mode)

    def _post_filter_job(self) -> JobSpec:
        mode = self.filter_mode
        return JobSpec(
            name=f"suffix-sigma-postfilter-{mode}",
            mapper_factory=ReversingMapper,
            reducer_factory=partial(ReversedFilterReducer, mode),
            partitioner=FirstTermPartitioner(),
            sort_comparator=ReverseLexicographicOrder(),
            num_reducers=self.config.num_reducers,
            num_map_tasks=self.num_map_tasks,
        )

    def _execute(
        self,
        records: Any,
        pipeline: JobPipeline,
        collection: SupportsRecords,
    ) -> NGramStatistics:
        first = pipeline.run_job(self.job_spec(collection), records)
        # The post-filter job streams the first job's output dataset; the
        # pipeline releases it once the second job completes.
        second = pipeline.run_job(self._post_filter_job(), first.output_dataset)
        return NGramStatistics.from_pairs(second.iter_output())


class ClosedNGramCounter(MaximalNGramCounter):
    """SUFFIX-σ restricted to closed n-grams."""

    name = "SUFFIX-SIGMA-CLOSED"
    filter_mode = PrefixEmissionFilter.CLOSED
