"""Document frequencies instead of collection frequencies.

Section II: "all methods presented below can easily be modified to produce
document frequencies instead" — document frequency (the number of documents
containing an n-gram at least once) is the support notion of classical
frequent sequence mining.  Every counter in this package honours
``NGramJobConfig.count_document_frequency``; this module provides a small
convenience façade.
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms import make_counter
from repro.algorithms.base import CountingResult
from repro.config import NGramJobConfig


def document_frequencies(
    collection,
    min_frequency: int = 1,
    max_length: Optional[int] = None,
    algorithm: str = "SUFFIX-SIGMA",
    **config_overrides,
) -> CountingResult:
    """Compute document frequencies of n-grams with df ≥ τ and length ≤ σ."""
    config = NGramJobConfig(
        min_frequency=min_frequency,
        max_length=max_length,
        count_document_frequency=True,
        **config_overrides,
    )
    counter = make_counter(algorithm, config)
    return counter.run(collection)
