"""The unified query surface every store front-end speaks: ``StoreAPI``.

Before this module existed the query surface was fractured: ``NGramStore``
returned rich iterators, ``StoreClient`` returned tuples over an ad-hoc
newline-JSON protocol, and vocabulary translation only happened client-side
(forcing every remote consumer to download the dictionary).  ``StoreAPI``
is the one contract they all implement now:

* ``get`` / ``multi_get`` — point lookups by n-gram key (term-id tuples);
* ``prefix`` — bounded range scan of every n-gram starting with a key;
* ``top_k`` — the k best records by frequency (or the first k by key);
* ``complete`` — next-word prediction: the k best single-token
  continuations of a prefix, in deterministic ``(-count, token)`` order;
* ``compare`` — point diff/intersect lookup across the served store and a
  second *comparison* store mounted server-side (``serve --extra-store``);
* ``stats`` — store metadata (record/partition counts, vocabulary flag);
* ``close`` + context-manager lifecycle;
* surface-term variants (``get_terms`` / ``multi_get_terms`` /
  ``prefix_terms`` / ``top_k_terms``) backed by the store's *persisted*
  dictionary — translation happens wherever the dictionary lives (the
  server, for remote implementations), so clients never download it.

The canonical result shape is :class:`NGramRecord` — a ``(ngram, value)``
named tuple, where ``ngram`` is a tuple of term identifiers (or of surface
term strings for the ``*_terms`` variants).  Being a tuple subclass it
compares equal to the plain ``(key, value)`` tuples the pre-redesign
``StoreClient`` returned, so downstream callers migrate without breaking;
the conformance suite asserts byte-identical results across every
implementation: the local :class:`~repro.ngramstore.reader.NGramStore`,
the socket :class:`~repro.ngramstore.server.StoreClient`, the
:class:`~repro.ngramstore.router.ReplicaPool`, the range-sharded
:class:`~repro.ngramstore.router.ShardRouter`, and the
:class:`~repro.ngramstore.http.HttpStoreClient`.

:class:`QueryEngine` is the transport-independent server half: it maps one
request object of the unified wire schema (shared verbatim by the TCP
socket protocol and the HTTP adapter) to one response object, enforcing
the server-side result caps.  Legacy request spellings (``ngram`` /
``tokens`` instead of ``key``) are still served via
:func:`normalize_request`, which flags them with a ``deprecated`` note in
the response instead of breaking old clients.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, NamedTuple, Optional, Sequence, Tuple

from repro.exceptions import StoreError, VocabularyError
from repro.ngramstore.table import TOP_K_ORDERS, validate_top_k
from repro.util.tracing import TRACE_FIELD, trace_id_of

_MISSING = object()


class NGramRecord(NamedTuple):
    """Canonical ``(ngram, value)`` result record of every ``StoreAPI``.

    ``ngram`` is a tuple of term identifiers — or of surface term strings
    when produced by a ``*_terms`` operation.  As a tuple subclass it is
    equal to (and unpacks like) the bare 2-tuples older call sites expect.
    """

    ngram: Tuple
    value: Any


Record = NGramRecord


class Completion(NamedTuple):
    """One ``complete`` result: a continuation token and its frequency.

    ``token`` is a term identifier — or a surface term string when produced
    by ``complete_terms``.  Tuple-compatible, like :class:`NGramRecord`.
    """

    token: Any
    value: Any

#: Server-side result caps: a single response is one JSON payload held in
#: memory, so unbounded prefix scans (or absurd k / batch sizes) must not
#: let one request materialise a whole larger-than-RAM store.  Capped
#: prefix responses set ``truncated``; clients page with an explicit limit
#: or fall back to offline scans for bulk exports.
MAX_PREFIX_RECORDS = 10_000
MAX_TOP_K = 10_000
MAX_BATCH_KEYS = 10_000

#: Default result size of the ``complete`` operation.
DEFAULT_COMPLETE_K = 5

#: Operations of the unified wire protocol (also the metrics buckets).
OPERATIONS = (
    "get",
    "multi_get",
    "prefix",
    "multi_prefix",
    "top_k",
    "complete",
    "compare",
    "translate",
    "render",
    "stats",
    "server_stats",
    "metrics",
    "ping",
)

#: Legacy request field spellings still accepted (deprecation shim): the
#: pre-redesign socket protocol said ``{"op": "get", "ngram": [...]}`` and
#: ``{"op": "prefix", "tokens": [...]}``; the unified schema uses ``key``
#: everywhere.  Old spellings are served, but flagged in the response.
LEGACY_REQUEST_FIELDS = {"ngram": "key", "tokens": "key"}


def normalize_request(request: Dict[str, Any]) -> Tuple[Dict[str, Any], Optional[str]]:
    """Map legacy request field spellings onto the unified schema.

    Returns the (possibly rewritten) request and a deprecation note when a
    legacy spelling was used — the server copies the note into the
    response so old clients keep working but see the migration hint.

    The optional ``trace`` field (``{"id": "<hex>"}``, see
    :mod:`repro.util.tracing`) is part of the canonical schema: a
    well-formed trace passes through untouched so the server can adopt
    the client's request ID, while a malformed one is dropped here —
    tracing is telemetry and must never fail a query.  Servers predating
    the field simply never read it.
    """
    notes = []
    for legacy, canonical in LEGACY_REQUEST_FIELDS.items():
        if legacy in request:
            request = dict(request)
            value = request.pop(legacy)
            request.setdefault(canonical, value)
            notes.append(f"request field {legacy!r} is deprecated; use {canonical!r}")
    if TRACE_FIELD in request and trace_id_of(request) is None:
        request = dict(request)
        del request[TRACE_FIELD]
    return request, "; ".join(notes) if notes else None


def validate_complete_k(k: Any) -> int:
    """Validate a ``complete`` result size: a positive int within the cap."""
    if not isinstance(k, int) or isinstance(k, bool) or k < 1:
        raise StoreError(f"complete k must be a positive integer, got {k!r}")
    if k > MAX_TOP_K:
        raise StoreError(f"complete k must be <= {MAX_TOP_K}, got {k}")
    return k


def complete_scan(
    records: Iterable[Record], prefix_length: int, k: int
) -> Tuple[List[Completion], bool]:
    """The canonical completion scan every implementation shares.

    ``records`` streams the prefix-matching records in key order (a store's
    ``prefix(key)``, or an equivalently sorted in-memory slice); records
    one token longer than the prefix are the completion candidates, ranked
    by ``(-value, token)`` — the explicit token tie-break is what makes
    results byte-identical across the local store, every wire transport,
    and :meth:`~repro.applications.language_model.NGramLanguageModel.
    complete`, which all funnel through this function.  At most
    ``MAX_PREFIX_RECORDS`` records are scanned; the returned flag reports
    whether the scan was cut short (so very hot prefixes degrade loudly,
    not wrongly).  Returns ``(top-k completions, truncated)``.
    """
    candidates: List[Tuple[Any, Any]] = []
    truncated = False
    scanned = 0
    for key, value in records:
        if scanned >= MAX_PREFIX_RECORDS:
            truncated = True
            break
        scanned += 1
        if len(key) != prefix_length + 1:
            continue
        candidates.append((key[prefix_length], value))
    try:
        candidates.sort(key=lambda item: (-item[1], item[0]))
    except TypeError as exc:
        raise StoreError(
            f"complete requires numeric, mutually comparable frequencies ({exc})"
        ) from exc
    return [Completion(token, value) for token, value in candidates[:k]], truncated


def ensure_comparable_vocabulary(primary: Any, extra: Any) -> None:
    """Refuse mounting a comparison store whose vocabulary differs.

    ``compare`` translates surface terms against the *primary* store's
    dictionary and looks the resulting ids up in both stores, which is only
    meaningful when both were encoded against the same dictionary.  Stores
    without a persisted vocabulary are trusted (id-keyed deployments manage
    agreement themselves).
    """
    vocabulary_a = getattr(primary, "vocabulary", None)
    vocabulary_b = getattr(extra, "vocabulary", None)
    if vocabulary_a is None or vocabulary_b is None:
        return
    if list(vocabulary_a.to_lines()) != list(vocabulary_b.to_lines()):
        raise StoreError(
            "cannot mount the comparison store: its vocabulary differs from "
            "the served store's, so term ids are not comparable across the "
            "two; re-count both against one shared dictionary"
        )


class StoreAPI:
    """The unified query contract (see the module docstring).

    Core operations (``get`` / ``prefix`` / ``top_k`` / ``stats`` /
    ``translate_terms`` / ``render_ngrams`` / ``close``) are provided by
    each implementation; the surface-term variants and ``multi_get`` have
    default compositions here so semantics cannot diverge — remote
    implementations override them only to fuse the same composition into a
    single round trip.
    """

    # ------------------------------------------------------ core contract
    def get(self, ngram: Iterable[Any], default: Any = None) -> Any:
        """The value stored for ``ngram``, or ``default``."""
        raise NotImplementedError

    def prefix(self, tokens: Iterable[Any], limit: Optional[int] = None) -> Iterable[Record]:
        """Records whose key starts with ``tokens``, in key order.

        ``limit`` caps the result count; remote implementations raise
        :class:`StoreError` when an uncapped request hits the server cap
        (a silently partial answer would be a wrong answer).
        """
        raise NotImplementedError

    def top_k(self, k: int, order: str = "frequency") -> List[Record]:
        """The ``k`` best records store-wide under ``order``."""
        raise NotImplementedError

    def stats(self) -> Dict[str, Any]:
        """Store metadata: record/partition counts, codec, vocabulary flag."""
        raise NotImplementedError

    def translate_terms(self, items: Sequence[Sequence[str]]) -> List[Optional[Tuple]]:
        """Surface-term tuples -> key tuples (``None`` for unknown terms)."""
        raise NotImplementedError

    def render_ngrams(self, ngrams: Sequence[Tuple]) -> List[Tuple[str, ...]]:
        """Key tuples -> surface-term tuples via the persisted dictionary."""
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    # --------------------------------------------------- composed surface
    def multi_get(self, ngrams: Sequence[Iterable[Any]], default: Any = None) -> List[Any]:
        """Values for ``ngrams`` in order (``default`` where absent)."""
        return [self.get(ngram, default) for ngram in ngrams]

    def multi_prefix(
        self, prefixes: Sequence[Iterable[Any]], limit: Optional[int] = None
    ) -> List[List[Record]]:
        """One prefix scan per entry of ``prefixes``, order-aligned.

        Each result list is exactly ``list(self.prefix(p, limit=limit))``;
        remote implementations fuse the batch into a single round trip.
        """
        return [list(self.prefix(prefix, limit=limit)) for prefix in prefixes]

    def get_terms(self, terms: Sequence[str], default: Any = None) -> Any:
        """Point lookup keyed by surface terms; unknown terms are absent."""
        (key,) = self.translate_terms([tuple(terms)])
        if key is None:
            return default
        return self.get(key, default)

    def multi_get_terms(
        self, items: Sequence[Sequence[str]], default: Any = None
    ) -> List[Any]:
        """Batched surface-term lookups, order-aligned with ``items``."""
        keys = self.translate_terms([tuple(item) for item in items])
        known = [key for key in keys if key is not None]
        values = iter(self.multi_get(known, default))
        return [default if key is None else next(values) for key in keys]

    def prefix_terms(
        self, terms: Sequence[str], limit: Optional[int] = None
    ) -> List[Record]:
        """Prefix scan keyed and rendered in surface terms."""
        (key,) = self.translate_terms([tuple(terms)])
        if key is None:
            return []
        records = list(self.prefix(key, limit=limit))
        rendered = self.render_ngrams([record[0] for record in records])
        return [
            NGramRecord(surface, record[1]) for surface, record in zip(rendered, records)
        ]

    def top_k_terms(self, k: int, order: str = "frequency") -> List[Record]:
        """Top-k with keys rendered as surface terms."""
        records = self.top_k(k, order)
        rendered = self.render_ngrams([record[0] for record in records])
        return [
            NGramRecord(surface, record[1]) for surface, record in zip(rendered, records)
        ]

    def complete(self, ngram: Iterable[Any], k: int = DEFAULT_COMPLETE_K) -> List[Completion]:
        """The ``k`` best single-token continuations of ``ngram``.

        A prefix scan filtered to records exactly one token longer than the
        prefix, ranked ``(-value, token)`` — see :func:`complete_scan` for
        the canonical semantics every implementation shares.  An empty
        prefix predicts first words (top unigrams).
        """
        key = tuple(ngram)
        completions, _ = complete_scan(self.prefix(key), len(key), validate_complete_k(k))
        return completions

    def complete_terms(
        self, terms: Sequence[str], k: int = DEFAULT_COMPLETE_K
    ) -> List[Completion]:
        """Completions keyed and rendered in surface terms.

        Unknown prefix terms mean nothing can continue them: the result is
        empty, not an error.  Ranking happens in id space (before
        rendering), so the order matches the id-keyed ``complete`` exactly.
        """
        (key,) = self.translate_terms([tuple(terms)])
        if key is None:
            return []
        completions = self.complete(key, k)
        rendered = self.render_ngrams([(completion.token,) for completion in completions])
        return [
            Completion(surface[0], completion.value)
            for surface, completion in zip(rendered, completions)
        ]

    def ping(self) -> bool:
        """Liveness probe; local implementations are trivially alive."""
        return True

    # ----------------------------------------------------------- lifecycle
    def __enter__(self) -> "StoreAPI":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class RemoteStore(StoreAPI):
    """``StoreAPI`` over a request/response wire: shared by every client.

    Subclasses (the socket :class:`~repro.ngramstore.server.StoreClient`
    and the :class:`~repro.ngramstore.http.HttpStoreClient`) provide only
    ``_call`` (one unified-schema request dict -> the response dict) and
    ``close``; everything else — including the surface-term variants,
    which run server-side in a single round trip — lives here, so the two
    transports cannot drift apart.
    """

    def _call(self, request: Dict[str, Any]) -> Dict[str, Any]:
        raise NotImplementedError

    # ------------------------------------------------------------- queries
    def get(self, ngram: Iterable[Any], default: Any = None) -> Any:
        response = self._call({"op": "get", "key": list(ngram)})
        return response["value"] if response["found"] else default

    def multi_get(self, ngrams: Sequence[Iterable[Any]], default: Any = None) -> List[Any]:
        response = self._call(
            {"op": "multi_get", "keys": [list(ngram) for ngram in ngrams]}
        )
        return [
            value if found else default
            for found, value in zip(response["found"], response["values"])
        ]

    def _prefix_records(
        self, request: Dict[str, Any], limit: Optional[int], key_shape
    ) -> List[Record]:
        if limit is not None:
            request["limit"] = limit
        response = self._call(request)
        records = response["records"]
        if response.get("truncated") and (limit is None or len(records) < limit):
            # Truncated short of what the caller asked for (everything, or
            # a limit above the server cap): a silently partial result
            # would be a wrong answer.
            raise StoreError(
                f"prefix result truncated at the server cap ({MAX_PREFIX_RECORDS} "
                "records); pass a limit at or below the cap, or export offline"
            )
        return [NGramRecord(key_shape(key), value) for key, value in records]

    def prefix(self, tokens: Iterable[Any], limit: Optional[int] = None) -> List[Record]:
        return self._prefix_records(
            {"op": "prefix", "key": list(tokens)}, limit, tuple
        )

    def multi_prefix(
        self, prefixes: Sequence[Iterable[Any]], limit: Optional[int] = None
    ) -> List[List[Record]]:
        request: Dict[str, Any] = {
            "op": "multi_prefix",
            "keys": [list(prefix) for prefix in prefixes],
        }
        if limit is not None:
            request["limit"] = limit
        response = self._call(request)
        results: List[List[Record]] = []
        for result in response["results"]:
            records = result["records"]
            if result.get("truncated") and (limit is None or len(records) < limit):
                raise StoreError(
                    f"prefix result truncated at the server cap ({MAX_PREFIX_RECORDS} "
                    "records); pass a limit at or below the cap, or export offline"
                )
            results.append([NGramRecord(tuple(key), value) for key, value in records])
        return results

    def top_k(self, k: int, order: str = "frequency") -> List[Record]:
        response = self._call({"op": "top_k", "k": k, "order": order})
        return [NGramRecord(tuple(key), value) for key, value in response["records"]]

    @staticmethod
    def _strip_envelope(response: Dict[str, Any]) -> Dict[str, Any]:
        """Drop protocol fields so remote stats match local ones byte for byte."""
        return {
            key: value
            for key, value in response.items()
            if key not in ("ok", "deprecated")
        }

    def stats(self) -> Dict[str, Any]:
        return self._strip_envelope(self._call({"op": "stats"}))

    def server_stats(self) -> Dict[str, Any]:
        return self._strip_envelope(self._call({"op": "server_stats"}))

    def metrics_text(self) -> str:
        """The server's metrics in the Prometheus text exposition format."""
        return str(self._call({"op": "metrics"}).get("text", ""))

    def ping(self) -> bool:
        return bool(self._call({"op": "ping"}).get("pong"))

    # ------------------------------------------- server-side vocabulary ops
    def translate_terms(self, items: Sequence[Sequence[str]]) -> List[Optional[Tuple]]:
        response = self._call({"op": "translate", "terms": [list(item) for item in items]})
        return [None if key is None else tuple(key) for key in response["keys"]]

    def render_ngrams(self, ngrams: Sequence[Tuple]) -> List[Tuple[str, ...]]:
        response = self._call({"op": "render", "ngrams": [list(ngram) for ngram in ngrams]})
        return [tuple(terms) for terms in response["terms"]]

    def get_terms(self, terms: Sequence[str], default: Any = None) -> Any:
        response = self._call({"op": "get", "terms": list(terms)})
        return response["value"] if response["found"] else default

    def multi_get_terms(
        self, items: Sequence[Sequence[str]], default: Any = None
    ) -> List[Any]:
        response = self._call(
            {"op": "multi_get", "terms": [list(item) for item in items]}
        )
        return [
            value if found else default
            for found, value in zip(response["found"], response["values"])
        ]

    def prefix_terms(
        self, terms: Sequence[str], limit: Optional[int] = None
    ) -> List[Record]:
        return self._prefix_records(
            {"op": "prefix", "terms": list(terms)},
            limit,
            lambda key: tuple(key),
        )

    def top_k_terms(self, k: int, order: str = "frequency") -> List[Record]:
        response = self._call({"op": "top_k", "k": k, "order": order, "surface": True})
        return [NGramRecord(tuple(key), value) for key, value in response["records"]]

    # --------------------------------------------------- analytics serving
    def complete(self, ngram: Iterable[Any], k: int = DEFAULT_COMPLETE_K) -> List[Completion]:
        response = self._call({"op": "complete", "key": list(ngram), "k": k})
        return [Completion(token, value) for token, value in response["completions"]]

    def complete_terms(
        self, terms: Sequence[str], k: int = DEFAULT_COMPLETE_K
    ) -> List[Completion]:
        response = self._call({"op": "complete", "terms": list(terms), "k": k})
        return [Completion(token, value) for token, value in response["completions"]]

    def compare(self, ngram: Iterable[Any]) -> Dict[str, Any]:
        """Point lookup of ``ngram`` in the served store *and* the mounted
        comparison store: ``{"found_a", "value_a", "found_b", "value_b"}``.

        Raises :class:`StoreError` when the server was started without
        ``--extra-store``.
        """
        return self._strip_envelope(self._call({"op": "compare", "key": list(ngram)}))

    def compare_terms(self, terms: Sequence[str]) -> Dict[str, Any]:
        return self._strip_envelope(self._call({"op": "compare", "terms": list(terms)}))


def _validated_terms_batch(data: Any, field: str) -> List[Tuple[str, ...]]:
    if not isinstance(data, list):
        raise StoreError(f"{field} must be a JSON array of term arrays")
    batch = []
    for item in data:
        if not isinstance(item, list) or not all(isinstance(term, str) for term in item):
            raise StoreError(f"each {field} entry must be a JSON array of strings")
        batch.append(tuple(item))
    return batch


def _json_key(data: Any, field: str = "key") -> Tuple:
    if not isinstance(data, list):
        raise StoreError(
            f"{field} must be a JSON array of terms, got {type(data).__name__}"
        )
    return tuple(data)


class _NullTrace:
    """Stage-timing no-op used when a request arrives without tracing."""

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        yield


_NULL_TRACE = _NullTrace()


class QueryEngine:
    """Maps unified-schema request dicts to response dicts over one store.

    The store is anything with the local ``StoreAPI`` surface (an
    :class:`~repro.ngramstore.reader.NGramStore` or a
    :class:`~repro.ngramstore.router.ShardView`); both the TCP socket
    server and the HTTP adapter own one engine each, so the two transports
    serve byte-identical payloads by construction.  ``server_stats`` is
    *not* handled here — it belongs to the transport (metrics, cache,
    connection counts), not to the store.

    ``extra_store`` is an optional second store (``serve --extra-store``)
    the ``compare`` operation looks keys up in alongside the primary;
    without one, ``compare`` is a clean :class:`StoreError`.  Surface
    terms are always translated against the *primary* store's vocabulary.
    """

    def __init__(self, store: Any, extra_store: Any = None) -> None:
        self.store = store
        self.extra_store = extra_store

    # ------------------------------------------------------------ helpers
    def _request_key(self, request: Dict[str, Any], surface: bool) -> Optional[Tuple]:
        """The query key of a get/prefix request; None for unknown terms."""
        if surface:
            terms = request.get("terms")
            if not isinstance(terms, list) or not all(
                isinstance(term, str) for term in terms
            ):
                raise StoreError("terms must be a JSON array of strings")
            (key,) = self.store.translate_terms([tuple(terms)])
            return key
        return _json_key(request.get("key"))

    def _record_payload(self, records: List[Record], surface: bool) -> List[List[Any]]:
        if surface:
            rendered = self.store.render_ngrams([record[0] for record in records])
            return [
                [list(terms), record[1]] for terms, record in zip(rendered, records)
            ]
        return [[list(record[0]), record[1]] for record in records]

    @staticmethod
    def _validated_limit(request: Dict[str, Any]) -> Optional[int]:
        limit = request.get("limit")
        if limit is not None and (not isinstance(limit, int) or limit < 0):
            raise StoreError(
                f"prefix limit must be a non-negative integer, got {limit!r}"
            )
        return limit

    def _prefix_response(
        self, key: Optional[Tuple], limit: Optional[int], surface: bool
    ) -> Dict[str, Any]:
        if key is None:  # unknown surface term: nothing can match
            return {"records": [], "truncated": False}
        effective_limit = (
            MAX_PREFIX_RECORDS if limit is None else min(limit, MAX_PREFIX_RECORDS)
        )
        records: List[Record] = []
        truncated = False
        for record_key, value in self.store.prefix(key):
            if len(records) >= effective_limit:
                truncated = True
                break
            records.append(NGramRecord(record_key, value))
        return {
            "records": self._record_payload(records, surface),
            "truncated": truncated,
        }

    # ------------------------------------------------------------- handle
    def handle(self, request: Dict[str, Any], trace: Any = None) -> Dict[str, Any]:
        """Answer one unified-schema request.

        ``trace`` is an optional :class:`~repro.util.tracing.TraceContext`;
        when given, time spent routing the request (validation, surface-term
        translation) and reading the store is credited to its ``route`` and
        ``read`` stages, which is what lets a slow-query log line say *where*
        a request's latency went.
        """
        if trace is None:
            trace = _NULL_TRACE
        operation = str(request.get("op"))
        surface = "terms" in request or bool(request.get("surface"))
        if operation == "get":
            with trace.stage("route"):
                key = self._request_key(request, surface)
            with trace.stage("read"):
                value = _MISSING if key is None else self.store.get(key, _MISSING)
            if value is _MISSING:
                return {"found": False, "value": None}
            return {"found": True, "value": value}
        if operation == "multi_get":
            with trace.stage("route"):
                if surface:
                    keys = self.store.translate_terms(
                        _validated_terms_batch(request.get("terms"), "terms")
                    )
                else:
                    data = request.get("keys")
                    if not isinstance(data, list):
                        raise StoreError("keys must be a JSON array of key arrays")
                    keys = [_json_key(item, "each key") for item in data]
                if len(keys) > MAX_BATCH_KEYS:
                    raise StoreError(
                        f"multi_get batch must be <= {MAX_BATCH_KEYS} keys, "
                        f"got {len(keys)}"
                    )
            found: List[bool] = []
            values: List[Any] = []
            with trace.stage("read"):
                for key in keys:
                    value = _MISSING if key is None else self.store.get(key, _MISSING)
                    found.append(value is not _MISSING)
                    values.append(None if value is _MISSING else value)
            return {"found": found, "values": values}
        if operation == "prefix":
            with trace.stage("route"):
                key = self._request_key(request, surface)
                limit = self._validated_limit(request)
            with trace.stage("read"):
                return self._prefix_response(key, limit, surface)
        if operation == "multi_prefix":
            with trace.stage("route"):
                data = request.get("keys")
                if not isinstance(data, list):
                    raise StoreError("keys must be a JSON array of key arrays")
                keys = [_json_key(item, "each key") for item in data]
                if len(keys) > MAX_BATCH_KEYS:
                    raise StoreError(
                        f"multi_prefix batch must be <= {MAX_BATCH_KEYS} keys, "
                        f"got {len(keys)}"
                    )
                limit = self._validated_limit(request)
            with trace.stage("read"):
                return {
                    "results": [
                        self._prefix_response(key, limit, surface=False) for key in keys
                    ]
                }
        if operation == "top_k":
            with trace.stage("route"):
                k = request.get("k")
                if not isinstance(k, int) or isinstance(k, bool):
                    raise StoreError(f"top_k k must be an integer, got {k!r}")
                if k > MAX_TOP_K:
                    raise StoreError(f"top_k k must be <= {MAX_TOP_K}, got {k}")
                order = request.get("order", "frequency")
                if order not in TOP_K_ORDERS:
                    raise StoreError(
                        f"top_k order must be one of {', '.join(TOP_K_ORDERS)}, "
                        f"got {order!r}"
                    )
                validate_top_k(k, order)
            with trace.stage("read"):
                records = self.store.top_k(k, order)
                return {"records": self._record_payload(records, surface)}
        if operation == "complete":
            with trace.stage("route"):
                key = self._request_key(request, surface)
                k = validate_complete_k(request.get("k", DEFAULT_COMPLETE_K))
            with trace.stage("read"):
                if key is None:  # unknown surface term: nothing continues it
                    completions, truncated = [], False
                else:
                    completions, truncated = complete_scan(
                        self.store.prefix(key), len(key), k
                    )
                if surface:
                    rendered = self.store.render_ngrams(
                        [(completion.token,) for completion in completions]
                    )
                    payload = [
                        [terms[0], completion.value]
                        for terms, completion in zip(rendered, completions)
                    ]
                else:
                    payload = [
                        [completion.token, completion.value]
                        for completion in completions
                    ]
            return {"completions": payload, "truncated": truncated}
        if operation == "compare":
            with trace.stage("route"):
                if self.extra_store is None:
                    raise StoreError(
                        "no comparison store mounted; start the server with "
                        "--extra-store to enable 'compare'"
                    )
                key = self._request_key(request, surface)
            with trace.stage("read"):
                value_a = _MISSING if key is None else self.store.get(key, _MISSING)
                value_b = (
                    _MISSING if key is None else self.extra_store.get(key, _MISSING)
                )
            return {
                "found_a": value_a is not _MISSING,
                "value_a": None if value_a is _MISSING else value_a,
                "found_b": value_b is not _MISSING,
                "value_b": None if value_b is _MISSING else value_b,
            }
        if operation == "translate":
            with trace.stage("route"):
                batch = _validated_terms_batch(request.get("terms"), "terms")
                if len(batch) > MAX_BATCH_KEYS:
                    raise StoreError(
                        f"translate batch must be <= {MAX_BATCH_KEYS} items, "
                        f"got {len(batch)}"
                    )
            with trace.stage("read"):
                keys = self.store.translate_terms(batch)
            return {"keys": [None if key is None else list(key) for key in keys]}
        if operation == "render":
            with trace.stage("route"):
                data = request.get("ngrams")
                if not isinstance(data, list):
                    raise StoreError("ngrams must be a JSON array of key arrays")
                if len(data) > MAX_BATCH_KEYS:
                    raise StoreError(
                        f"render batch must be <= {MAX_BATCH_KEYS} items, "
                        f"got {len(data)}"
                    )
                ngrams = [_json_key(item, "each ngram") for item in data]
            with trace.stage("read"):
                try:
                    rendered = self.store.render_ngrams(ngrams)
                except VocabularyError as error:
                    raise StoreError(f"{error}") from error
            return {"terms": [list(terms) for terms in rendered]}
        if operation == "stats":
            with trace.stage("read"):
                return dict(self.store.stats())
        if operation == "ping":
            return {"pong": True}
        raise StoreError(
            f"unknown op {operation!r}; expected one of {', '.join(OPERATIONS)}"
        )
