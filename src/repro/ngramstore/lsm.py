"""LSM-style store generations: incremental ingestion over immutable tables.

A classic batch build produces one immutable store per corpus — absorbing
new documents means recounting everything.  This module turns the store
layer into a small LSM tree instead:

* an **LSM directory** holds an ordered list of *generations* — each one a
  complete, immutable store directory — described by a ``MANIFEST`` file;
* ``ingest`` counts a new corpus batch at τ=1 into a fresh *delta*
  generation (counting at τ=1 keeps every count, which is what makes later
  merges exact — see :mod:`repro.ngramstore.merge`);
* ``compact`` folds generations together through
  :func:`~repro.ngramstore.merge.merge_stores`, applying the tree's
  serving threshold τ and writing the residual sidecar that keeps the
  result residual-exact; the size-tiered policy merges clusters of
  similarly-sized generations so write amplification stays logarithmic,
  and ``--all`` collapses the tree to a single generation;
* :class:`GenerationView` serves the live generations as one
  :class:`~repro.ngramstore.api.StoreAPI`: point lookups and scans *sum*
  counts across generations (each document batch was counted exactly once,
  so summing main-table counts is the union count), top-k is exact via the
  shared :class:`~repro.ngramstore.table.TopKAccumulator`, and every
  generation reads through one shared block cache — so ``repro serve`` and
  the whole distributed tier serve an ingesting store unchanged.

Serving semantics between compactions: a view sums *main*-table counts
only.  Delta generations are τ=1, so their full counts are served; a
compacted generation serves its counts ``>= τ`` while its residual sidecar
(counts in ``[1, τ)``) is merge bookkeeping, not servable.  After
``compact --all`` the single remaining generation is exactly the
τ-thresholded union recount — the identity the tests assert.
"""

from __future__ import annotations

import json
import os
import shutil
import time
from dataclasses import asdict
from functools import reduce
from itertools import islice
from operator import add
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.config import ExecutionConfig, StoreConfig
from repro.exceptions import StoreError
from repro.ngramstore.api import NGramRecord, StoreAPI
from repro.ngramstore.build import DICTIONARY_FILENAME, build_store
from repro.ngramstore.merge import _merge_streams, merge_stores
from repro.ngramstore.reader import NGramStore
from repro.ngramstore.table import (
    DEFAULT_CACHE_BLOCKS,
    BlockCache,
    TopKAccumulator,
    _frequency_type_error,
    prefix_records,
    validate_top_k,
)

Record = Tuple[Any, Any]

_MISSING = object()

#: The LSM directory's manifest file, listing the ordered generations.
#: (Upper-case on purpose: it is the marker distinguishing an LSM directory
#: from a plain single-store directory, whose manifest is ``store.json``.)
LSM_MANIFEST_FILENAME = "MANIFEST"

#: LSM manifest format version.
LSM_MANIFEST_VERSION = 1

#: Generation directory name pattern.
GENERATION_PATTERN = "gen-{index:05d}"

#: Size-tiered compaction defaults: a bucket of generations is compacted
#: when it holds at least ``DEFAULT_MIN_TIER`` members whose record counts
#: are within ``DEFAULT_TIER_RATIO``× of the bucket's smallest member.
DEFAULT_TIER_RATIO = 4
DEFAULT_MIN_TIER = 2


def is_lsm_dir(path: str) -> bool:
    """True when ``path`` is an LSM directory (has a generation MANIFEST)."""
    return os.path.isfile(os.path.join(str(path), LSM_MANIFEST_FILENAME))


def _store_config_to_json(store: StoreConfig) -> Dict[str, Any]:
    config = asdict(store)
    # A generation is always built at τ=1 (the tree's τ applies at
    # compaction), so the layout dict must not smuggle a threshold in.
    config.pop("min_frequency", None)
    return config


class LSMStore:
    """An LSM directory: ordered store generations plus their MANIFEST.

    The manifest is the single source of truth for which generations are
    live; every mutation (ingest, compact) builds the new generation first
    and swaps the manifest in atomically last, so a crash mid-operation
    leaves at worst an orphan directory that the next build of the same
    name clears — never a manifest naming a half-written store.
    """

    def __init__(self, root: str, manifest: Dict[str, Any]) -> None:
        self.root = str(root)
        self.manifest = manifest

    # ------------------------------------------------------------ lifecycle
    @classmethod
    def init(
        cls,
        root: str,
        min_frequency: int = 1,
        max_length: Optional[int] = None,
        algorithm: str = "SUFFIX-SIGMA",
        store: Optional[StoreConfig] = None,
    ) -> "LSMStore":
        """Create an empty LSM directory at ``root``.

        ``min_frequency`` is the tree's serving threshold τ, applied when
        generations are compacted; ``store`` fixes the table layout every
        generation is built with (partitions, codec, block size, blooms).
        """
        root = str(root)
        if is_lsm_dir(root):
            raise StoreError(f"{root!r} is already an LSM store directory")
        if os.path.isfile(os.path.join(root, "store.json")):
            raise StoreError(
                f"{root!r} holds a plain store; an LSM store needs its own directory"
            )
        if min_frequency < 1:
            raise StoreError(f"min_frequency must be >= 1, got {min_frequency}")
        os.makedirs(root, exist_ok=True)
        store = store if store is not None else StoreConfig()
        manifest = {
            "version": LSM_MANIFEST_VERSION,
            "min_frequency": min_frequency,
            "max_length": max_length,
            "algorithm": algorithm,
            "store": _store_config_to_json(store),
            "next_generation": 0,
            "generations": [],
        }
        lsm = cls(root, manifest)
        lsm._write_manifest()
        return lsm

    @classmethod
    def open(cls, root: str) -> "LSMStore":
        """Open an existing LSM directory."""
        root = str(root)
        path = os.path.join(root, LSM_MANIFEST_FILENAME)
        if not os.path.isfile(path):
            raise StoreError(
                f"no LSM manifest ({LSM_MANIFEST_FILENAME}) in {root!r}; "
                "create one with `repro ingest --init` or LSMStore.init"
            )
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        version = manifest.get("version")
        if version != LSM_MANIFEST_VERSION:
            raise StoreError(
                f"unsupported LSM manifest version {version!r} "
                f"(expected {LSM_MANIFEST_VERSION})"
            )
        return cls(root, manifest)

    def _write_manifest(self) -> None:
        """Atomic manifest swap: readers see the old or the new list, never half."""
        path = os.path.join(self.root, LSM_MANIFEST_FILENAME)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self.manifest, handle, indent=2, sort_keys=True)
        os.replace(tmp, path)

    # ----------------------------------------------------------- properties
    @property
    def min_frequency(self) -> int:
        return int(self.manifest["min_frequency"])

    @property
    def generations(self) -> List[Dict[str, Any]]:
        return list(self.manifest["generations"])

    @property
    def num_records(self) -> int:
        """Main-table records summed over the live generations."""
        return sum(int(entry["num_records"]) for entry in self.manifest["generations"])

    def store_config(self) -> StoreConfig:
        return StoreConfig(**self.manifest["store"])

    def generation_dir(self, name: str) -> str:
        return os.path.join(self.root, name)

    # ------------------------------------------------------------ ingestion
    def _check_vocabulary(self, vocabulary: Any) -> None:
        """New batches must be encoded against the tree's shared dictionary.

        Generation keys are term-identifier tuples; summing them across
        generations is only meaningful when every batch used the same
        term-id mapping.  The first vocabulary-bearing generation fixes the
        dictionary; later batches must match it line for line (the corpus
        tooling achieves this by slicing one encoded collection, or by
        encoding deltas against the saved dictionary).
        """
        if vocabulary is None:
            return
        for entry in self.manifest["generations"]:
            path = os.path.join(self.generation_dir(entry["name"]), DICTIONARY_FILENAME)
            if not os.path.isfile(path):
                continue
            with open(path, "r", encoding="utf-8") as handle:
                reference = [line.rstrip("\n") for line in handle]
            lines = list(vocabulary.to_lines())
            if lines != reference:
                raise StoreError(
                    f"ingest batch vocabulary disagrees with generation "
                    f"{entry['name']!r}; encode every batch against the same "
                    "shared dictionary"
                )
            return

    def _register_generation(
        self, name: str, source: Optional[str], min_frequency: int
    ) -> Dict[str, Any]:
        store = NGramStore.open(self.generation_dir(name))
        try:
            entry = {
                "name": name,
                "num_records": store.num_records,
                "min_frequency": min_frequency,
                "source": source,
            }
        finally:
            store.close()
        self.manifest["generations"].append(entry)
        self.manifest["next_generation"] = int(self.manifest["next_generation"]) + 1
        self._write_manifest()
        return entry

    def _next_generation_name(self) -> str:
        return GENERATION_PATTERN.format(index=int(self.manifest["next_generation"]))

    def ingest(
        self,
        collection: Any,
        source: Optional[str] = None,
        execution: Optional[ExecutionConfig] = None,
        algorithm: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Count ``collection`` into a new τ=1 delta generation.

        The batch is counted with the tree's algorithm and σ but at τ=1 —
        every count is kept, so compaction can apply the tree's τ to exact
        union counts.  Returns the new generation's manifest entry.
        """
        from repro.algorithms import make_counter
        from repro.config import NGramJobConfig

        self._check_vocabulary(getattr(collection, "vocabulary", None))
        config = NGramJobConfig(
            min_frequency=1, max_length=self.manifest.get("max_length")
        )
        counter = make_counter(
            algorithm or str(self.manifest["algorithm"]), config, execution=execution
        )
        name = self._next_generation_name()
        counter.run(
            collection,
            store_dir=self.generation_dir(name),
            store=self.store_config(),
        )
        return self._register_generation(name, source, min_frequency=1)

    def ingest_records(
        self,
        records: Any,
        vocabulary: Optional[Any] = None,
        source: Optional[str] = None,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Low-level ingest: write pre-counted τ=1 records as a generation.

        ``records`` is an iterable of ``(ngram, count)`` with *raw* (τ=1)
        counts for one document batch — the programmatic twin of
        :meth:`ingest` for callers that already ran a counting job.
        """
        self._check_vocabulary(vocabulary)
        name = self._next_generation_name()
        batch_metadata = {"min_frequency": 1}
        if metadata:
            batch_metadata.update(metadata)
        build_store(
            records,
            self.generation_dir(name),
            store=self.store_config(),
            metadata=batch_metadata,
            vocabulary=vocabulary,
            name=name,
        )
        return self._register_generation(name, source, min_frequency=1)

    # ----------------------------------------------------------- compaction
    def plan_compaction(
        self,
        tier_ratio: int = DEFAULT_TIER_RATIO,
        min_tier: int = DEFAULT_MIN_TIER,
    ) -> List[str]:
        """Generation names the size-tiered policy would compact now.

        Generations are bucketed smallest-first: a generation joins the
        current bucket while its record count is within ``tier_ratio``× of
        the bucket's smallest member.  The first bucket with at least
        ``min_tier`` members is the compaction victim set — merging
        similarly-sized runs keeps every record's rewrite count
        logarithmic in the tree's total size.
        """
        if tier_ratio < 1:
            raise StoreError(f"tier_ratio must be >= 1, got {tier_ratio}")
        if min_tier < 2:
            raise StoreError(f"min_tier must be >= 2, got {min_tier}")
        ordered = sorted(
            self.manifest["generations"], key=lambda entry: int(entry["num_records"])
        )
        bucket: List[Dict[str, Any]] = []
        for entry in ordered:
            if not bucket:
                bucket = [entry]
                continue
            floor = max(1, int(bucket[0]["num_records"]))
            if int(entry["num_records"]) <= tier_ratio * floor:
                bucket.append(entry)
            elif len(bucket) >= min_tier:
                break
            else:
                bucket = [entry]
        if len(bucket) >= min_tier:
            return [entry["name"] for entry in bucket]
        return []

    def compact(
        self,
        all_generations: bool = False,
        tier_ratio: int = DEFAULT_TIER_RATIO,
        min_tier: int = DEFAULT_MIN_TIER,
    ) -> Optional[Dict[str, Any]]:
        """Fold generations through the exact store merge; returns stats.

        Victims come from :meth:`plan_compaction` (or are *all* live
        generations with ``all_generations=True``); they merge into a new
        generation thresholded at the tree's τ — counts ``>= τ`` in the
        main table, the rest in its residual sidecar, so the output stays
        residual-exact for every later compaction.  The manifest swaps
        atomically after the merge; the victim directories are removed
        last.  Returns ``None`` when the policy finds nothing to compact.
        """
        if all_generations:
            victims = [entry["name"] for entry in self.manifest["generations"]]
            if not victims:
                return None
            if len(victims) == 1 and not self._needs_threshold(victims):
                return None
        else:
            victims = self.plan_compaction(tier_ratio=tier_ratio, min_tier=min_tier)
            if not victims:
                return None
        started = time.perf_counter()
        victim_set = set(victims)
        records_in = sum(
            int(entry["num_records"])
            for entry in self.manifest["generations"]
            if entry["name"] in victim_set
        )
        name = self._next_generation_name()
        merge_stores(
            [self.generation_dir(victim) for victim in victims],
            self.generation_dir(name),
            store=self.store_config(),
            min_frequency=self.min_frequency,
        )
        survivors = [
            entry
            for entry in self.manifest["generations"]
            if entry["name"] not in victim_set
        ]
        generations_before = len(self.manifest["generations"])
        merged = NGramStore.open(self.generation_dir(name))
        try:
            entry = {
                "name": name,
                "num_records": merged.num_records,
                "min_frequency": self.min_frequency,
                "source": f"compaction of {len(victims)} generations",
            }
        finally:
            merged.close()
        self.manifest["generations"] = survivors + [entry]
        self.manifest["next_generation"] = int(self.manifest["next_generation"]) + 1
        self._write_manifest()
        for victim in victims:
            shutil.rmtree(self.generation_dir(victim), ignore_errors=True)
        return {
            "merged": victims,
            "output": name,
            "records_in": records_in,
            "records_out": entry["num_records"],
            "min_frequency": self.min_frequency,
            "elapsed_seconds": time.perf_counter() - started,
            "generations_before": generations_before,
            "generations_after": len(self.manifest["generations"]),
        }

    def _needs_threshold(self, victims: List[str]) -> bool:
        """A single-generation ``--all`` still compacts if τ was never applied."""
        if len(victims) != 1:
            return True
        entry = self.manifest["generations"][0]
        return int(entry.get("min_frequency", 1)) != self.min_frequency

    # -------------------------------------------------------------- serving
    def view(
        self,
        cache_blocks: int = DEFAULT_CACHE_BLOCKS,
        cache: Optional[BlockCache] = None,
        use_mmap: bool = True,
    ) -> "GenerationView":
        """Open the live generations for querying (see :class:`GenerationView`)."""
        return GenerationView(self, cache_blocks=cache_blocks, cache=cache, use_mmap=use_mmap)


class GenerationView(StoreAPI):
    """``StoreAPI`` over an LSM directory's live generations.

    Opens every generation listed in the MANIFEST at construction time
    (later ingests need a reopen to become visible — immutability is what
    makes the open generations safe to serve concurrently) and answers
    queries by *summing* main-table counts across generations: each corpus
    batch was counted exactly once, so the sum is the union count.  All
    generations read through one shared LRU block cache, exactly like the
    multi-store serving processes do.
    """

    def __init__(
        self,
        lsm: LSMStore,
        cache_blocks: int = DEFAULT_CACHE_BLOCKS,
        cache: Optional[BlockCache] = None,
        use_mmap: bool = True,
    ) -> None:
        self.lsm = lsm
        self.store_dir = lsm.root
        # One cache across every generation: a view over k generations
        # should not cost k× the configured cache budget.
        self.cache = cache if cache is not None else BlockCache(cache_blocks)
        self.stores: List[NGramStore] = []
        try:
            for entry in lsm.manifest["generations"]:
                self.stores.append(
                    NGramStore.open(
                        lsm.generation_dir(entry["name"]),
                        cache=self.cache,
                        use_mmap=use_mmap,
                    )
                )
        except Exception:
            self.close()
            raise
        self._closed = False

    # ----------------------------------------------------------- properties
    @property
    def manifest(self) -> Dict[str, Any]:
        return self.lsm.manifest

    @property
    def num_records(self) -> int:
        return sum(store.num_records for store in self.stores)

    @property
    def num_partitions(self) -> int:
        return sum(store.num_partitions for store in self.stores)

    @property
    def vocabulary(self) -> Optional[Any]:
        for store in self.stores:
            if store.manifest.get("has_vocabulary"):
                return store.vocabulary
        return None

    def __len__(self) -> int:
        return self.num_records

    def cache_stats(self) -> Any:
        return self.cache.stats_snapshot()

    def io_stats(self) -> Dict[str, Any]:
        """Read-path counters summed over every generation."""
        totals: Dict[str, Any] = {}
        for store in self.stores:
            for field, value in store.io_stats().items():
                totals[field] = totals.get(field, 0) + value
        return totals

    # ------------------------------------------------------------ internals
    def _check_open(self) -> None:
        if self._closed:
            raise StoreError(f"LSM view over {self.store_dir!r} is closed")

    # ------------------------------------------------------------- queries
    def get(self, ngram: Any, default: Any = None) -> Any:
        """Point lookup summed across generations."""
        self._check_open()
        key = tuple(ngram)
        found: List[Any] = []
        for store in self.stores:
            value = store.get(key, _MISSING)
            if value is not _MISSING:
                found.append(value)
        if not found:
            return default
        if len(found) == 1:
            return found[0]
        try:
            return reduce(add, found)
        except TypeError as exc:
            raise StoreError(
                f"cannot sum {len(found)} generation values for key {key!r}: {exc}"
            ) from exc

    def frequency(self, ngram: Any) -> int:
        return self.get(ngram, 0)

    def __contains__(self, ngram: object) -> bool:
        if not isinstance(ngram, tuple):
            return False
        return self.get(ngram, _MISSING) is not _MISSING

    def multi_get(self, ngrams: Sequence[Any], default: Any = None) -> List[Any]:
        """Batched lookups: one column of values per generation, then summed."""
        self._check_open()
        keys = [tuple(ngram) for ngram in ngrams]
        columns = [store.multi_get(keys, _MISSING) for store in self.stores]
        results: List[Any] = []
        for index, key in enumerate(keys):
            found = [
                column[index] for column in columns if column[index] is not _MISSING
            ]
            if not found:
                results.append(default)
            elif len(found) == 1:
                results.append(found[0])
            else:
                try:
                    results.append(reduce(add, found))
                except TypeError as exc:
                    raise StoreError(
                        f"cannot sum {len(found)} generation values for key "
                        f"{key!r}: {exc}"
                    ) from exc
        return results

    def scan(self, start: Any = None, stop: Any = None) -> Iterator[Record]:
        """Merged scan: generation streams k-way merged, duplicate keys summed."""
        self._check_open()
        return _merge_streams(store.scan(start=start, stop=stop) for store in self.stores)

    def items(self) -> Iterator[Record]:
        return self.scan()

    def prefix(self, tokens: Any, limit: Optional[int] = None) -> Iterator[Record]:
        self._check_open()
        records = prefix_records(self.scan, tuple(tokens))
        if limit is not None:
            if not isinstance(limit, int) or limit < 0:
                raise StoreError(
                    f"prefix limit must be a non-negative integer, got {limit!r}"
                )
            records = islice(records, limit)
        return (NGramRecord(key, value) for key, value in records)

    def top_k(self, k: int, order: str = "frequency") -> List[Record]:
        """Exact top-k over the *summed* counts.

        A single generation delegates to the store's block-skipping pass;
        with several, per-generation summaries do not bound the summed
        value, so the exact answer streams the merged scan through one
        :class:`TopKAccumulator` — identical ranking semantics, O(k)
        memory, one pass.
        """
        self._check_open()
        validate_top_k(k, order)
        if order == "key":
            return [NGramRecord(key, value) for key, value in islice(self.scan(), k)]
        if len(self.stores) == 1:
            return self.stores[0].top_k(k, order)
        accumulator = TopKAccumulator(k)
        try:
            for key, value in self.scan():
                accumulator.offer(key, value)
        except TypeError as exc:
            raise _frequency_type_error(exc) from exc
        return [NGramRecord(key, value) for key, value in accumulator.results()]

    def stats(self) -> Dict[str, Any]:
        """LSM-level stats in the canonical ``StoreAPI`` shape."""
        self._check_open()
        codecs = {store.codec_name for store in self.stores}
        return {
            "store_dir": self.store_dir,
            "num_records": self.num_records,
            "num_partitions": self.num_partitions,
            "codec": codecs.pop() if len(codecs) == 1 else "mixed",
            "has_vocabulary": self.vocabulary is not None,
            "metadata": {
                "min_frequency": self.lsm.min_frequency,
                "max_length": self.lsm.manifest.get("max_length"),
                "algorithm": self.lsm.manifest.get("algorithm"),
                "lsm": {
                    "num_generations": len(self.stores),
                    "generations": [
                        dict(entry) for entry in self.lsm.manifest["generations"]
                    ],
                },
            },
        }

    # ------------------------------------------------------ vocabulary ops
    def _require_vocabulary(self) -> Any:
        vocabulary = self.vocabulary
        if vocabulary is None:
            raise StoreError(
                f"LSM store {self.store_dir!r} has no persisted vocabulary; "
                "term-keyed operations need ingests with encoded collections"
            )
        return vocabulary

    def translate_terms(self, items: Any) -> List[Optional[Tuple]]:
        self._check_open()
        vocabulary = self._require_vocabulary()
        from repro.exceptions import VocabularyError

        keys: List[Optional[Tuple]] = []
        for terms in items:
            try:
                keys.append(tuple(vocabulary.term_id(term) for term in terms))
            except VocabularyError:
                keys.append(None)
        return keys

    def render_ngrams(self, ngrams: Any) -> List[Tuple[str, ...]]:
        self._check_open()
        vocabulary = self._require_vocabulary()
        return [
            tuple(vocabulary.term(term_id) for term_id in ngram) for ngram in ngrams
        ]

    def __iter__(self) -> Iterator[Any]:
        return (key for key, _ in self.scan())

    # ----------------------------------------------------------- lifecycle
    def close(self) -> None:
        if getattr(self, "_closed", False):
            return
        self._closed = True
        for store in self.stores:
            store.close()
        self.stores = []


def open_store_auto(
    path: str,
    cache_blocks: int = DEFAULT_CACHE_BLOCKS,
    cache: Optional[BlockCache] = None,
    use_mmap: bool = True,
) -> StoreAPI:
    """Open ``path`` as whatever kind of store directory it is.

    An LSM directory (generation ``MANIFEST``) opens as a
    :class:`GenerationView`; anything else opens as a plain
    :class:`~repro.ngramstore.reader.NGramStore` — so every consumer
    (``repro query``/``serve``/``loadgen``, the servers' constructors)
    serves batch-built and incrementally-ingested stores through one call.
    """
    if is_lsm_dir(path):
        return LSMStore.open(path).view(
            cache_blocks=cache_blocks, cache=cache, use_mmap=use_mmap
        )
    return NGramStore.open(
        str(path), cache_blocks=cache_blocks, cache=cache, use_mmap=use_mmap
    )
