"""HTTP front-end for the unified :class:`StoreAPI` — stdlib only.

The socket protocol (:mod:`repro.ngramstore.server`) is the efficient
path for in-repo clients; this adapter makes the same store reachable by
anything that speaks HTTP — ``curl``, a browser, a load balancer's
health check — without adding a dependency.  One
:class:`~http.server.ThreadingHTTPServer` serves two surfaces over the
same :class:`~repro.ngramstore.api.QueryEngine` the socket server uses
(so both transports answer byte-identically by construction):

* ``POST /query`` — the full unified request schema as a JSON body,
  answered exactly like one socket protocol line::

      $ curl -d '{"op": "get", "key": [3, 7]}' http://host:port/query
      {"ok": true, "found": true, "value": 42}

* ``GET`` convenience routes for the common reads, query-string keyed::

      GET /ping
      GET /stats            | GET /server_stats
      GET /get?key=3,7      | GET /get?terms=the,quick
      GET /prefix?key=3&limit=100
      GET /top_k?k=10&order=frequency&surface=1
      GET /complete?terms=new,york&k=5
      GET /compare?key=3,7  | GET /compare?terms=new,york

``key`` is comma-separated term identifiers; ``terms`` is comma-separated
surface terms (translated server-side); ``surface=1`` renders ``top_k``
results as terms.  Errors come back as ``{"ok": false, "error": ...}``
with status 400 (bad request) or 404 (unknown route).

:class:`HttpStoreClient` is the in-repo client: a
:class:`~repro.ngramstore.api.RemoteStore` over ``POST /query`` via
:mod:`urllib.request`, interchangeable with the socket
:class:`~repro.ngramstore.server.StoreClient` anywhere a ``StoreAPI`` is
expected (including inside replica pools and shard routers).
"""

from __future__ import annotations

import json
import os
import threading
import time
from http import client as http_client
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib import parse as urllib_parse

from repro.config import ServerConfig
from repro.exceptions import StoreConnectionError, StoreError
from repro.ngramstore.api import (
    OPERATIONS,
    QueryEngine,
    RemoteStore,
    ensure_comparable_vocabulary,
    normalize_request,
)
from repro.ngramstore.reader import NGramStore
from repro.ngramstore.server import (
    MAX_REQUEST_BYTES,
    ServerMetrics,
    build_cache_summary,
    collect_io_counters,
    finish_request_observation,
    register_store_observables,
    render_server_metrics,
)
from repro.ngramstore.table import BlockCache
from repro.util.metrics import default_registry
from repro.util.timer import Stopwatch
from repro.util.tracing import SlowQueryLog, TraceContext, attach_trace

#: GET routes that map straight to unified-schema operations.
_GET_OPERATIONS = (
    "ping",
    "stats",
    "server_stats",
    "get",
    "prefix",
    "top_k",
    "complete",
    "compare",
)

#: Content type of the ``GET /metrics`` exposition (Prometheus text 0.0.4).
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _parse_key_param(raw: str) -> Tuple[int, ...]:
    """``"3,7"`` -> ``(3, 7)``; store keys are term identifiers."""
    if raw == "":
        return ()
    try:
        return tuple(int(part) for part in raw.split(","))
    except ValueError:
        raise StoreError(
            f"key must be comma-separated term identifiers, got {raw!r} "
            "(use terms= for surface terms)"
        )


def _request_from_query(operation: str, params: Dict[str, Any]) -> Dict[str, Any]:
    """Build a unified-schema request dict from GET query parameters."""
    request: Dict[str, Any] = {"op": operation}
    if "terms" in params:
        request["terms"] = params["terms"][-1].split(",")
    elif "key" in params:
        request["key"] = list(_parse_key_param(params["key"][-1]))
    if "limit" in params:
        try:
            request["limit"] = int(params["limit"][-1])
        except ValueError:
            raise StoreError(f"limit must be an integer, got {params['limit'][-1]!r}")
    if "k" in params:
        try:
            request["k"] = int(params["k"][-1])
        except ValueError:
            raise StoreError(f"k must be an integer, got {params['k'][-1]!r}")
    if "order" in params:
        request["order"] = params["order"][-1]
    if "surface" in params:
        request["surface"] = params["surface"][-1] not in ("", "0", "false", "no")
    return request


class _StoreRequestHandler(BaseHTTPRequestHandler):
    """Maps HTTP requests onto the owning server's :class:`QueryEngine`."""

    protocol_version = "HTTP/1.1"
    server: "_HTTPServer"

    # ----------------------------------------------------------- plumbing
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # metrics replace the default stderr access log

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        try:
            body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        except (TypeError, ValueError) as error:
            status = 500
            body = json.dumps(
                {"ok": False, "error": f"value is not JSON-serialisable: {error}"}
            ).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _answer(
        self, operation: str, request: Dict[str, Any], parse_seconds: float = 0.0
    ) -> None:
        """Run one unified-schema request and write the HTTP response."""
        owner = self.server.owner
        watch = Stopwatch()
        trace = TraceContext.from_request(request)
        if parse_seconds:
            trace.add_stage("parse", parse_seconds)
        status = 200
        io_before: Optional[Dict[str, float]] = None
        try:
            if operation == "server_stats":
                response: Dict[str, Any] = owner.server_stats()
            elif operation == "metrics":
                response = {"text": render_server_metrics(owner.metrics, owner.store)}
            else:
                request, deprecated = normalize_request(request)
                io_before = collect_io_counters(owner.store, operation)
                response = owner.engine.handle(request, trace=trace)
                if deprecated:
                    response["deprecated"] = deprecated
            response["ok"] = True
        except (StoreError, KeyError, TypeError, ValueError) as error:
            status = 400
            response = {"ok": False, "error": f"{error}"}
        bucket = operation if operation in OPERATIONS else "invalid"
        io_after = (
            collect_io_counters(owner.store, operation) if io_before is not None else None
        )
        finish_request_observation(
            owner.metrics,
            owner.slow_log,
            trace,
            bucket,
            request,
            watch.elapsed() + parse_seconds,
            status == 200,
            io_before,
            io_after,
        )
        self._send_json(status, response)

    # ------------------------------------------------------------- verbs
    def do_GET(self) -> None:  # noqa: N802 (stdlib handler naming)
        owner = self.server.owner
        owner.metrics.record_connection()
        parsed = urllib_parse.urlsplit(self.path)
        operation = parsed.path.strip("/")
        if operation == "metrics":
            # The Prometheus scrape surface: raw exposition text, not the
            # JSON envelope (scrapers do not speak the unified schema).
            watch = Stopwatch()
            text = render_server_metrics(owner.metrics, owner.store)
            owner.metrics.record("metrics", watch.elapsed(), True)
            self._send_text(200, text, METRICS_CONTENT_TYPE)
            return
        if operation not in _GET_OPERATIONS:
            self._send_json(
                404,
                {
                    "ok": False,
                    "error": f"unknown route {parsed.path!r}; GET routes: "
                    + ", ".join(f"/{name}" for name in _GET_OPERATIONS)
                    + ", /metrics; or POST /query",
                },
            )
            return
        try:
            request = _request_from_query(operation, urllib_parse.parse_qs(parsed.query))
        except StoreError as error:
            owner.metrics.record(operation, 0.0, False)
            self._send_json(400, {"ok": False, "error": f"{error}"})
            return
        self._answer(operation, request)

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler naming)
        owner = self.server.owner
        owner.metrics.record_connection()
        parsed = urllib_parse.urlsplit(self.path)
        if parsed.path.rstrip("/") != "/query":
            self._send_json(
                404, {"ok": False, "error": f"unknown route {parsed.path!r}; POST /query"}
            )
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_REQUEST_BYTES:
            self._send_json(400, {"ok": False, "error": "request exceeds 1 MiB"})
            return
        body = self.rfile.read(length)
        parse_watch = Stopwatch()
        try:
            request = json.loads(body)
            if not isinstance(request, dict):
                raise StoreError("request must be a JSON object")
        except (ValueError, StoreError) as error:
            owner.metrics.record("invalid", 0.0, False)
            self._send_json(400, {"ok": False, "error": f"invalid request: {error}"})
            return
        parse_seconds = parse_watch.elapsed()
        self._answer(str(request.get("op")), request, parse_seconds=parse_seconds)


class _HTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that knows its owning :class:`NGramStoreHTTPServer`."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], owner: "NGramStoreHTTPServer") -> None:
        self.owner = owner
        super().__init__(address, _StoreRequestHandler)


class NGramStoreHTTPServer:
    """Serves one store (or shard view) over HTTP; see the module docstring.

    The lifecycle mirrors :class:`~repro.ngramstore.server.NGramStoreServer`:
    construct with a store directory (the server opens it behind a shared
    block cache) or a caller-managed store object, ``start()`` to bind and
    serve from background threads, ``close()`` to stop and release the
    store.  ``config.max_clients`` is advisory here — the stdlib threading
    server spawns a thread per request — so the knob that matters is the
    shared ``cache_blocks``.
    """

    def __init__(self, store: Any, config: Optional[ServerConfig] = None) -> None:
        self.config = config if config is not None else ServerConfig()
        if isinstance(store, (str, os.PathLike)):
            from repro.ngramstore.lsm import open_store_auto

            self.cache: Optional[BlockCache] = BlockCache(self.config.cache_blocks)
            self.store = open_store_auto(str(store), cache=self.cache)
        else:
            self.store = store
            self.cache = getattr(store, "cache", None)
        self.extra_store: Any = None
        if self.config.extra_store is not None:
            from repro.ngramstore.lsm import open_store_auto

            # Mirrors the socket server: the comparison store rides the
            # shared block cache and must agree on the vocabulary.
            try:
                self.extra_store = open_store_auto(
                    self.config.extra_store, cache=self.cache
                )
                ensure_comparable_vocabulary(self.store, self.extra_store)
            except Exception:
                if self.extra_store is not None:
                    self.extra_store.close()
                self.store.close()
                raise
        self.engine = QueryEngine(self.store, extra_store=self.extra_store)
        self.metrics = ServerMetrics()
        self.slow_log = (
            SlowQueryLog(self.config.slow_query_ms, self.config.slow_query_log)
            if self.config.slow_query_ms is not None
            else None
        )
        register_store_observables(self.metrics.registry, self.store, self.cache)
        self.host = self.config.host
        self.port = self.config.port
        self._httpd: Optional[_HTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    # ------------------------------------------------------------- serving
    def server_stats(self) -> Dict[str, Any]:
        snapshot = self.metrics.snapshot()
        snapshot["cache"] = self.cache_summary()
        return snapshot

    def cache_summary(self) -> Dict[str, Any]:
        return build_cache_summary(self.store, self.cache)

    # ----------------------------------------------------------- lifecycle
    def start(self) -> Tuple[str, int]:
        """Bind, listen and serve in background threads; returns (host, port)."""
        if self._httpd is not None:
            raise StoreError("server already started")
        self._httpd = _HTTPServer((self.host, self.port), self)
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="ngramstore-http",
            daemon=True,
        )
        self._thread.start()
        return self.host, self.port

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        if self.slow_log is not None:
            self.slow_log.close()
        if self.extra_store is not None:
            self.extra_store.close()
        self.store.close()

    def __enter__(self) -> "NGramStoreHTTPServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class HttpStoreClient(RemoteStore):
    """``StoreAPI`` client over ``POST /query`` — the HTTP twin of
    :class:`~repro.ngramstore.server.StoreClient`.

    Connections are pooled and kept alive: the server speaks HTTP/1.1
    with explicit ``Content-Length``, so one TCP connection carries many
    requests instead of paying a handshake per call.  The pool is a
    lock-guarded idle stack — a thread borrows a connection for the
    duration of one call, so one instance is safe to share across threads
    (concurrent callers simply grow the pool to the concurrency level;
    ``connections_opened`` counts how many were ever dialled).

    A *reused* connection that fails mid-call is most likely a keep-alive
    connection the server idled out — it is discarded and the call
    retried on a fresh one without burning the retry budget.  Failures on
    fresh connections (refused, reset, timeout) raise
    :class:`StoreConnectionError` after a bounded retry loop, so an
    :class:`~repro.ngramstore.router.ReplicaPool` of HTTP clients fails
    over exactly like one of socket clients.
    """

    def __init__(
        self,
        url: str,
        *,
        timeout: float = 30.0,
        max_retries: int = 2,
        backoff: float = 0.05,
    ) -> None:
        if max_retries < 0:
            raise StoreError(f"max_retries must be >= 0, got {max_retries}")
        self.base_url = url.rstrip("/")
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff = backoff
        parsed = urllib_parse.urlsplit(self.base_url)
        if parsed.scheme not in ("http", "https") or not parsed.netloc:
            raise StoreError(
                f"store server URL must be http(s)://host[:port][/path], got {url!r}"
            )
        self._netloc = parsed.netloc
        self._scheme = parsed.scheme
        self._path = (parsed.path or "") + "/query"
        self.connections_opened = 0
        self.last_trace_id: Optional[str] = None
        self._dial_counter = default_registry().counter(
            "ngramstore_client_connections_opened_total",
            "TCP connections dialled by in-process store clients",
            labels=("transport",),
        )
        self._idle: List[http_client.HTTPConnection] = []
        self._pool_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------ connection pool
    def _acquire(self) -> Tuple[http_client.HTTPConnection, bool]:
        """A connection to run one request on; ``(connection, reused)``."""
        with self._pool_lock:
            if self._idle:
                return self._idle.pop(), True
            self.connections_opened += 1
        self._dial_counter.inc(transport="http")
        connection_class = (
            http_client.HTTPSConnection
            if self._scheme == "https"
            else http_client.HTTPConnection
        )
        return connection_class(self._netloc, timeout=self.timeout), False

    def _release(self, connection: http_client.HTTPConnection) -> None:
        with self._pool_lock:
            if not self._closed:
                self._idle.append(connection)
                return
        connection.close()

    # ------------------------------------------------------------- transport
    def _call(self, request: Dict[str, Any]) -> Dict[str, Any]:
        if self._closed:
            raise StoreError("client is closed")
        self.last_trace_id = attach_trace(request)
        payload = json.dumps(request, separators=(",", ":")).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        attempts = self.max_retries + 1
        failures = 0
        while True:
            connection, reused = self._acquire()
            try:
                connection.request("POST", self._path, body=payload, headers=headers)
                reply = connection.getresponse()
                body = reply.read()
                status = reply.status
                keep = not reply.will_close
            except (http_client.HTTPException, OSError) as error:
                connection.close()
                if reused:
                    # A pooled connection the server idled out between
                    # calls — not a dead endpoint.  Retry on a fresh
                    # connection without burning the retry budget.
                    continue
                failures += 1
                if failures >= attempts:
                    raise StoreConnectionError(
                        f"cannot reach store server {self.base_url}: {error}"
                    ) from error
                time.sleep(self.backoff * (2 ** (failures - 1)))
                continue
            if keep:
                self._release(connection)
            else:
                connection.close()
            if status >= 400:
                # The server answered: an application error, not a dead
                # endpoint — surface it without burning retries.
                try:
                    detail = json.loads(body).get("error", "unknown")
                except (ValueError, AttributeError):
                    detail = f"HTTP {status}"
                raise StoreError(f"server error: {detail}")
            response = json.loads(body)
            if not response.get("ok"):
                raise StoreError(f"server error: {response.get('error', 'unknown')}")
            return response

    def close(self) -> None:
        with self._pool_lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for connection in idle:
            connection.close()

    def __enter__(self) -> "HttpStoreClient":
        return self
