"""Serving layer: routing queries over a store's range partitions.

:class:`NGramStore` opens a store directory (manifest + one table per
range partition, plus an optional vocabulary) and is the local, in-process
implementation of :class:`~repro.ngramstore.api.StoreAPI` — point lookups,
prefix/range scans, top-k, stats, and (when the build persisted a
dictionary) surface-term translation — routing each query to the
partitions that can answer it via the manifest's boundary keys, exactly
the ranges the build job partitioned by.
Tables open lazily and every table keeps only its LRU block cache in
memory, so serving a store holds ``O(partitions x cache_blocks x block
size)`` bytes regardless of how many n-grams are stored.

:class:`StoreStatistics` adapts a store to the read interface of
:class:`~repro.ngrams.statistics.NGramStatistics`, which is how the
language model and the time-series analyses run on top of a store instead
of a fully-resident dict.
"""

from __future__ import annotations

import heapq
import os
import threading
from bisect import bisect_right
from itertools import islice
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.exceptions import StoreError, VocabularyError
from repro.kvstore.cached import CacheStats
from repro.ngramstore.api import NGramRecord, StoreAPI
from repro.ngramstore.build import (
    DICTIONARY_FILENAME,
    RESIDUAL_DIRNAME,
    load_manifest,
    manifest_boundaries,
)
from repro.ngramstore.table import (
    DEFAULT_CACHE_BLOCKS,
    BlockCache,
    Table,
    TopKAccumulator,
    _frequency_type_error,
    prefix_records,
    top_k_records,
    validate_top_k,
)

Record = Tuple[Any, Any]

_MISSING = object()


class NGramStore(StoreAPI):
    """A multi-partition, on-disk n-gram store opened for querying.

    Safe for concurrent readers: lazy table opening and the lazy vocabulary
    load are guarded by a lock, and the tables themselves serialise their
    shared-handle I/O (see :class:`~repro.ngramstore.table.Table`).  Pass
    ``cache`` to give every partition (or several stores — e.g. a serving
    process) one process-wide LRU block cache instead of a private
    ``cache_blocks``-entry cache per table.
    """

    def __init__(
        self,
        store_dir: str,
        cache_blocks: int = DEFAULT_CACHE_BLOCKS,
        cache: Optional[BlockCache] = None,
        use_mmap: bool = True,
    ) -> None:
        self.store_dir = store_dir
        self.manifest = load_manifest(store_dir)
        self.boundaries = manifest_boundaries(self.manifest)
        self.cache_blocks = cache_blocks
        self.cache = cache
        self.use_mmap = use_mmap
        self._tables: List[Optional[Table]] = [None] * self.manifest["num_partitions"]
        self._vocabulary: Any = None
        self._residual: Optional["NGramStore"] = None
        self._lock = threading.Lock()
        self._closed = False

    @classmethod
    def open(
        cls,
        store_dir: str,
        cache_blocks: int = DEFAULT_CACHE_BLOCKS,
        cache: Optional[BlockCache] = None,
        use_mmap: bool = True,
    ) -> "NGramStore":
        """Open a store directory written by :func:`repro.ngramstore.build.build_store`."""
        return cls(store_dir, cache_blocks=cache_blocks, cache=cache, use_mmap=use_mmap)

    # ----------------------------------------------------------- properties
    @property
    def num_partitions(self) -> int:
        return self.manifest["num_partitions"]

    @property
    def num_records(self) -> int:
        return self.manifest["num_records"]

    @property
    def codec_name(self) -> str:
        return self.manifest["codec"]

    @property
    def metadata(self) -> Dict[str, Any]:
        return self.manifest["metadata"]

    @property
    def min_frequency(self) -> int:
        """The store's serving threshold τ (1 when never stamped)."""
        value = self.metadata.get("min_frequency", 1)
        if isinstance(value, bool) or not isinstance(value, int):
            return 1
        return value

    @property
    def has_residual(self) -> bool:
        """True when the manifest records a residual sidecar table."""
        return "residual" in self.manifest

    @property
    def residual(self) -> Optional["NGramStore"]:
        """The residual sidecar store (counts in ``[1, τ)``), opened lazily.

        ``None`` for stores without one (τ=1 builds, or legacy τ>1 stores
        that predate residuals).  The sidecar shares this store's block
        cache when one was passed, and is closed with the parent.
        """
        if not self.has_residual:
            return None
        if self._residual is None:
            with self._lock:
                if self._residual is None:
                    entry = self.manifest["residual"]
                    path = os.path.join(
                        self.store_dir, entry.get("directory", RESIDUAL_DIRNAME)
                    )
                    self._residual = NGramStore(
                        path,
                        cache_blocks=self.cache_blocks,
                        cache=self.cache,
                        use_mmap=self.use_mmap,
                    )
        return self._residual

    def __len__(self) -> int:
        return self.num_records

    @property
    def vocabulary(self) -> Optional[Any]:
        """The persisted vocabulary, if the build included one (lazy)."""
        if self._vocabulary is None and self.manifest.get("has_vocabulary"):
            with self._lock:
                if self._vocabulary is None:
                    from repro.corpus.vocabulary import Vocabulary

                    path = os.path.join(self.store_dir, DICTIONARY_FILENAME)
                    with open(path, "r", encoding="utf-8") as handle:
                        self._vocabulary = Vocabulary.from_lines(handle)
        return self._vocabulary

    def cache_stats(self) -> CacheStats:
        """Block-cache hit/miss/eviction totals over every open partition."""
        if self.cache is not None:
            return self.cache.stats_snapshot()
        total = CacheStats()
        for table in self._tables:
            if table is not None:
                total.hits += table.cache_stats.hits
                total.misses += table.cache_stats.misses
                total.evictions += table.cache_stats.evictions
        return total

    def io_stats(self) -> Dict[str, Any]:
        """Read-path counters over every open partition.

        ``blocks_decoded`` counts data blocks actually read and decoded
        (cache hits don't decode); ``bloom_rejections`` counts point misses
        answered by a block's Bloom filter without touching the block;
        ``blocks_checksum_failed`` counts blocks whose stored CRC32 did not
        match their bytes (each such read also raised ``StoreError``);
        ``mmap_partitions`` counts partitions served by zero-copy mmap
        slices; ``decode_seconds`` is cumulative wallclock spent decoding
        blocks, which request tracing uses to split read latency into
        block-read vs decode stages.  Benchmarks assert against these —
        e.g. a Bloom-filtered miss workload must leave ``blocks_decoded``
        untouched.
        """
        totals = {
            "blocks_decoded": 0,
            "bloom_rejections": 0,
            "blocks_checksum_failed": 0,
            "mmap_partitions": 0,
            "decode_seconds": 0.0,
        }
        for table in self._tables:
            if table is not None:
                totals["blocks_decoded"] += table.blocks_decoded
                totals["bloom_rejections"] += table.bloom_rejections
                totals["blocks_checksum_failed"] += table.blocks_checksum_failed
                totals["mmap_partitions"] += 1 if table.mmap_active else 0
                totals["decode_seconds"] += table.decode_seconds
        return totals

    # ------------------------------------------------------------ internals
    def _check_open(self) -> None:
        if self._closed:
            raise StoreError(f"store {self.store_dir!r} is closed")

    def _table(self, index: int) -> Table:
        table = self._tables[index]
        if table is None:
            # Double-checked under the lock: concurrent first touches of a
            # partition must yield one Table (one handle, one cache), not a
            # racing pair where one leaks unclosed.
            with self._lock:
                table = self._tables[index]
                if table is None:
                    filename = self.manifest["partitions"][index]["file"]
                    table = Table(
                        os.path.join(self.store_dir, filename),
                        cache_blocks=self.cache_blocks,
                        cache=self.cache,
                        use_mmap=self.use_mmap,
                    )
                    self._tables[index] = table
        return table

    def _partition_for(self, key: Tuple) -> int:
        return bisect_right(self.boundaries, key)

    # ------------------------------------------------------------- queries
    def get(self, ngram: Any, default: Any = None) -> Any:
        """Point lookup, routed to the one partition owning the key's range."""
        self._check_open()
        if self.num_partitions == 0:
            return default
        key = tuple(ngram)
        return self._table(self._partition_for(key)).get(key, default)

    def frequency(self, ngram: Any) -> int:
        """Statistics-style lookup: the stored value, or 0 when absent."""
        value = self.get(ngram, 0)
        return value

    def __contains__(self, ngram: object) -> bool:
        if not isinstance(ngram, tuple):
            return False
        return self.get(ngram, _MISSING) is not _MISSING

    def scan(self, start: Any = None, stop: Any = None) -> Iterator[Record]:
        """Stream records with ``start <= key < stop`` across partitions.

        Range partitioning makes the global key order the concatenation of
        the partitions' orders, so this chains per-partition scans, opening
        only the partitions the range touches.
        """
        self._check_open()
        if self.num_partitions == 0:
            return
        start_key = None if start is None else tuple(start)
        stop_key = None if stop is None else tuple(stop)
        first = 0 if start_key is None else self._partition_for(start_key)
        for index in range(first, self.num_partitions):
            if stop_key is not None and index > 0 and index <= len(self.boundaries):
                # Partition index owns keys >= boundaries[index - 1]; once the
                # stop bound falls at or below that, no later partition matters.
                if not self.boundaries[index - 1] < stop_key:
                    return
            yield from self._table(index).scan(start=start_key, stop=stop_key)

    def prefix(self, tokens: Any, limit: Optional[int] = None) -> Iterator[Record]:
        """Stream every stored n-gram starting with ``tokens``, in key order.

        Lazy — downstream consumers (the language model's continuation
        scan) pull records as needed; ``limit`` caps how many are yielded.
        """
        self._check_open()
        records = prefix_records(self.scan, tuple(tokens))
        if limit is not None:
            if not isinstance(limit, int) or limit < 0:
                raise StoreError(
                    f"prefix limit must be a non-negative integer, got {limit!r}"
                )
            records = islice(records, limit)
        return (NGramRecord(key, value) for key, value in records)

    def top_k(self, k: int, order: str = "frequency") -> List[Record]:
        """The ``k`` top records store-wide, streamed with O(k) memory.

        Frequency order shares one heap across every partition, so blocks
        whose persisted max-value summary cannot beat the current heap
        floor are skipped unread (see :meth:`top_k_into` for the raw hook).
        """
        self._check_open()
        validate_top_k(k, order)
        if order == "key":
            return [NGramRecord(key, value) for key, value in islice(self.scan(), k)]
        accumulator = TopKAccumulator(k)
        try:
            self.top_k_into(accumulator)
            return [NGramRecord(key, value) for key, value in accumulator.results()]
        except TypeError as exc:
            raise _frequency_type_error(exc) from exc

    def top_k_into(
        self,
        accumulator: TopKAccumulator,
        first_partition: int = 0,
        last_partition: Optional[int] = None,
    ) -> None:
        """Offer a partition range's candidates to a caller-owned top-k heap.

        Exposed so callers (benchmarks, tests) can inspect the accumulator's
        ``blocks_scanned``/``blocks_skipped`` counters after the pass, and so
        a :class:`~repro.ngramstore.router.ShardView` can restrict the pass
        to the partitions its shard owns (``[first_partition,
        last_partition)``; the default covers the whole store).
        """
        self._check_open()
        stop = self.num_partitions if last_partition is None else last_partition
        for index in range(first_partition, stop):
            self._table(index).top_k_into(accumulator)

    def block_first_keys(self) -> List[Tuple]:
        """Every block's first key across all partitions, in global key order.

        Read from the block indexes alone (no data blocks are decoded): one
        key per block, i.e. a records-proportional sample of the store's
        key distribution — what the store merge uses to plan boundaries.
        """
        self._check_open()
        keys: List[Tuple] = []
        for index in range(self.num_partitions):
            keys.extend(self._table(index).block_first_keys())
        return keys

    def items(self) -> Iterator[Record]:
        """Stream every record in global key order."""
        return self.scan()

    def exact_items(self) -> Iterator[Record]:
        """Stream the exact full count table: main + residual, in key order.

        A τ>1 store's main table alone is a *filtered* view; merged with
        its residual sidecar (key sets are disjoint by construction) the
        stream is exactly the τ=1 count table — the input an exact store
        merge needs.  Degenerates to :meth:`items` when no residual exists.
        """
        residual = self.residual
        if residual is None:
            return self.items()
        return heapq.merge(self.items(), residual.items(), key=lambda record: record[0])

    def stats(self) -> Dict[str, Any]:
        """Store metadata in the canonical ``StoreAPI`` shape.

        The same dict every remote implementation returns for ``stats``,
        which is what makes the conformance suite's byte-identity check
        possible: servers forward this verbatim.
        """
        self._check_open()
        stats = {
            "store_dir": self.store_dir,
            "num_records": self.num_records,
            "num_partitions": self.num_partitions,
            "codec": self.codec_name,
            "has_vocabulary": bool(self.manifest.get("has_vocabulary")),
            "metadata": self.manifest.get("metadata", {}),
        }
        if self.has_residual:
            stats["residual"] = dict(self.manifest["residual"])
        return stats

    # ------------------------------------------------------ vocabulary ops
    def _require_vocabulary(self) -> Any:
        vocabulary = self.vocabulary
        if vocabulary is None:
            raise StoreError(
                f"store {self.store_dir!r} has no persisted vocabulary; "
                "term-keyed operations need a build with vocabulary="
            )
        return vocabulary

    def translate_terms(self, items: Any) -> List[Optional[Tuple]]:
        """Surface-term tuples -> term-id keys; ``None`` where any term is unknown.

        Unknown terms are a normal query outcome (the corpus simply never
        produced them), not an error — the caller sees ``None`` and treats
        the n-gram as absent.
        """
        self._check_open()
        vocabulary = self._require_vocabulary()
        keys: List[Optional[Tuple]] = []
        for terms in items:
            try:
                keys.append(tuple(vocabulary.term_id(term) for term in terms))
            except VocabularyError:
                keys.append(None)
        return keys

    def render_ngrams(self, ngrams: Any) -> List[Tuple[str, ...]]:
        """Term-id keys -> surface-term tuples via the persisted dictionary."""
        self._check_open()
        vocabulary = self._require_vocabulary()
        return [
            tuple(vocabulary.term(term_id) for term_id in ngram) for ngram in ngrams
        ]

    def __iter__(self) -> Iterator[Any]:
        """Stream every key in global key order."""
        return (key for key, _ in self.scan())

    # ----------------------------------------------------------- lifecycle
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for table in self._tables:
            if table is not None:
                table.close()
        self._tables = [None] * self.manifest["num_partitions"]
        if self._residual is not None:
            self._residual.close()
            self._residual = None

    def __enter__(self) -> "NGramStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class StoreStatistics:
    """Read-only :class:`~repro.ngrams.statistics.NGramStatistics` facade.

    Implements the lookup/iteration surface consumers use (``frequency``,
    ``items``, iteration, membership, ``top``) by delegating to the store's
    query engine — every access streams or seeks, nothing is materialised.
    Mutation and dict-returning conversions are deliberately absent: a
    store is immutable, and materialising it would defeat the point.
    """

    def __init__(self, store: NGramStore) -> None:
        self.store = store

    def frequency(self, ngram: Any) -> int:
        return self.store.frequency(tuple(ngram))

    def __getitem__(self, ngram: Any) -> int:
        key = tuple(ngram)
        value = self.store.get(key, _MISSING)
        if value is _MISSING:
            raise KeyError(key)
        return value

    def __contains__(self, ngram: object) -> bool:
        return ngram in self.store

    def __len__(self) -> int:
        return len(self.store)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.store)

    def items(self) -> Iterator[Record]:
        return self.store.items()

    def top(self, k: int, length: Optional[int] = None) -> List[Record]:
        """The ``k`` most frequent n-grams, optionally of one exact length."""
        records = self.store.items()
        if length is not None:
            records = (record for record in records if len(record[0]) == length)
        return top_k_records(records, k, "frequency")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"StoreStatistics({len(self.store)} n-grams, {self.store.store_dir!r})"
